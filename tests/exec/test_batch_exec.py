"""Batch (vectorized) execution mode: equivalence, chunking, caching.

Batch mode moves chunks of rows between operators instead of one row at
a time (``PhysicalOperator.execute_batches``); anything not answerable
from these tests lives next to the expression-level checks in
``test_expressions.py``. The invariant everything here leans on: for
every query, batch mode must produce the same rows, the same work
counters, and the same observable side effects as row mode.
"""

import os

import pytest

from repro.common.schema import Column, Schema
from repro.common.types import FLOAT, INT, VARCHAR
from repro.catalog.objects import TableDef
from repro.engine.database import Database
from repro.exec.context import (
    DEFAULT_BATCH_ROWS,
    ExecutionContext,
    batch_exec_default,
)
from repro.exec.expressions import ExpressionCompiler, compiled_like_pattern
from repro.exec.operators import (
    BatchCursor,
    FilterOp,
    NestedLoopJoinOp,
    SeqScanOp,
    ValuesOp,
)
from repro.sql import parse_expression
from tests.conftest import make_shop_backend

#: Queries spanning every batch-capable operator plus the fallbacks:
#: scans, filters (LIKE/AND/OR/IS NULL/params), projection arithmetic,
#: aggregation with and without GROUP BY, hash and index-lookup joins,
#: sorting, TOP, DISTINCT, UNION ALL, and subqueries.
EQUIVALENCE_QUERIES = [
    "SELECT * FROM customer",
    "SELECT cid, cname FROM customer WHERE cid <= 25",
    "SELECT cname FROM customer WHERE segment = 'gold' AND cid > 50",
    "SELECT cname FROM customer WHERE segment = 'gold' OR cid < 5",
    "SELECT cname FROM customer WHERE cname LIKE 'cust1%'",
    "SELECT cid FROM customer WHERE caddress IS NOT NULL AND cid % 7 = 0",
    "SELECT oid, total * 2 + 1 FROM orders WHERE status = 'OPEN'",
    "SELECT COUNT(*), SUM(total), AVG(total), MIN(total), MAX(total) FROM orders",
    "SELECT status, COUNT(*), SUM(total) FROM orders GROUP BY status",
    "SELECT segment, COUNT(*) FROM customer GROUP BY segment HAVING COUNT(*) > 10",
    "SELECT c.cname, o.total FROM customer c JOIN orders o ON c.cid = o.o_cid "
    "WHERE o.total > 500 ORDER BY o.total DESC",
    "SELECT TOP 7 cname FROM customer ORDER BY cid DESC",
    "SELECT DISTINCT status FROM orders",
    "SELECT cid FROM customer WHERE cid <= 3 "
    "UNION ALL SELECT oid FROM orders WHERE oid <= 3",
    "SELECT cname FROM customer WHERE cid IN "
    "(SELECT o_cid FROM orders WHERE total > 550)",
    "SELECT o_cid, SUM(total) FROM orders GROUP BY o_cid "
    "ORDER BY SUM(total) DESC",
]


@pytest.fixture
def server():
    return make_shop_backend()


def run_both_modes(server, query, params=None):
    server.batch_exec = False
    row_result = server.execute(query, params=params).rows
    server.batch_exec = True
    batch_result = server.execute(query, params=params).rows
    return row_result, batch_result


class TestModeEquivalence:
    @pytest.mark.parametrize("query", EQUIVALENCE_QUERIES)
    def test_same_rows_in_both_modes(self, server, query):
        row_result, batch_result = run_both_modes(server, query)
        assert batch_result == row_result

    def test_parameters_hoisted_per_batch(self, server):
        row_result, batch_result = run_both_modes(
            server,
            "SELECT cname FROM customer WHERE cid <= @limit AND segment = @seg",
            params={"limit": 60, "seg": "gold"},
        )
        assert batch_result == row_result
        assert row_result  # the query must actually select something

    def test_null_heavy_rows(self, server):
        server.execute("INSERT INTO customer VALUES (998, 'nully', NULL, NULL)")
        server.execute("INSERT INTO orders VALUES (9001, 998, NULL, NULL)")
        for query in (
            "SELECT cid FROM customer WHERE caddress IS NULL",
            "SELECT cname FROM customer WHERE segment = 'gold'",
            "SELECT COUNT(total), SUM(total), AVG(total) FROM orders",
            "SELECT status, COUNT(*) FROM orders GROUP BY status",
            "SELECT cname FROM customer WHERE cname LIKE 'nul%'",
        ):
            row_result, batch_result = run_both_modes(server, query)
            assert batch_result == row_result

    def test_work_counters_identical_across_modes(self, server):
        query = "SELECT status, COUNT(*) FROM orders WHERE total > 100 GROUP BY status"
        server.batch_exec = False
        server.reset_work()
        server.execute(query)
        row_work = server.total_work.rows_processed
        server.batch_exec = True
        server.reset_work()
        server.execute(query)
        assert server.total_work.rows_processed == row_work
        assert row_work >= 400  # the scan really counted its input


class TestBatchProtocol:
    def _scan(self):
        database = Database("t")
        schema = Schema([Column("id", INT, nullable=False, qualifier="t")])
        database.create_storage(TableDef("t", schema, primary_key=("id",)))
        table = database.storage_table("t")
        for i in range(1, 1001):
            table.insert((i,))
        return database, SeqScanOp(schema, "t")

    def test_scan_yields_fixed_size_chunks(self):
        database, scan = self._scan()
        ctx = ExecutionContext(database=database, batch_rows=64)
        chunks = list(scan.execute_batches(ctx))
        assert [len(chunk) for chunk in chunks] == [64] * 15 + [40]
        assert [row for chunk in chunks for row in chunk] == [
            (i,) for i in range(1, 1001)
        ]

    def test_batches_are_never_empty(self):
        database, scan = self._scan()
        predicate = ExpressionCompiler(scan.schema).compile(
            parse_expression("id = 77")
        )
        op = FilterOp(scan, predicate)
        ctx = ExecutionContext(database=database, batch_rows=50)
        chunks = list(op.execute_batches(ctx))
        # 19 of the 20 input chunks filter to nothing and must be elided.
        assert chunks == [[(77,)]]

    def test_fallback_shim_chunks_row_operators(self):
        # NestedLoopJoinOp has no batch override: the base-class shim
        # must adapt its row iterator into properly sized chunks.
        database = Database("t")
        schema = Schema([Column("n", INT, qualifier="v")])

        def values(count):
            return ValuesOp(
                schema, [[lambda row, ctx, v=i: v] for i in range(count)]
            )

        join = NestedLoopJoinOp(values(3), values(4))
        assert "execute_batches" not in type(join).__dict__
        ctx = ExecutionContext(database=database, batch_rows=5)
        chunks = list(join.execute_batches(ctx))
        assert [len(chunk) for chunk in chunks] == [5, 5, 2]
        assert sum(len(chunk) for chunk in chunks) == 12

    def test_batch_cursor(self):
        database, scan = self._scan()
        cursor = BatchCursor(scan, ExecutionContext(database=database, batch_rows=400))
        sizes = []
        while (chunk := cursor.next_batch()) is not None:
            sizes.append(len(chunk))
        assert sizes == [400, 400, 200]
        assert cursor.next_batch() is None  # exhausted stays exhausted
        cursor.close()

    def test_kernel_cache_counts_hits_and_misses(self):
        database, scan = self._scan()
        predicate = ExpressionCompiler(scan.schema).compile(
            parse_expression("id > 500")
        )
        op = FilterOp(scan, predicate)
        ctx = ExecutionContext(database=database, batch_rows=100)
        assert len(list(op.execute_batches(ctx))) == 5
        assert ctx.compiled_cache_misses == 1
        assert ctx.compiled_cache_hits == 0
        # Re-executing the same operator instance reuses the built kernel.
        list(op.execute_batches(ctx))
        assert ctx.compiled_cache_misses == 1
        assert ctx.compiled_cache_hits == 1


class TestModeSelection:
    def test_env_flag_defaults_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH_EXEC", raising=False)
        assert batch_exec_default() is True

    @pytest.mark.parametrize("value", ["0", "false", "off", "no", "", "  FALSE "])
    def test_env_flag_falsy_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_BATCH_EXEC", value)
        assert batch_exec_default() is False

    def test_server_reads_env_at_construction(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_EXEC", "0")
        assert make_shop_backend().batch_exec is False
        monkeypatch.setenv("REPRO_BATCH_EXEC", "1")
        assert make_shop_backend().batch_exec is True

    def test_explicit_argument_wins_over_env(self, monkeypatch):
        from repro.engine import Server

        monkeypatch.setenv("REPRO_BATCH_EXEC", "0")
        assert Server("s", batch_exec=True).batch_exec is True

    def test_context_inherits_server_settings(self):
        from repro.engine import Server
        from repro.engine.session import Session

        server = Server("s", batch_exec=True, batch_rows=33)
        server.create_database("d")
        ctx = server._make_context({}, server.database("d"), Session())
        assert ctx.batch_exec is True
        assert ctx.batch_rows == 33
        assert ExecutionContext(database=None).batch_rows == DEFAULT_BATCH_ROWS


class TestObservability:
    def test_exec_metrics_exported(self, server):
        server.batch_exec = True
        server.execute("SELECT status, COUNT(*) FROM orders GROUP BY status")
        counters = server.metrics.snapshot()["counters"]
        assert counters["exec.batches"] > 0
        assert counters["exec.compiled_cache_misses"] > 0
        histogram = server.metrics.snapshot()["histograms"]["exec.batch_rows"]
        assert histogram["count"] == counters["exec.batches"]
        assert 0 < histogram["mean"] <= DEFAULT_BATCH_ROWS

    def test_exec_metrics_present_even_in_row_mode(self, server):
        server.batch_exec = False
        server.execute("SELECT cid FROM customer WHERE cid = 1")
        counters = server.metrics.snapshot()["counters"]
        # Eagerly registered: exports always carry the keys.
        assert counters["exec.batches"] == 0
        assert counters["exec.compiled_cache_hits"] == 0

    def test_profile_counts_batches(self, server):
        server.batch_exec = True
        server.profile_statements = True
        result = server.execute("SELECT cname FROM customer WHERE cid <= 150")
        profile = result.profile
        assert profile is not None
        assert profile.root.actual_rows == 150
        assert profile.root.actual_batches >= 1
        assert "batches=" in profile.render()
        assert profile.to_dict()["actual_batches"] == profile.root.actual_batches

    def test_profile_batches_zero_in_row_mode(self, server):
        server.batch_exec = False
        server.profile_statements = True
        result = server.execute("SELECT cname FROM customer WHERE cid <= 150")
        assert result.profile.root.actual_rows == 150
        assert result.profile.root.actual_batches == 0


class TestLikeMemo:
    def test_pattern_compiled_once(self):
        first = compiled_like_pattern("abc%")
        assert compiled_like_pattern("abc%") is first

    def test_memo_is_bounded(self):
        from repro.exec import expressions

        for i in range(expressions._like_pattern_memo.capacity + 50):
            compiled_like_pattern(f"p{i}%")
        assert (
            len(expressions._like_pattern_memo)
            <= expressions._like_pattern_memo.capacity
        )

    def test_dynamic_like_matches_scalar(self, server):
        # Pattern comes from a parameter: compiled per chunk, not per row.
        row_result, batch_result = run_both_modes(
            server,
            "SELECT cname FROM customer WHERE cname LIKE @pat",
            params={"pat": "cust1_"},
        )
        assert batch_result == row_result
        assert len(row_result) == 10
