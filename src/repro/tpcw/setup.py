"""TPC-W deployment helpers: build the backend, enable MTCache caching.

``enable_caching`` reproduces the paper's cache design (§6.1.2): cached
projections of four tables — **item, author, orders, order_line** (note
that orders and order_line are large and frequently updated) — plus the
read-dominated stored procedures copied to each cache server. This lets
all search queries (title, category, author, bestseller) and the frequent
item-detail lookup run locally.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.engine import Server
from repro.mtcache import CacheServer, MTCacheDeployment
from repro.optimizer.cost import CostModel
from repro.tpcw.config import TPCWConfig
from repro.tpcw.datagen import populate
from repro.tpcw.procedures import CACHE_PROCEDURES, install_procedures
from repro.tpcw.schema import create_schema

DATABASE_NAME = "tpcw"

#: The paper's cached views: projections of four tables.
CACHED_VIEW_DDL: List[str] = [
    # Full projections of the catalog tables (read-mostly).
    "CREATE CACHED VIEW cv_item AS SELECT * FROM item",
    "CREATE CACHED VIEW cv_author AS SELECT * FROM author",
    # Projections of the large, frequently updated order tables — exactly
    # what the bestseller query needs.
    "CREATE CACHED VIEW cv_orders AS SELECT o_id, o_c_id, o_date FROM orders",
    "CREATE CACHED VIEW cv_order_line AS "
    "SELECT ol_id, ol_o_id, ol_i_id, ol_qty, ol_discount FROM order_line",
]


def build_backend(
    config: Optional[TPCWConfig] = None,
    server_name: str = "backend",
) -> Tuple[Server, TPCWConfig]:
    """Create and populate a TPC-W backend server."""
    config = config or TPCWConfig()
    backend = Server(server_name)
    backend.create_database(DATABASE_NAME)
    create_schema(backend, DATABASE_NAME)
    populate(backend, DATABASE_NAME, config)
    install_procedures(backend, DATABASE_NAME, config)
    return backend, config


def enable_caching(
    backend: Server,
    cache_names: List[str],
    config: Optional[TPCWConfig] = None,
    cost_model: Optional[CostModel] = None,
    optimizer_options: Optional[dict] = None,
    logreader_interval: float = 0.25,
    agent_interval: float = 0.25,
) -> Tuple[MTCacheDeployment, List[CacheServer]]:
    """Attach MTCache servers with the paper's caching strategy."""
    deployment = MTCacheDeployment(
        backend,
        DATABASE_NAME,
        logreader_interval=logreader_interval,
        agent_interval=agent_interval,
    )
    caches: List[CacheServer] = []
    for name in cache_names:
        cache = deployment.add_cache_server(
            name, cost_model=cost_model, optimizer_options=optimizer_options
        )
        for ddl in CACHED_VIEW_DDL:
            cache.create_cached_view(ddl)
        cache.copy_procedures(CACHE_PROCEDURES)
        caches.append(cache)
    return deployment, caches
