"""Distributed queries: linked servers, remote execution, two-phase commit."""

from repro.distributed.linked_server import (
    LinkedServerRegistry,
    RemoteStatementHandle,
    ServerLink,
)
from repro.distributed.dtc import DistributedTransactionCoordinator

__all__ = [
    "LinkedServerRegistry",
    "RemoteStatementHandle",
    "ServerLink",
    "DistributedTransactionCoordinator",
]
