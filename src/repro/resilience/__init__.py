"""Resilience primitives: retries, circuit breakers, failover routing.

The paper's availability story (§1: "the application keeps running when a
cache goes down") is implemented here in three layers:

* :class:`RetryPolicy` — bounded exponential backoff, in *virtual* time,
  for transient linked-server failures (``repro.errors.is_transient``).
* :class:`CircuitBreaker` — per-link closed→open→half-open state machine
  that converts a down target from slow retry storms into fast failures,
  exported as the ``resilience.breaker_state`` gauge.
* :class:`FailoverRouter` — an application-tier connection wrapper that
  reroutes statements from a failed cache to the backend and probes its
  way back after recovery.

Like ``repro.faults``, this package never reads the wall clock; backoff
"sleeps" advance the injected :class:`~repro.common.clock.SimulatedClock`
(selflint's ``resilience-determinism`` rule enforces it).
"""

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.failover import FailoverRouter
from repro.resilience.retry import RetryPolicy

__all__ = ["CircuitBreaker", "FailoverRouter", "RetryPolicy"]
