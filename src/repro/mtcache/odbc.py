"""ODBC-source-style redirection: the transparency mechanism.

In Windows, applications connect to a *logical* ODBC source name that maps
to an actual server. Enabling MTCache for an application is a pure
configuration change: redirect the source from the backend server to the
cache server (paper §4, "Rerouting the application's ODBC sources").

Applications written against :class:`OdbcConnection` never know which
server answers them — the definition of cache transparency.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.engine.results import Result
from repro.engine.session import Session
from repro.errors import DistributedError


class OdbcConnection:
    """A live connection through a logical source name."""

    def __init__(self, server, database: Optional[str], principal: str):
        self.server = server
        self.database = database
        self.session = Session(principal=principal, database=database)

    def execute(self, sql: str, params: Optional[Dict[str, Any]] = None) -> Result:
        return self.server.execute(
            sql, params=params, session=self.session, database=self.database
        )

    @property
    def server_name(self) -> str:
        """Which physical server this connection reaches (diagnostics)."""
        return self.server.name


class OdbcSourceRegistry:
    """Maps logical source names to physical servers."""

    def __init__(self):
        self._sources: Dict[str, Dict[str, Any]] = {}

    def register(self, name: str, server, database: Optional[str] = None) -> None:
        """Define a logical source (initially pointing at the backend)."""
        self._sources[name.lower()] = {"server": server, "database": database}

    def redirect(self, name: str, server, database: Optional[str] = None) -> None:
        """Re-point a source at a different server — no app changes needed."""
        if name.lower() not in self._sources:
            raise DistributedError(f"no ODBC source {name!r}")
        entry = self._sources[name.lower()]
        entry["server"] = server
        if database is not None:
            entry["database"] = database

    def connect(self, name: str, principal: str = "dbo") -> OdbcConnection:
        entry = self._sources.get(name.lower())
        if entry is None:
            raise DistributedError(f"no ODBC source {name!r}")
        return OdbcConnection(entry["server"], entry["database"], principal)

    def target_of(self, name: str) -> str:
        entry = self._sources.get(name.lower())
        if entry is None:
            raise DistributedError(f"no ODBC source {name!r}")
        return entry["server"].name
