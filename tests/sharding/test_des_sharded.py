"""DES scenarios past the paper's five servers: 16-32 shard tiers."""

from __future__ import annotations

import pytest

from repro.simulation.calibrate import calibrate
from repro.simulation.des import ChaosSpec, DESConfig, simulate_cluster

pytestmark = pytest.mark.shard


@pytest.fixture(scope="module")
def calibration():
    return calibrate()


def _cfg(**overrides):
    base = dict(duration=60.0, warmup=10.0, seed=99)
    base.update(overrides)
    return DESConfig(**base)


def test_sharded_tier_scales_past_five_servers(calibration):
    """Throughput keeps growing 5 -> 16 -> 32 shards in sharded mode."""
    results = {
        servers: simulate_cluster(
            calibration, _cfg(users=30 * servers, servers=servers, sharded=True)
        )
        for servers in (5, 16, 32)
    }
    assert results[16].wips > results[5].wips * 2.5
    assert results[32].wips > results[16].wips * 1.6
    for result in results.values():
        assert result.completed > 0
        assert result.replication_samples > 0


def test_sharded_apply_work_stays_below_full_replication(calibration):
    """At a wide tier, per-shard apply cost must undercut full fan-out.

    Each machine applies broadcast_fraction + (1-broadcast_fraction)/N of
    the command stream instead of all of it, so web-tier utilization (which
    includes pull-agent apply CPU) drops relative to the flat tier under
    the identical workload.
    """
    flat = simulate_cluster(calibration, _cfg(users=480, servers=16))
    sharded = simulate_cluster(
        calibration, _cfg(users=480, servers=16, sharded=True)
    )
    assert sharded.web_utilization <= flat.web_utilization
    assert sharded.replication_latency <= flat.replication_latency * 1.05
    # Same offered load completes either way.
    assert abs(sharded.completed - flat.completed) / flat.completed < 0.05


def test_shard_skew_creates_a_hot_shard(calibration):
    even = simulate_cluster(
        calibration, _cfg(users=480, servers=16, sharded=True)
    )
    skewed = simulate_cluster(
        calibration, _cfg(users=480, servers=16, sharded=True, shard_skew=1.0)
    )
    # Evenly placed: the max machine sits near the mean. Skewed: the hot
    # shard runs far above it — the situation boundary moves exist to fix.
    assert even.web_utilization_max < even.web_utilization * 2
    assert skewed.web_utilization_max > skewed.web_utilization * 2


def test_chaos_kill_one_shard_in_wide_tier(calibration):
    result = simulate_cluster(
        calibration,
        _cfg(
            users=320,
            servers=16,
            sharded=True,
            chaos=ChaosSpec(server_index=3, kill_at=25.0, restart_at=40.0),
        ),
    )
    # Interactions failed over (ran on the backend), never failed; the
    # dead shard's apply backlog built and drained after restart.
    assert result.failover_interactions > 0
    assert result.chaos_backlog_peak > 0
    assert result.completed > 0
    assert result.replication_latency_max > result.replication_latency
