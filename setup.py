"""Legacy shim so `pip install -e .` works offline (no wheel package).

The real metadata lives in pyproject.toml; this file only enables the
setuptools legacy editable-install path on environments without `wheel`.
"""
from setuptools import setup

setup()
