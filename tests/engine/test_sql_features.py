"""Broad SQL behavioural coverage: one test per distinct feature."""


import pytest

from repro import Server


@pytest.fixture(scope="module")
def server():
    s = Server("features")
    s.create_database("db")
    s.execute(
        """
        CREATE TABLE emp (
            eid INT PRIMARY KEY,
            name VARCHAR(30) NOT NULL,
            dept VARCHAR(10),
            salary FLOAT,
            hired DATETIME
        )
        """
    )
    rows = [
        (1, "Alice", "eng", 120.0, "2001-03-01"),
        (2, "Bob", "eng", 100.0, "2002-07-15"),
        (3, "Carol", "sales", 90.0, "2000-01-20"),
        (4, "Dan", "sales", None, "2003-02-02"),
        (5, "Eve", None, 150.0, "1999-12-31"),
    ]
    for row in rows:
        s.execute(
            "INSERT INTO emp VALUES (@a, @b, @c, @d, @e)",
            params=dict(zip("abcde", row)),
        )
    s.database("db").analyze_all()
    return s


class TestNullSemantics:
    def test_where_null_comparison_selects_nothing(self, server):
        assert server.execute("SELECT eid FROM emp WHERE dept = NULL").rows == []

    def test_is_null(self, server):
        assert server.execute("SELECT eid FROM emp WHERE dept IS NULL").rows == [(5,)]

    def test_aggregates_skip_nulls(self, server):
        result = server.execute("SELECT COUNT(salary), AVG(salary) FROM emp")
        assert result.rows[0][0] == 4
        assert result.rows[0][1] == pytest.approx(115.0)

    def test_nulls_sort_first_ascending(self, server):
        rows = server.execute("SELECT eid FROM emp ORDER BY salary").rows
        assert rows[0] == (4,)

    def test_nulls_sort_last_descending(self, server):
        rows = server.execute("SELECT eid FROM emp ORDER BY salary DESC").rows
        assert rows[-1] == (4,)

    def test_not_in_with_null_in_list(self, server):
        # dept NOT IN ('eng', NULL) is never TRUE.
        rows = server.execute(
            "SELECT eid FROM emp WHERE dept NOT IN ('eng', NULL)"
        ).rows
        assert rows == []


class TestStringsAndDates:
    def test_like_case_insensitive(self, server):
        rows = server.execute("SELECT name FROM emp WHERE name LIKE 'a%'").rows
        assert rows == [("Alice",)]

    def test_string_functions_in_projection(self, server):
        result = server.execute(
            "SELECT UPPER(name), LEN(name), SUBSTRING(name, 1, 3) FROM emp WHERE eid = 1"
        )
        assert result.rows == [("ALICE", 5, "Ali")]

    def test_string_concat_in_projection(self, server):
        result = server.execute(
            "SELECT name + ' (' + dept + ')' FROM emp WHERE eid = 2"
        )
        assert result.rows == [("Bob (eng)",)]

    def test_date_range_predicate(self, server):
        rows = server.execute(
            "SELECT eid FROM emp WHERE hired >= '2002-01-01' ORDER BY eid"
        ).rows
        assert rows == [(2,), (4,)]

    def test_year_extraction(self, server):
        result = server.execute("SELECT YEAR(hired) FROM emp WHERE eid = 5")
        assert result.rows == [(1999,)]

    def test_date_ordering(self, server):
        rows = server.execute("SELECT eid FROM emp ORDER BY hired").rows
        assert rows[0] == (5,) and rows[-1] == (4,)


class TestExpressions:
    def test_case_in_where(self, server):
        rows = server.execute(
            "SELECT eid FROM emp WHERE CASE WHEN dept = 'eng' THEN 1 ELSE 0 END = 1 "
            "ORDER BY eid"
        ).rows
        assert rows == [(1,), (2,)]

    def test_case_in_order_by(self, server):
        rows = server.execute(
            "SELECT eid FROM emp ORDER BY CASE WHEN dept = 'sales' THEN 0 ELSE 1 END, eid"
        ).rows
        assert rows[:2] == [(3,), (4,)]

    def test_arithmetic_in_predicate(self, server):
        rows = server.execute(
            "SELECT eid FROM emp WHERE salary * 2 > 220 ORDER BY eid"
        ).rows
        assert rows == [(1,), (5,)]

    def test_coalesce_in_projection(self, server):
        rows = server.execute(
            "SELECT COALESCE(dept, 'unknown') FROM emp WHERE eid = 5"
        ).rows
        assert rows == [("unknown",)]

    def test_between_inclusive(self, server):
        rows = server.execute(
            "SELECT eid FROM emp WHERE salary BETWEEN 90 AND 120 ORDER BY eid"
        ).rows
        assert rows == [(1,), (2,), (3,)]


class TestGroupingShapes:
    def test_group_by_expression(self, server):
        rows = server.execute(
            "SELECT COALESCE(dept, 'none') AS d, COUNT(*) AS n FROM emp "
            "GROUP BY COALESCE(dept, 'none') ORDER BY d"
        ).rows
        assert rows == [("eng", 2), ("none", 1), ("sales", 2)]

    def test_group_by_null_group(self, server):
        rows = server.execute(
            "SELECT dept, COUNT(*) FROM emp GROUP BY dept ORDER BY dept"
        ).rows
        assert (None, 1) in rows

    def test_having_on_aggregate_not_selected(self, server):
        rows = server.execute(
            "SELECT dept FROM emp WHERE dept IS NOT NULL GROUP BY dept "
            "HAVING MAX(salary) > 110 ORDER BY dept"
        ).rows
        assert rows == [("eng",)]

    def test_multiple_aggregates_one_pass(self, server):
        result = server.execute(
            "SELECT COUNT(*), COUNT(dept), MIN(salary), MAX(salary), SUM(salary) FROM emp"
        )
        assert result.rows == [(5, 4, 90.0, 150.0, 460.0)]

    def test_top_with_ties_is_deterministic(self, server):
        first = server.execute("SELECT TOP 2 eid FROM emp ORDER BY dept, eid").rows
        second = server.execute("SELECT TOP 2 eid FROM emp ORDER BY dept, eid").rows
        assert first == second

    def test_distinct_on_expression(self, server):
        rows = server.execute(
            "SELECT DISTINCT COALESCE(dept, 'x') FROM emp"
        ).rows
        assert sorted(rows) == [("eng",), ("sales",), ("x",)]


class TestParameterEdges:
    def test_parameter_in_top(self, server):
        rows = server.execute(
            "SELECT TOP (@n) eid FROM emp ORDER BY eid", params={"n": 2}
        ).rows
        assert rows == [(1,), (2,)]

    def test_parameter_in_like(self, server):
        rows = server.execute(
            "SELECT name FROM emp WHERE name LIKE @p", params={"p": "%o%"}
        ).rows
        assert sorted(rows) == [("Bob",), ("Carol",)]

    def test_parameter_arithmetic(self, server):
        rows = server.execute(
            "SELECT eid FROM emp WHERE salary > @base + 10",
            params={"base": 110},
        ).rows
        assert rows == [(5,)]

    def test_string_parameter_coercion(self, server):
        rows = server.execute(
            "SELECT eid FROM emp WHERE dept = @d", params={"d": "eng"}
        ).rows
        assert len(rows) == 2
