"""Shared fixtures: a small sharded TPC-W deployment."""

from __future__ import annotations

import pytest

from repro.sharding import ShardedDeployment
from repro.tpcw import TPCWConfig

SMALL_CONFIG = dict(num_items=120, num_ebs=4, seed=7)


@pytest.fixture(scope="module")
def sharded():
    """A 4-shard tier over a freshly built small TPC-W backend.

    Module-scoped: building and populating the backend plus provisioning
    four subscribed shards is the expensive part; tests that mutate
    placement build their own deployment instead.
    """
    return ShardedDeployment(config=TPCWConfig(**SMALL_CONFIG), shards=4)


@pytest.fixture
def router(sharded):
    return sharded.router()
