"""Sessions: principal, current database, session variables, transaction."""

from __future__ import annotations

from typing import Any, Dict, Optional


class Session:
    """One client connection to a server.

    ``principal`` drives permission checks (the ``dbo`` owner bypasses
    them). ``variables`` holds session-level ``DECLARE``/``SET`` state.
    ``statistics_profile`` is the session-scoped analogue of SQL Server's
    ``SET STATISTICS PROFILE ON``: while True, every SELECT executed on
    this session attaches a per-operator execution profile to its result
    (see :mod:`repro.obs.profile`).
    """

    def __init__(self, principal: str = "dbo", database: Optional[str] = None):
        self.principal = principal
        self.database = database
        self.variables: Dict[str, Any] = {}
        self.in_transaction = False
        # The explicit transaction this session began (None in autocommit).
        # With multiple sessions active on one database, DML must commit
        # against *its own* transaction, not whichever began last.
        self.transaction = None
        self.statistics_profile = False

    def merged_params(self, params: Optional[Dict[str, Any]]) -> Dict[str, Any]:
        """Explicit parameters overlaid on session variables."""
        merged = dict(self.variables)
        if params:
            merged.update(params)
        return merged
