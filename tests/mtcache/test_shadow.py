"""Shadow database construction (paper §3-§4)."""

import pytest

from repro import MTCacheDeployment
from repro.mtcache.scripts import generate_grant_script, generate_shadow_script

from tests.conftest import make_shop_backend


@pytest.fixture
def env():
    backend = make_shop_backend()
    deployment = MTCacheDeployment(backend, "shop")
    cache = deployment.add_cache_server("cache1")
    return backend, deployment, cache


class TestShadowCatalog:
    def test_same_tables(self, env):
        backend, _, cache = env
        backend_tables = set(backend.database("shop").catalog.tables)
        shadow_tables = set(cache.database.catalog.tables)
        assert backend_tables == shadow_tables

    def test_same_indexes(self, env):
        backend, _, cache = env
        assert set(backend.database("shop").catalog.indexes) == set(
            cache.database.catalog.indexes
        )

    def test_shadow_tables_are_empty(self, env):
        _, _, cache = env
        for name in cache.database.catalog.tables:
            assert len(cache.database.storage_table(name)) == 0

    def test_shadow_tables_marked_remote(self, env):
        _, _, cache = env
        assert cache.database.is_remote_table("customer")
        assert cache.database.backend_server == "backend"

    def test_statistics_reflect_backend(self, env):
        backend, _, cache = env
        backend_stats = backend.database("shop").stats_for("customer")
        shadow_stats = cache.database.stats_for("customer")
        assert shadow_stats.row_count == backend_stats.row_count == 200
        assert shadow_stats is not backend_stats  # detached copy

    def test_statistics_refresh(self, env):
        backend, deployment, cache = env
        backend.execute("DELETE FROM customer WHERE cid > 100", database="shop")
        backend.database("shop").analyze("customer")
        deployment.refresh_statistics()
        assert cache.database.stats_for("customer").row_count == 100

    def test_local_parsing_and_binding_works(self, env):
        """Shadowing exists so queries can be parsed/bound locally."""
        _, _, cache = env
        planned = cache.plan("SELECT cname FROM customer WHERE cid = 1")
        assert planned.schema.names == ["cname"]


class TestSetupScripts:
    def test_shadow_script_is_executable_sql(self, env):
        backend, _, _ = env
        script = generate_shadow_script(backend.database("shop").catalog)
        assert "CREATE TABLE customer" in script
        assert "CREATE INDEX ix_orders_cid ON orders" in script
        from repro.sql import parse_statements

        statements = parse_statements(script)
        assert len(statements) >= 4

    def test_grant_script(self, env):
        backend, _, _ = env
        backend.execute("GRANT SELECT ON customer TO webapp", database="shop")
        script = generate_grant_script(backend.database("shop").catalog)
        assert "GRANT SELECT ON customer TO webapp" in script

    def test_cached_view_requires_mtcache_database(self):
        from repro import Server
        from repro.errors import ExecutionError

        plain = Server("plain")
        plain.create_database("db")
        plain.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        with pytest.raises(ExecutionError, match="MTCache"):
            plain.execute("CREATE CACHED VIEW v AS SELECT id FROM t")
