"""ShardRouter: shard-aware statement routing for the partitioned tier.

The router is an execution target like a server or a
:class:`~repro.resilience.failover.FailoverRouter` — wrap it in a
:class:`~repro.client.Connection` (or call :meth:`connection`) and the
application never knows the cache tier is partitioned. Per statement it
decides one of three routes:

* **key** — the statement touches a partitioned table with an equality
  on the partition key (or calls a procedure declared single-key): it
  goes, unmodified, to the owning shard. A stale ownership guess (e.g.
  mid-rebalance) is still correct: the shard's slice view only matches
  keys it actually holds, so the optimizer's guarded plan fetches a
  missing key from the backend.
* **scatter** — a decomposable scan: each shard runs the statement with
  its slice conjunct ANDed in, and the router re-merges (UNION ALL, then
  ORDER BY/TOP re-applied). See :mod:`repro.sharding.scatter`.
* **backend** — everything else (writes, transactions, global
  aggregates, statements over unpartitioned/uncached tables).

Each shard is reached through its own ``FailoverRouter``, so a dead
shard degrades that shard's share of traffic to the backend instead of
failing it. Route decisions are cached per statement text; the scatter
route additionally caches per-shard SQL keyed by the partitioner version
so rebalancing invalidates it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.locks import mutex
from repro.common.lru import LRUCache
from repro.common.schema import Schema
from repro.engine.results import Result
from repro.errors import ClientError, OverloadError
from repro.resilience.deadline import check_deadline
from repro.sharding.policy import (
    ROUTE_KEY,
    ROUTE_SCATTER,
    ShardingPolicy,
)
from repro.sharding.scatter import ScatterQuery, decompose
from repro.sql import ast, parse

#: Value sources for routing keys and procedure arguments:
#: ("param", name) reads the statement's parameter dict, ("literal", v)
#: is a constant baked into the statement text.
_Source = Tuple[str, Any]


@dataclass
class _Decision:
    """A cached routing decision for one statement text."""

    kind: str  # "key" | "scatter" | "backend"
    key_source: Optional[_Source] = None
    scatter: Optional[ScatterQuery] = None
    # None passes the statement's params through unchanged; otherwise a
    # mapping of procedure-parameter name -> value source.
    param_map: Optional[Tuple[Tuple[str, _Source], ...]] = None
    # Per-shard SQL cache: (partitioner version, {shard: sql}).
    _shard_sql: Optional[Tuple[int, Dict[str, str]]] = None


_BACKEND_DECISION = _Decision(kind="backend")


class ShardRouter:
    """Routes statements across shard connections and the backend."""

    def __init__(
        self,
        backend,
        database: str,
        partitioner,
        policy: ShardingPolicy,
        shard_targets: Dict[str, Any],
        registry=None,
        principal: str = "dbo",
        target_factory=None,
    ):
        """``target_factory(name)`` supplies an execution target for a
        shard provisioned after the router was built (rebalancing grows
        the tier); None (or a factory returning None) leaves unknown
        shards to the backend fallback."""
        from repro.client.connection import Connection

        self.partitioner = partitioner
        self.policy = policy
        self.registry = registry
        self.principal = principal
        self._catalog = backend.database(database).catalog
        self._backend = Connection(backend, database=database, principal=principal)
        self._target_factory = target_factory
        # Guards the shard-connection map: routed traffic runs on worker
        # threads while rebalancing adds shards through _shard_connection.
        self._mutex = mutex()
        self._shards: Dict[str, Any] = {
            name: Connection(target, principal=principal)
            for name, target in shard_targets.items()
        }
        self._decisions = LRUCache(capacity=512)
        self.closed = False

    def _shard_connection(self, name: str):
        """The shard's connection, building one for newly added shards."""
        connection = self._shards.get(name)
        if connection is None and self._target_factory is not None:
            with self._mutex:
                connection = self._shards.get(name)
                if connection is None:
                    target = self._target_factory(name)
                    if target is not None:
                        from repro.client.connection import Connection

                        connection = Connection(target, principal=self.principal)
                        self._shards[name] = connection
        return connection

    # -- execution-target surface (what Connection expects) ----------------

    @property
    def server(self):
        """The backend engine server (metrics/clock anchoring)."""
        return self._backend.server

    @property
    def name(self) -> str:
        return f"shard-router({len(self._shards)})"

    def healthy(self) -> bool:
        """The router as a whole survives any shard dying; always healthy."""
        return True

    @property
    def failovers(self) -> int:
        """Total failovers across the per-shard routers."""
        return sum(
            getattr(connection.target, "failovers", 0)
            for connection in list(self._shards.values())
        )

    @property
    def failbacks(self) -> int:
        return sum(
            getattr(connection.target, "failbacks", 0)
            for connection in list(self._shards.values())
        )

    def connection(self):
        """A DBAPI connection facade over this router."""
        from repro.client.connection import Connection

        return Connection(self)

    def close(self) -> None:
        if self.closed:
            return
        for connection in list(self._shards.values()):
            connection.close()
        self._backend.close()
        self.closed = True

    # -- routing -----------------------------------------------------------

    def execute(self, sql: str, params: Optional[Dict[str, Any]] = None) -> Result:
        if self.closed:
            raise ClientError("shard router is closed")
        check_deadline("shard routing")
        decision = self._decisions.get(sql)
        if decision is None:
            decision = self._decide(sql)
            self._decisions[sql] = decision
        if decision.kind == "key":
            return self._execute_key(decision, sql, params)
        if decision.kind == "scatter":
            return self._execute_scatter(decision, params)
        return self._execute_backend(sql, params)

    def _count_hit(self, shard: str) -> None:
        if self.registry is not None:
            self.registry.counter("shard.hits", labels={"shard": shard}).inc()

    def _count_miss(self) -> None:
        if self.registry is not None:
            self.registry.counter("shard.misses").inc()

    def _count_fanout(self) -> None:
        if self.registry is not None:
            self.registry.counter("shard.fanout").inc()

    def _count_degraded(self, shard: str) -> None:
        if self.registry is not None:
            self.registry.counter(
                "overload.degraded_scatter", labels={"shard": shard}
            ).inc()

    def _execute_backend(self, sql, params) -> Result:
        self._count_miss()
        return self._backend.execute(sql, params)

    def _execute_key(self, decision: _Decision, sql: str, params) -> Result:
        value = _resolve(decision.key_source, params)
        if value is None:
            return self._execute_backend(sql, params)
        owner = self.partitioner.owner(value)
        connection = self._shard_connection(owner)
        if connection is None:
            return self._execute_backend(sql, params)
        self._count_hit(owner)
        try:
            return connection.execute(sql, params)
        except OverloadError:
            # The owning shard shed the statement before any effect
            # (OverloadError is raised pre-execution), so re-running on
            # the backend is safe even for writes — degrade instead of
            # failing the request.
            self._count_degraded(owner)
            return self._execute_backend(sql, params)

    def _execute_scatter(self, decision: _Decision, params) -> Result:
        scatter = decision.scatter
        assert scatter is not None
        shard_sql = self._shard_statements(decision)
        if not shard_sql:
            return self._execute_backend(
                # No range slices to scatter over (hash partitioner):
                # reconstruct nothing — run the original on the backend.
                scatter_sql_fallback(scatter),
                _remap(decision.param_map, params),
            )
        exec_params = _remap(decision.param_map, params)
        per_shard: List[Sequence[Tuple]] = []
        schema: Optional[Schema] = None
        for shard, statement in shard_sql.items():
            # Each scatter hop spends budget; stop fanning out the moment
            # the statement's deadline is gone rather than finishing the
            # sweep on borrowed time.
            check_deadline("scatter hop")
            connection = self._shard_connection(shard)
            if connection is None:
                # Unknown shard: its slice statement still returns exactly
                # the slice's rows when run on the backend's base tables —
                # the conjunct defines the slice by value, not placement.
                connection = self._backend
                self._count_miss()
            else:
                self._count_hit(shard)
            try:
                result = connection.execute(statement, exec_params)
            except OverloadError:
                # An overloaded shard shed its slice pre-execution; the
                # slice conjunct selects by value, so the backend's base
                # tables return exactly the same rows. Degrade the hop.
                self._count_degraded(shard)
                result = self._backend.execute(statement, exec_params)
            self._count_fanout()
            per_shard.append(result.rows)
            if schema is None:
                schema = result.schema
        rows = scatter.merge(per_shard)
        if schema is not None and scatter.width < len(schema):
            schema = Schema(list(schema)[: scatter.width])
        return Result(rows=rows, schema=schema, rowcount=len(rows))

    def _shard_statements(self, decision: _Decision) -> Dict[str, str]:
        """Per-shard scatter SQL, cached against the partitioner version."""
        version = self.partitioner.version
        cached = decision._shard_sql
        if cached is not None and cached[0] == version:
            return cached[1]
        slice_of = getattr(self.partitioner, "slice", None)
        statements: Dict[str, str] = {}
        if slice_of is not None:
            for shard in self.partitioner.shards:
                low, high = slice_of(shard)
                if high < low:
                    continue  # empty slice (e.g. a shard mid-provisioning)
                statements[shard] = decision.scatter.shard_sql(low, high)
        decision._shard_sql = (version, statements)
        return statements

    # -- decision building -------------------------------------------------

    def _decide(self, sql: str) -> _Decision:
        try:
            statement = parse(sql)
        except Exception:
            return _BACKEND_DECISION
        if isinstance(statement, ast.Execute):
            return self._decide_execute(statement)
        if isinstance(statement, ast.Select):
            return self._decide_select(statement)
        return _BACKEND_DECISION

    def _decide_execute(self, statement: ast.Execute) -> _Decision:
        procedure_name = statement.procedure[-1]
        route = self.policy.route_for(procedure_name)
        try:
            procedure = self._catalog.get_procedure(procedure_name)
        except Exception:
            return _BACKEND_DECISION
        arguments = _argument_sources(statement, procedure)
        if arguments is None:
            return _BACKEND_DECISION
        if route.kind == ROUTE_KEY and route.key_param:
            source = dict(arguments).get(route.key_param.lower())
            if source is None:
                return _BACKEND_DECISION
            return _Decision(kind="key", key_source=source)
        if route.kind == ROUTE_SCATTER:
            selects = [
                body_statement
                for body_statement in procedure.body
                if isinstance(body_statement, ast.Select)
            ]
            if len(selects) != 1 or len(procedure.body) != 1:
                return _BACKEND_DECISION
            scatter = decompose(selects[0], self.policy.partitions)
            if scatter is None:
                return _BACKEND_DECISION
            return _Decision(kind="scatter", scatter=scatter, param_map=arguments)
        return _BACKEND_DECISION

    def _decide_select(self, statement: ast.Select) -> _Decision:
        key_source = self._key_equality(statement)
        if key_source is not None:
            return _Decision(kind="key", key_source=key_source)
        scatter = decompose(statement, self.policy.partitions)
        if scatter is not None and self._tables_shadowed(statement):
            return _Decision(kind="scatter", scatter=scatter, param_map=None)
        return _BACKEND_DECISION

    def _tables_shadowed(self, statement: ast.Select) -> bool:
        shadowed = {table.lower() for table in self.policy.shadow_tables}
        from repro.sharding.scatter import _table_names

        tables = _table_names(statement.from_clause)
        if not tables:
            return False
        return all(table.object_name.lower() in shadowed for table in tables)

    def _key_equality(self, statement: ast.Select) -> Optional[_Source]:
        """A ``key = @p`` / ``key = literal`` conjunct on the partition key."""
        from repro.optimizer.predicates import split_conjuncts
        from repro.sharding.scatter import _table_names

        if not self._tables_shadowed(statement):
            return None
        tables = _table_names(statement.from_clause) or []
        partitioned = [
            table
            for table in tables
            if table.object_name.lower() in self.policy.partitions
        ]
        if len(partitioned) != 1:
            return None
        partition = self.policy.partitions[partitioned[0].object_name.lower()]
        qualifiers = {
            partitioned[0].binding_name.lower(),
            partitioned[0].object_name.lower(),
        }
        for conjunct in split_conjuncts(statement.where):
            if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
                continue
            for column, value in (
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left),
            ):
                if not isinstance(column, ast.ColumnRef):
                    continue
                if column.name.lower() != partition.key_column.lower():
                    continue
                if column.qualifier and column.qualifier.lower() not in qualifiers:
                    continue
                if isinstance(value, ast.Parameter):
                    return ("param", value.name)
                if isinstance(value, ast.Literal) and value.value is not None:
                    return ("literal", value.value)
        return None

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"<ShardRouter shards={list(self._shards)} {state}>"


def _argument_sources(
    statement: ast.Execute, procedure
) -> Optional[Tuple[Tuple[str, _Source], ...]]:
    """Map procedure parameter names to value sources, or None when the
    call uses expressions the router cannot evaluate client-side."""
    parameter_names = [param.name.lower() for param in procedure.params]
    sources: List[Tuple[str, _Source]] = []
    for position, (name, expression) in enumerate(statement.arguments):
        if name is not None:
            target = name.lower()
        elif position < len(parameter_names):
            target = parameter_names[position]
        else:
            return None
        if isinstance(expression, ast.Parameter):
            sources.append((target, ("param", expression.name)))
        elif isinstance(expression, ast.Literal):
            sources.append((target, ("literal", expression.value)))
        else:
            return None
    return tuple(sources)


def _resolve(source: Optional[_Source], params: Optional[Dict[str, Any]]):
    if source is None:
        return None
    kind, value = source
    if kind == "literal":
        return value
    return (params or {}).get(value)


def _remap(
    param_map: Optional[Tuple[Tuple[str, _Source], ...]],
    params: Optional[Dict[str, Any]],
) -> Optional[Dict[str, Any]]:
    if param_map is None:
        return params
    return {name: _resolve(source, params) for name, source in param_map}


def scatter_sql_fallback(scatter: ScatterQuery) -> str:
    """The undecomposed statement text (backend fallback for scatter)."""
    from repro.sql.formatter import format_statement

    trimmed = scatter.select
    if scatter.width < len(trimmed.items):
        from dataclasses import replace

        trimmed = replace(trimmed, items=trimmed.items[: scatter.width])
    return format_statement(trimmed)
