"""The partitioned cache tier: shard routing, rebalancing, failover.

The paper's scale-out replicates the same cached views to every cache
server, so each server pays the full replication-apply cost and the tier
tops out around five servers. This example partitions instead: four
shards each subscribe to a horizontal slice of the TPC-W item table, a
shard-aware router sends single-key statements to the owning shard and
scatter-gathers scans, and the tier rebalances live — all behind the
same client surface every other example uses.

Run:  python examples/sharded_tier.py
"""

from repro.client.connection import connect
from repro.faults import FaultInjector
from repro.net import register_inproc
from repro.sharding import ShardedDeployment
from repro.tpcw import TPCWConfig


def shard_hits(sharded):
    return {
        name: sharded.metrics.counter("shard.hits", labels={"shard": name}).value
        for name in sharded.partitioner.shards
    }


def main() -> None:
    config = TPCWConfig(num_items=200, num_ebs=6, seed=11)
    sharded = ShardedDeployment(config=config, shards=4)
    connection = sharded.connect()
    register_inproc("sharded/backend", sharded.backend, database=sharded.database_name)
    backend = connect("inproc://sharded/backend")

    print("Slices (item ids per shard):")
    for name in sharded.partitioner.shards:
        low, high = sharded.partitioner.slice(name)
        print(f"  {name}: i_id BETWEEN {low} AND {high}")

    # --- Key routing ----------------------------------------------------------
    for i_id in (3, 60, 120, 190):
        owner = sharded.partitioner.owner(i_id)
        rows = connection.execute("EXEC getBook @i_id = @i_id", {"i_id": i_id}).rows
        print(f"  getBook({i_id:3d}) -> {owner}, {len(rows)} row")
    print(f"  per-shard hits: {shard_hits(sharded)}")

    # --- Scatter-gather -------------------------------------------------------
    sql = "EXEC doSubjectSearch @subject = @subject"
    routed = connection.execute(sql, {"subject": "HISTORY"}).rows
    direct = backend.execute(sql, {"subject": "HISTORY"}).rows
    fanout = sharded.metrics.counter("shard.fanout").value
    print(f"\nScatter-gather: {len(routed)} rows, identical to backend: "
          f"{routed == direct} (fanout counter: {fanout})")

    # --- Live rebalancing -----------------------------------------------------
    print("\nAdding shard4 (splits the widest slice):")
    sharded.add_shard("shard4")
    sharded.sync()
    for name in sharded.partitioner.shards:
        low, high = sharded.partitioner.slice(name)
        print(f"  {name}: i_id BETWEEN {low} AND {high}")
    low, _ = sharded.partitioner.slice("shard4")
    rows = connection.execute("EXEC getBook @i_id = @i_id", {"i_id": low}).rows
    print(f"  getBook({low}) now served by shard4: {len(rows)} row, "
          f"hits={shard_hits(sharded)['shard4']}")

    # --- Shard loss -----------------------------------------------------------
    print("\nCrashing shard1; traffic degrades to the backend, never fails:")
    injector = FaultInjector(sharded.clock, seed=3)
    sharded.attach_fault_injector(injector)
    injector.crash_cache(sharded.shard("shard1"))
    low, _ = sharded.partitioner.slice("shard1")
    rows = connection.execute("EXEC getBook @i_id = @i_id", {"i_id": low}).rows
    print(f"  getBook({low}) with shard1 down -> {len(rows)} row "
          f"(failed over transparently)")
    injector.restart_cache(sharded.shard("shard1"))
    sharded.sync()
    rows = connection.execute("EXEC getBook @i_id = @i_id", {"i_id": low}).rows
    print(f"  after restart + sync       -> {len(rows)} row, served locally again")


if __name__ == "__main__":
    main()
