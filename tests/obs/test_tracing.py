"""Trace spans: linkage, propagation across linked servers, export."""

import pytest

from repro.obs.tracing import (
    NULL_SPAN,
    SpanCollector,
    Tracer,
    active_span,
    format_trace,
    global_collector,
)


@pytest.fixture(autouse=True)
def clean_collector():
    global_collector().clear()
    yield
    global_collector().clear()


class TestSpanBasics:
    def test_root_span_starts_its_own_trace(self):
        collector = SpanCollector()
        tracer = Tracer("svc", collector=collector)
        with tracer.span("root") as span:
            assert span.trace_id == span.span_id
            assert span.parent_id is None
            assert active_span() is span
        assert active_span() is None
        assert collector.spans() == [span]

    def test_nested_spans_link_parent_child(self):
        collector = SpanCollector()
        tracer = Tracer("svc", collector=collector)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id

    def test_error_status_and_restored_context(self):
        collector = SpanCollector()
        tracer = Tracer("svc", collector=collector)
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        (span,) = collector.spans()
        assert span.status == "error"
        assert "nope" in span.attributes["error"]
        assert active_span() is None

    def test_disabled_tracer_hands_out_null_span(self):
        tracer = Tracer("svc", enabled=False)
        assert tracer.span("anything") is NULL_SPAN
        with tracer.span("anything"):
            assert active_span() is None

    def test_attributes_trimmed_on_export_only(self):
        collector = SpanCollector()
        tracer = Tracer("svc", collector=collector)
        long_sql = "SELECT   *\nFROM t WHERE " + "x = 1 AND " * 40 + "y = 2"
        with tracer.span("batch", sql=long_sql):
            pass
        (span,) = collector.spans()
        assert span.attributes["sql"] == long_sql  # raw on the hot path
        exported = span.to_dict()["attributes"]["sql"]
        assert len(exported) <= 120
        assert "\n" not in exported

    def test_collector_ring_buffer_bounds(self):
        collector = SpanCollector(capacity=4)
        tracer = Tracer("svc", collector=collector)
        for index in range(10):
            with tracer.span(f"s{index}"):
                pass
        assert len(collector) == 4
        assert [span.name for span in collector.spans()] == ["s6", "s7", "s8", "s9"]

    def test_format_trace_renders_tree(self):
        collector = SpanCollector()
        tracer = Tracer("svc", collector=collector)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        text = format_trace(collector.spans())
        lines = text.splitlines()
        assert lines[0].startswith("svc/outer")
        assert lines[1].startswith("  svc/inner")


class TestCrossServerPropagation:
    """Satellite: span propagation across a linked-server round trip."""

    def _remote_query(self, cache, cid):
        return cache.execute(
            "SELECT cname FROM customer WHERE cid = @cid", params={"cid": cid}
        )

    def test_backend_spans_are_children_of_midtier_span(self, cache):
        # cid=150 is outside the cached view's cid<=100 range: the
        # dynamic plan takes the remote branch through the ServerLink.
        result = self._remote_query(cache, 150)
        assert result.rows == [("cust150",)]

        collector = global_collector()
        trace_id = collector.latest_trace_id()
        spans = collector.trace(trace_id)
        by_id = {span.span_id: span for span in spans}
        services = {span.service for span in spans}
        assert services == {"cache1", "backend"}

        # Every non-root span's parent is in the same trace.
        roots = [span for span in spans if span.parent_id is None]
        assert len(roots) == 1
        for span in spans:
            if span.parent_id is not None:
                assert span.parent_id in by_id

        # Walking up from any backend span reaches a cache1 span: the
        # backend's work is nested inside the mid-tier statement.
        backend_spans = [span for span in spans if span.service == "backend"]
        assert backend_spans
        for span in backend_spans:
            node = span
            while node.parent_id is not None and node.service != "cache1":
                node = by_id[node.parent_id]
            assert node.service == "cache1"

        # The client side of the remote call is visible too.
        names = {span.name for span in spans}
        assert "remote.query" in names

    def test_prepared_handle_fast_path_keeps_linkage(self, cache):
        # First execution prepares the remote statement; the second goes
        # by handle (PR 1 fast path). Both must produce linked traces.
        self._remote_query(cache, 150)
        global_collector().clear()
        self._remote_query(cache, 151)

        spans = global_collector().trace(global_collector().latest_trace_id())
        names = {span.name for span in spans}
        assert "remote.prepared" in names  # by-handle execution span
        by_id = {span.span_id: span for span in spans}
        backend_spans = [span for span in spans if span.service == "backend"]
        assert backend_spans
        for span in backend_spans:
            node = span
            while node.parent_id is not None and node.service != "cache1":
                node = by_id[node.parent_id]
            assert node.service == "cache1"

    def test_observability_off_produces_no_spans(self):
        from repro import Server

        dark = Server("dark", observability=False)
        dark.create_database("d")
        dark.execute("CREATE TABLE t (a INT)")
        global_collector().clear()
        dark.execute("SELECT a FROM t")
        assert len(global_collector()) == 0


class TestPropagatedTrace:
    """Wire-protocol trace adoption: spans parent under a remote context."""

    def test_spans_join_the_propagated_trace(self):
        from repro.obs.tracing import propagated_trace

        collector = SpanCollector()
        tracer = Tracer("server", collector=collector)
        with propagated_trace(trace_id=777, span_id=42, service="wire"):
            with tracer.span("statement"):
                pass
        [span] = collector.trace(777)
        assert span.trace_id == 777
        assert span.parent_id == 42
        assert span.service == "server"

    def test_synthetic_parent_is_never_recorded(self):
        from repro.obs.tracing import propagated_trace

        collector = SpanCollector()
        tracer = Tracer("server", collector=collector)
        with propagated_trace(trace_id=778, span_id=43):
            with tracer.span("statement"):
                pass
        names = {span.name for span in collector.trace(778)}
        assert names == {"statement"}  # no "(remote-parent)" span

    def test_context_is_restored_after_exit(self):
        from repro.obs.tracing import propagated_trace

        collector = SpanCollector()
        tracer = Tracer("server", collector=collector)
        with propagated_trace(trace_id=779, span_id=44):
            pass
        with tracer.span("after"):
            pass
        [span] = [s for s in collector.spans() if s.name == "after"]
        assert span.trace_id != 779  # a fresh root, not the adopted trace
        assert span.parent_id is None
