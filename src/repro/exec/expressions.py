"""Expression compilation: AST → Python closures with SQL semantics.

Expressions compile once per plan against an input :class:`Schema`; the
resulting closures take ``(row, context)`` and return a Python value where
``None`` is SQL NULL. Comparison and boolean operators follow SQL
three-valued logic (``None`` = UNKNOWN); predicates accept a row only when
the compiled closure returns exactly ``True``.

Guard predicates for dynamic plans (paper §5.1) reference only parameters,
so they compile to closures that ignore the row — the FilterOp startup
predicate evaluates them once per execution.
"""

from __future__ import annotations

import datetime
import re
from typing import Any, Callable, Optional, Tuple

from repro.common.schema import Schema
from repro.errors import ExecutionError, TypeCheckError
from repro.sql import ast

Scalar = Callable[[Tuple, "object"], Any]


def sql_equal(left: Any, right: Any) -> Optional[bool]:
    """Three-valued ``=``: NULL operands yield UNKNOWN (None)."""
    if left is None or right is None:
        return None
    return _coerce_pair(left, right, "=") == 0


def sql_compare(op: str, left: Any, right: Any) -> Optional[bool]:
    """Three-valued comparison for =, <>, <, <=, >, >=."""
    if left is None or right is None:
        return None
    sign = _coerce_pair(left, right, op)
    if op == "=":
        return sign == 0
    if op == "<>":
        return sign != 0
    if op == "<":
        return sign < 0
    if op == "<=":
        return sign <= 0
    if op == ">":
        return sign > 0
    if op == ">=":
        return sign >= 0
    raise ExecutionError(f"unknown comparison operator {op!r}")


def _coerce_pair(left: Any, right: Any, op: str) -> int:
    """Return -1/0/1 for left vs right, coercing numerics."""
    if isinstance(left, bool):
        left = int(left)
    if isinstance(right, bool):
        right = int(right)
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return (left > right) - (left < right)
    if isinstance(left, str) and isinstance(right, str):
        return (left > right) - (left < right)
    # Date/datetime compared against ISO strings (common in generated SQL)
    # — resolve the string side first, then fall through to temporal rules.
    if isinstance(left, (datetime.date, datetime.datetime)) and isinstance(right, str):
        right = _parse_temporal(right, left)
    elif isinstance(right, (datetime.date, datetime.datetime)) and isinstance(left, str):
        left = _parse_temporal(left, right)
    if isinstance(left, datetime.datetime) or isinstance(right, datetime.datetime):
        left_dt = _as_datetime(left)
        right_dt = _as_datetime(right)
        return (left_dt > right_dt) - (left_dt < right_dt)
    if isinstance(left, datetime.date) and isinstance(right, datetime.date):
        return (left > right) - (left < right)
    raise TypeCheckError(f"cannot apply {op!r} to {type(left).__name__} and {type(right).__name__}")


def _as_datetime(value: Any) -> datetime.datetime:
    if isinstance(value, datetime.datetime):
        return value
    if isinstance(value, datetime.date):
        return datetime.datetime(value.year, value.month, value.day)
    raise TypeCheckError(f"cannot treat {value!r} as datetime")


def _parse_temporal(text: str, template: Any) -> Any:
    if isinstance(template, datetime.datetime):
        return datetime.datetime.fromisoformat(text)
    return datetime.date.fromisoformat(text)


def sql_and(left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
    """Kleene AND."""
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def sql_or(left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
    """Kleene OR."""
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def sql_not(value: Optional[bool]) -> Optional[bool]:
    """Kleene NOT."""
    if value is None:
        return None
    return not value


def like_to_regex(pattern: str) -> "re.Pattern":
    """Translate a SQL LIKE pattern (% _) into an anchored regex."""
    out = []
    for char in pattern:
        if char == "%":
            out.append(".*")
        elif char == "_":
            out.append(".")
        else:
            out.append(re.escape(char))
    return re.compile("^" + "".join(out) + "$", re.IGNORECASE | re.DOTALL)


class ExpressionCompiler:
    """Compiles AST expressions to closures over a fixed input schema."""

    def __init__(self, schema: Optional[Schema] = None):
        self.schema = schema or Schema(())

    def compile(self, expression: ast.Expression) -> Scalar:
        """Compile a scalar expression."""
        method = getattr(self, f"_compile_{type(expression).__name__.lower()}", None)
        if method is None:
            raise ExecutionError(
                f"cannot compile expression of type {type(expression).__name__}"
            )
        return method(expression)

    # -- leaves ---------------------------------------------------------------

    def _compile_literal(self, node: ast.Literal) -> Scalar:
        value = node.value
        return lambda row, ctx: value

    def _compile_columnref(self, node: ast.ColumnRef) -> Scalar:
        position = self.schema.resolve(node.name, node.qualifier)
        return lambda row, ctx: row[position]

    def _compile_parameter(self, node: ast.Parameter) -> Scalar:
        name = node.name
        return lambda row, ctx: ctx.param(name)

    def _compile_star(self, node: ast.Star) -> Scalar:
        raise ExecutionError("'*' is only valid in select lists and COUNT(*)")

    # -- operators ---------------------------------------------------------------

    def _compile_binaryop(self, node: ast.BinaryOp) -> Scalar:
        left = self.compile(node.left)
        right = self.compile(node.right)
        op = node.op
        if op == "AND":
            return lambda row, ctx: sql_and(_as_bool(left(row, ctx)), _as_bool(right(row, ctx)))
        if op == "OR":
            return lambda row, ctx: sql_or(_as_bool(left(row, ctx)), _as_bool(right(row, ctx)))
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return lambda row, ctx: sql_compare(op, left(row, ctx), right(row, ctx))
        if op in ("+", "-", "*", "/", "%"):
            return _compile_arithmetic(op, left, right)
        raise ExecutionError(f"unknown binary operator {op!r}")

    def _compile_unaryop(self, node: ast.UnaryOp) -> Scalar:
        operand = self.compile(node.operand)
        if node.op == "NOT":
            return lambda row, ctx: sql_not(_as_bool(operand(row, ctx)))
        if node.op == "-":
            def negate(row, ctx):
                value = operand(row, ctx)
                return None if value is None else -value

            return negate
        raise ExecutionError(f"unknown unary operator {node.op!r}")

    def _compile_isnull(self, node: ast.IsNull) -> Scalar:
        operand = self.compile(node.operand)
        if node.negated:
            return lambda row, ctx: operand(row, ctx) is not None
        return lambda row, ctx: operand(row, ctx) is None

    def _compile_inlist(self, node: ast.InList) -> Scalar:
        operand = self.compile(node.operand)
        items = [self.compile(item) for item in node.items]

        def evaluate(row, ctx):
            value = operand(row, ctx)
            if value is None:
                return None
            seen_null = False
            for item in items:
                candidate = item(row, ctx)
                if candidate is None:
                    seen_null = True
                    continue
                if sql_equal(value, candidate) is True:
                    return False if node.negated else True
            if seen_null:
                return None
            return True if node.negated else False

        return evaluate

    def _compile_insubquery(self, node: ast.InSubquery) -> Scalar:
        operand = self.compile(node.operand)

        def evaluate(row, ctx):
            value = operand(row, ctx)
            if value is None:
                return None
            rows = ctx.run_subquery(node.subquery)
            seen_null = False
            for subrow in rows:
                candidate = subrow[0]
                if candidate is None:
                    seen_null = True
                    continue
                if sql_equal(value, candidate) is True:
                    return False if node.negated else True
            if seen_null:
                return None
            return True if node.negated else False

        return evaluate

    def _compile_between(self, node: ast.Between) -> Scalar:
        operand = self.compile(node.operand)
        low = self.compile(node.low)
        high = self.compile(node.high)

        def evaluate(row, ctx):
            value = operand(row, ctx)
            result = sql_and(
                sql_compare(">=", value, low(row, ctx)),
                sql_compare("<=", value, high(row, ctx)),
            )
            return sql_not(result) if node.negated else result

        return evaluate

    def _compile_like(self, node: ast.Like) -> Scalar:
        operand = self.compile(node.operand)
        pattern_fn = self.compile(node.pattern)
        cache: dict = {}

        def evaluate(row, ctx):
            value = operand(row, ctx)
            pattern = pattern_fn(row, ctx)
            if value is None or pattern is None:
                return None
            regex = cache.get(pattern)
            if regex is None:
                regex = like_to_regex(str(pattern))
                cache[pattern] = regex
            matched = bool(regex.match(str(value)))
            return (not matched) if node.negated else matched

        return evaluate

    def _compile_casewhen(self, node: ast.CaseWhen) -> Scalar:
        compiled = [(self.compile(cond), self.compile(result)) for cond, result in node.whens]
        else_fn = self.compile(node.else_result) if node.else_result is not None else None

        def evaluate(row, ctx):
            for condition, result in compiled:
                if _as_bool(condition(row, ctx)) is True:
                    return result(row, ctx)
            if else_fn is not None:
                return else_fn(row, ctx)
            return None

        return evaluate

    def _compile_exists(self, node: ast.Exists) -> Scalar:
        def evaluate(row, ctx):
            rows = ctx.run_subquery(node.subquery)
            found = bool(rows)
            return (not found) if node.negated else found

        return evaluate

    def _compile_scalarsubquery(self, node: ast.ScalarSubquery) -> Scalar:
        def evaluate(row, ctx):
            rows = ctx.run_subquery(node.subquery)
            if not rows:
                return None
            if len(rows) > 1:
                raise ExecutionError("scalar subquery returned more than one row")
            return rows[0][0]

        return evaluate

    def _compile_funccall(self, node: ast.FuncCall) -> Scalar:
        if node.is_aggregate:
            raise ExecutionError(
                f"aggregate {node.name} outside GROUP BY context"
            )
        return _compile_scalar_function(self, node)


def _as_bool(value: Any) -> Optional[bool]:
    """Interpret a value in boolean context (non-zero numbers are true)."""
    if value is None:
        return None
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    return bool(value)


def _compile_arithmetic(op: str, left: Scalar, right: Scalar) -> Scalar:
    def evaluate(row, ctx):
        lhs = left(row, ctx)
        rhs = right(row, ctx)
        if lhs is None or rhs is None:
            return None
        if op == "+":
            if isinstance(lhs, str) or isinstance(rhs, str):
                # T-SQL string concatenation via +
                if isinstance(lhs, str) and isinstance(rhs, str):
                    return lhs + rhs
                raise TypeCheckError("cannot add string and non-string")
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if op == "/":
            if rhs == 0:
                raise ExecutionError("division by zero")
            if isinstance(lhs, int) and isinstance(rhs, int):
                # T-SQL integer division truncates toward zero.
                quotient = abs(lhs) // abs(rhs)
                return quotient if (lhs >= 0) == (rhs >= 0) else -quotient
            return lhs / rhs
        if op == "%":
            if rhs == 0:
                raise ExecutionError("modulo by zero")
            return lhs - rhs * int(lhs / rhs)
        raise ExecutionError(f"unknown arithmetic operator {op!r}")

    return evaluate


def _compile_scalar_function(compiler: ExpressionCompiler, node: ast.FuncCall) -> Scalar:
    name = node.name
    args = [compiler.compile(arg) for arg in node.args]

    def need(count: int) -> None:
        if len(args) != count:
            raise ExecutionError(f"{name} expects {count} argument(s), got {len(args)}")

    if name == "COALESCE":
        def coalesce(row, ctx):
            for arg in args:
                value = arg(row, ctx)
                if value is not None:
                    return value
            return None

        return coalesce
    if name == "ISNULL":
        need(2)
        return lambda row, ctx: (
            args[0](row, ctx) if args[0](row, ctx) is not None else args[1](row, ctx)
        )
    if name in ("UPPER", "LOWER", "LTRIM", "RTRIM", "LEN", "ABS"):
        need(1)
        simple = {
            "UPPER": lambda v: str(v).upper(),
            "LOWER": lambda v: str(v).lower(),
            "LTRIM": lambda v: str(v).lstrip(),
            "RTRIM": lambda v: str(v).rstrip(),
            "LEN": lambda v: len(str(v).rstrip()),
            "ABS": abs,
        }[name]
        return lambda row, ctx: (None if args[0](row, ctx) is None else simple(args[0](row, ctx)))
    if name == "ROUND":
        need(2)

        def round_fn(row, ctx):
            value = args[0](row, ctx)
            digits = args[1](row, ctx)
            if value is None or digits is None:
                return None
            return round(value, int(digits))

        return round_fn
    if name == "SUBSTRING":
        need(3)

        def substring(row, ctx):
            text = args[0](row, ctx)
            start = args[1](row, ctx)
            length = args[2](row, ctx)
            if text is None or start is None or length is None:
                return None
            begin = max(0, int(start) - 1)  # SQL is 1-based
            return str(text)[begin : begin + int(length)]

        return substring
    if name == "CHARINDEX":
        need(2)

        def charindex(row, ctx):
            needle = args[0](row, ctx)
            haystack = args[1](row, ctx)
            if needle is None or haystack is None:
                return None
            return str(haystack).find(str(needle)) + 1  # 0 when absent, 1-based

        return charindex
    if name == "GETDATE":
        def getdate(row, ctx):
            return datetime.datetime(2003, 6, 9) + datetime.timedelta(seconds=ctx.now())

        return getdate
    if name in ("YEAR", "MONTH", "DAY"):
        need(1)
        attribute = name.lower()

        def extract(row, ctx):
            value = args[0](row, ctx)
            if value is None:
                return None
            return getattr(value, attribute)

        return extract
    if name == "FLOOR":
        need(1)
        import math

        return lambda row, ctx: (
            None if args[0](row, ctx) is None else math.floor(args[0](row, ctx))
        )
    if name == "CEILING":
        need(1)
        import math

        return lambda row, ctx: (
            None if args[0](row, ctx) is None else math.ceil(args[0](row, ctx))
        )
    raise ExecutionError(f"unknown function {name!r}")


def compile_scalar(expression: ast.Expression, schema: Optional[Schema] = None) -> Scalar:
    """Compile a scalar expression against a schema (convenience)."""
    return ExpressionCompiler(schema).compile(expression)


def compile_predicate(expression: ast.Expression, schema: Optional[Schema] = None) -> Scalar:
    """Compile a predicate; callers must test the result ``is True``."""
    return ExpressionCompiler(schema).compile(expression)
