"""Planner tests on a backend server (local planning, access paths)."""

import pytest

from repro.exec.operators import (
    HashJoinOp,
    IndexExtremeOp,
    IndexLookupJoinOp,
    IndexRangeScanOp,
    IndexSeekOp,
    RemoteQueryOp,
    SeqScanOp,
)
from repro.sql import parse

from tests.conftest import make_shop_backend


@pytest.fixture(scope="module")
def backend():
    return make_shop_backend()


def plan(backend, sql):
    return backend.plan_select(parse(sql), backend.database("shop"), cache_key=sql)


def ops_in(planned, op_type):
    return [node for node in planned.root.walk() if isinstance(node, op_type)]


class TestAccessPaths:
    def test_point_query_uses_pk_seek(self, backend):
        planned = plan(backend, "SELECT cname FROM customer WHERE cid = 7")
        assert ops_in(planned, IndexSeekOp)

    def test_range_query_uses_range_scan(self, backend):
        planned = plan(backend, "SELECT cname FROM customer WHERE cid <= 50")
        assert ops_in(planned, IndexRangeScanOp)

    def test_secondary_index_on_equality(self, backend):
        planned = plan(backend, "SELECT cid FROM customer WHERE segment = 'gold'")
        seeks = ops_in(planned, IndexSeekOp)
        assert seeks and seeks[0].index_name == "ix_customer_segment"

    def test_unindexed_predicate_scans(self, backend):
        planned = plan(backend, "SELECT cid FROM customer WHERE cname = 'cust5'")
        assert ops_in(planned, SeqScanOp)

    def test_no_predicate_scans(self, backend):
        planned = plan(backend, "SELECT cid FROM customer")
        assert ops_in(planned, SeqScanOp)

    def test_min_max_uses_index_extreme(self, backend):
        planned = plan(backend, "SELECT MAX(cid) FROM customer")
        assert ops_in(planned, IndexExtremeOp)

    def test_min_max_with_predicate_does_not(self, backend):
        planned = plan(backend, "SELECT MAX(cid) FROM customer WHERE segment = 'gold'")
        assert not ops_in(planned, IndexExtremeOp)

    def test_local_plan_has_no_remote(self, backend):
        planned = plan(backend, "SELECT cname FROM customer WHERE cid = 7")
        assert not planned.uses_remote
        assert not ops_in(planned, RemoteQueryOp)


class TestJoins:
    def test_pk_join_uses_index_lookup(self, backend):
        planned = plan(
            backend,
            "SELECT c.cname, o.total FROM orders o JOIN customer c ON o.o_cid = c.cid "
            "WHERE o.oid = 5",
        )
        assert ops_in(planned, IndexLookupJoinOp)

    def test_unindexed_join_uses_hash(self, backend):
        planned = plan(
            backend,
            "SELECT c.cname, o.status FROM customer c JOIN orders o ON c.cname = o.status",
        )
        assert ops_in(planned, HashJoinOp)

    def test_join_results_correct(self, backend):
        result = backend.execute(
            "SELECT c.cname, o.total FROM orders o JOIN customer c ON o.o_cid = c.cid "
            "WHERE o.oid = 5",
            database="shop",
        )
        assert result.rows == [("cust6", 7.5)]

    def test_three_way_join(self, backend):
        result = backend.execute(
            "SELECT COUNT(*) FROM customer c "
            "JOIN orders o ON o.o_cid = c.cid "
            "JOIN orders o2 ON o2.o_cid = c.cid "
            "WHERE c.cid = 10",
            database="shop",
        )
        assert result.scalar == 4  # 2 orders for cid 10, squared

    def test_cross_join_count(self, backend):
        result = backend.execute(
            "SELECT COUNT(*) FROM customer c, orders o WHERE c.cid = 1 AND o.oid = 1",
            database="shop",
        )
        assert result.scalar == 1


class TestAggregationPlanning:
    def test_group_by_with_having_and_order(self, backend):
        result = backend.execute(
            "SELECT segment, COUNT(*) AS n, SUM(cid) AS s FROM customer "
            "GROUP BY segment HAVING COUNT(*) > 10 ORDER BY n DESC",
            database="shop",
        )
        assert len(result.rows) == 2
        assert result.rows[0][1] >= result.rows[1][1]

    def test_order_by_alias(self, backend):
        result = backend.execute(
            "SELECT cid AS k FROM customer WHERE cid <= 5 ORDER BY k DESC",
            database="shop",
        )
        assert [row[0] for row in result.rows] == [5, 4, 3, 2, 1]

    def test_order_by_aggregate_not_in_select(self, backend):
        result = backend.execute(
            "SELECT segment FROM customer GROUP BY segment ORDER BY COUNT(*) DESC",
            database="shop",
        )
        assert result.rows[0] == ("base",)

    def test_distinct(self, backend):
        result = backend.execute(
            "SELECT DISTINCT segment FROM customer", database="shop"
        )
        assert sorted(result.rows) == [("base",), ("gold",)]

    def test_top_after_order(self, backend):
        result = backend.execute(
            "SELECT TOP 3 cid FROM customer ORDER BY cid DESC", database="shop"
        )
        assert [row[0] for row in result.rows] == [200, 199, 198]

    def test_avg_and_arithmetic_on_aggregates(self, backend):
        result = backend.execute(
            "SELECT AVG(total) + 0.0 AS a, MIN(total), MAX(total) FROM orders",
            database="shop",
        )
        assert result.rows[0][1] == 1.5
        assert result.rows[0][2] == 600.0


class TestDerivedTablesAndViews:
    def test_derived_table(self, backend):
        result = backend.execute(
            "SELECT COUNT(*) FROM (SELECT cid FROM customer WHERE cid <= 10) AS d",
            database="shop",
        )
        assert result.scalar == 10

    def test_plain_view_substitution(self, backend):
        backend.execute(
            "CREATE VIEW gold_customers AS SELECT cid, cname FROM customer WHERE segment = 'gold'",
            database="shop",
        )
        result = backend.execute(
            "SELECT COUNT(*) FROM gold_customers", database="shop"
        )
        assert result.scalar == 66

    def test_select_without_from(self, backend):
        result = backend.execute("SELECT 1 + 2 AS three, 'x'", database="shop")
        assert result.rows == [(3, "x")]

    def test_in_subquery_execution(self, backend):
        result = backend.execute(
            "SELECT COUNT(*) FROM customer WHERE cid IN "
            "(SELECT o_cid FROM orders WHERE total > 595)",
            database="shop",
        )
        assert result.scalar == 4  # orders 397..400 -> customers 198,199,200,1

    def test_scalar_subquery(self, backend):
        result = backend.execute(
            "SELECT (SELECT MAX(cid) FROM customer) AS m", database="shop"
        )
        assert result.scalar == 200


class TestOuterJoins:
    def test_left_join_preserves_unmatched(self, backend):
        backend.execute(
            "CREATE TABLE extras (xid INT PRIMARY KEY, note VARCHAR(20))",
            database="shop",
        )
        backend.execute("INSERT INTO extras VALUES (1, 'one')", database="shop")
        result = backend.execute(
            "SELECT c.cid, e.note FROM customer c LEFT JOIN extras e ON c.cid = e.xid "
            "WHERE c.cid <= 3",
            database="shop",
        )
        by_cid = {row[0]: row[1] for row in result.rows}
        assert by_cid == {1: "one", 2: None, 3: None}
