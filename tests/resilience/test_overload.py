"""AdmissionController + RetryBudget: the overload-protection core."""

import pytest

from repro.common.clock import SimulatedClock
from repro.errors import OverloadError
from repro.obs.metrics import MetricsRegistry
from repro.resilience import AdmissionController, RetryBudget


@pytest.fixture
def clock():
    return SimulatedClock()


def make_gate(clock, **kwargs):
    kwargs.setdefault("rate", 10.0)
    kwargs.setdefault("burst", 5.0)
    kwargs.setdefault("queue_delay_target", 0.1)
    kwargs.setdefault("interval", 0.5)
    return AdmissionController(clock, **kwargs)


class TestAdmission:
    def test_admits_freely_under_the_rate(self, clock):
        gate = make_gate(clock)
        for _ in range(20):
            assert gate.try_admit()
            clock.advance(0.2)  # 5/s offered against 10/s capacity
        assert gate.shed == 0
        assert gate.queue_depth == 0.0

    def test_bursts_ride_through_the_grace_interval(self, clock):
        gate = make_gate(clock)
        # A burst that overdraws the bucket but stays under the hard
        # bound: CoDel admits through the first interval.
        for _ in range(6):
            assert gate.try_admit()
        assert gate.queue_depth > 0

    def test_sustained_overload_sheds(self, clock):
        gate = make_gate(clock)
        shed = 0
        # Offer 50/s against 10/s capacity for 5 virtual seconds.
        for _ in range(250):
            if not gate.try_admit():
                shed += 1
            clock.advance(0.02)
        assert shed > 0
        assert gate.shed == shed
        assert gate.admitted == 250 - shed

    def test_queue_depth_stays_bounded_at_any_offered_load(self, clock):
        gate = make_gate(clock)
        hard_depth = gate.queue_delay_target * gate.hard_factor * gate.rate
        peak = 0.0
        # 100x overload, zero think time: the worst case.
        for _ in range(5000):
            gate.try_admit()
            peak = max(peak, gate.queue_depth)
            clock.advance(0.001)
        assert gate.shed > 0
        # +1 because the depth is sampled after the admitted request's
        # own token was withdrawn.
        assert peak <= hard_depth + 1.0

    def test_recovery_closes_the_episode(self, clock):
        gate = make_gate(clock)
        for _ in range(5000):
            gate.try_admit()
            clock.advance(0.001)
        assert gate.shed > 0
        # Idle long enough for the bucket to refill, then light load
        # passes untouched.
        clock.advance(10.0)
        shed_before = gate.shed
        for _ in range(10):
            assert gate.try_admit()
            clock.advance(0.5)
        assert gate.shed == shed_before

    def test_admit_raises_transient_overload_error(self, clock):
        registry = MetricsRegistry()
        gate = make_gate(clock, name="cache1", registry=registry)
        with pytest.raises(OverloadError) as excinfo:
            for _ in range(10000):
                gate.admit("statement")
        assert excinfo.value.transient
        assert "cache1" in str(excinfo.value)
        labels = {"gate": "cache1"}
        assert registry.counter("overload.shed", labels=labels).value >= 1
        assert registry.counter("overload.admitted", labels=labels).value == gate.admitted
        assert registry.gauge("overload.queue_depth", labels=labels).value >= 0

    def test_rejects_nonpositive_rate(self, clock):
        with pytest.raises(ValueError):
            AdmissionController(clock, rate=0.0)


class TestRetryBudget:
    def test_opens_with_full_capacity(self):
        budget = RetryBudget(ratio=0.1, capacity=10.0)
        assert budget.tokens == 10.0
        for _ in range(10):
            assert budget.try_spend()
        assert not budget.try_spend()
        assert budget.spent == 10
        assert budget.exhaustions == 1

    def test_deposits_bound_retries_to_the_ratio(self):
        budget = RetryBudget(ratio=0.1, capacity=10.0)
        for _ in range(10):
            budget.try_spend()
        # Brownout steady state: 100 live attempts deposit 10 tokens —
        # at most ~10% of live traffic can be retries.
        for _ in range(100):
            budget.on_attempt()
        spent = sum(1 for _ in range(50) if budget.try_spend())
        # 100 deposits of 0.1 accumulate to 10 tokens minus float drift.
        assert spent in (9, 10)

    def test_deposits_cap_at_capacity(self):
        budget = RetryBudget(ratio=0.5, capacity=2.0)
        for _ in range(100):
            budget.on_attempt()
        assert budget.tokens == 2.0
