"""End-to-end availability under chaos: the paper's transparency promise.

Kill the cache mid-TPC-W-run and the application must not notice: the
failover router reroutes to the backend, no interaction fails, and after
the restart replication reconverges. The final test is the determinism
contract: an attached injector with an *empty* schedule must leave a run
byte-identical to one with no injector at all.
"""

import pytest

from repro.faults import FaultInjector
from repro.mtcache.odbc import OdbcConnection
from repro.obs import replication_metrics
from repro.tpcw import (
    LoadDriver,
    MIXES,
    TPCWApplication,
    TPCWConfig,
    build_backend,
    enable_caching,
)


def build_env():
    backend, config = build_backend(TPCWConfig(num_items=40, num_ebs=8))
    deployment, caches = enable_caching(backend, ["av1"], config)
    return backend, config, deployment, caches[0]


@pytest.mark.chaos
def test_cache_crash_loses_no_interactions():
    backend, config, deployment, cache = build_env()
    injector = FaultInjector(deployment.clock, seed=1)
    deployment.attach_fault_injector(injector)

    start = deployment.clock.now()
    injector.at(start + 10.0, "crash_cache", cache)
    injector.at(start + 20.0, "restart_cache", cache)

    router = deployment.failover_connection(cache, probe_interval=0.5)
    application = TPCWApplication(router, config)
    driver = LoadDriver(
        application, MIXES["Ordering"], users=5, deployment=deployment, seed=13
    )
    stats = driver.run(duration=35.0)

    # Zero failed interactions: every one either ran on the cache or was
    # transparently rerouted to the backend.
    assert stats.errors == 0
    assert stats.interactions > 50
    assert stats.failovers >= 1
    assert stats.failbacks >= 1
    assert injector.pending == 0  # both scheduled faults fired

    # After the restart and the driver's final sync, the cache
    # reconverged: no committed order was lost anywhere.
    backend_orders = backend.execute(
        "SELECT COUNT(*) FROM orders", database="tpcw"
    ).scalar
    cache_orders = cache.execute("SELECT COUNT(*) FROM cv_orders").scalar
    assert cache_orders == backend_orders
    for values in replication_metrics.sample(deployment).values():
        assert values["lag_transactions"] == 0

    # The outage was observable while it lasted.
    registry = cache.server.metrics
    assert registry.counter("resilience.failovers").value >= 1
    assert registry.counter("faults.server_crashes").value == 1
    assert registry.counter("faults.server_restarts").value == 1


@pytest.mark.chaos
def test_chaos_run_is_deterministic():
    def run_once():
        backend, config, deployment, cache = build_env()
        injector = FaultInjector(deployment.clock, seed=1)
        deployment.attach_fault_injector(injector)
        start = deployment.clock.now()
        injector.at(start + 8.0, "crash_cache", cache)
        injector.at(start + 16.0, "restart_cache", cache)
        router = deployment.failover_connection(cache, probe_interval=0.5)
        application = TPCWApplication(router, config)
        driver = LoadDriver(
            application, MIXES["Ordering"], users=4, deployment=deployment, seed=21
        )
        stats = driver.run(duration=25.0)
        orders = backend.execute(
            "SELECT COUNT(*) FROM orders", database="tpcw"
        ).scalar
        return stats, orders, injector.log

    first, second = run_once(), run_once()
    assert first == second


@pytest.mark.chaos
def test_empty_schedule_injector_is_byte_identical_to_none():
    def run_once(with_injector):
        backend, config, deployment, cache = build_env()
        if with_injector:
            deployment.attach_fault_injector(
                FaultInjector(deployment.clock, seed=99)
            )
        application = TPCWApplication(
            OdbcConnection(cache.server, "tpcw", "dbo"), config
        )
        driver = LoadDriver(
            application, MIXES["Shopping"], users=5, deployment=deployment, seed=7
        )
        stats = driver.run(duration=15.0)
        orders = backend.execute(
            "SELECT o_id, o_c_id FROM orders ORDER BY o_id", database="tpcw"
        ).rows
        cached = cache.execute(
            "SELECT o_id, o_c_id FROM cv_orders ORDER BY o_id"
        ).rows
        return stats, orders, cached

    bare = run_once(with_injector=False)
    armed_but_idle = run_once(with_injector=True)
    assert bare == armed_but_idle
