"""Volcano-style physical operators, with a batch-at-a-time fast path.

Each operator exposes an output :class:`Schema` and an ``execute(ctx)``
generator producing tuples. Plans are re-executable: ``execute`` may be
called many times with different contexts (different parameter bindings),
which is exactly what dynamic plans need.

``FilterOp`` supports a *startup predicate* — the mechanism the paper uses
to implement ChoosePlan: the predicate references only parameters, is
evaluated once when the operator is opened, and when false the operator's
input is never opened (its branch of the plan costs nothing at run time).

**Batch protocol.** ``execute_batches(ctx)`` is the vectorized
counterpart: a generator of *non-empty* lists of rows, ``ctx.batch_rows``
per chunk at the source. Converted operators (scan, filter, project,
aggregate, hash join, sort/top, distinct, union-all) override it to move
whole chunks through compiled batch kernels (see
``exec/expressions.py``); everything else inherits the base fallback
shim, which chunks its own row-mode ``execute`` so converted and
unconverted operators compose freely in one tree. Batch kernels are
memoized per operator instance (:meth:`PhysicalOperator._kernel`) — and
since cached plans *are* operator trees, the kernels live in the plan
cache entry and die with it on a schema bump. Work counters are bumped
identically in both modes (``rows_processed`` per input row), so batch
execution is observably equivalent, not just result-equivalent.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from repro.common.schema import Schema
from repro.errors import ExecutionError
from repro.exec.context import DEFAULT_BATCH_ROWS, ExecutionContext
from repro.exec.expressions import Scalar, batch_form, tuple_kernel

Row = Tuple
Batch = List[Row]


class PhysicalOperator:
    """Base class for physical operators."""

    def __init__(self, schema: Schema, children: Sequence["PhysicalOperator"] = ()):
        self.schema = schema
        self.children: List[PhysicalOperator] = list(children)
        # Filled in by the optimizer for explain/costing purposes.
        self.estimated_rows: float = 0.0
        self.estimated_cost: float = 0.0

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        raise NotImplementedError

    def execute_batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        """Volcano-compatible fallback shim: chunk the row-mode stream.

        Operators without a native batch implementation interoperate with
        batch consumers through this adapter. The class-level ``execute``
        call deliberately bypasses any per-instance profiling patch, so a
        profiled fallback operator counts its rows once (in the batch
        instrumentation), not twice.
        """
        size = getattr(ctx, "batch_rows", DEFAULT_BATCH_ROWS)
        chunk: Batch = []
        for row in type(self).execute(self, ctx):
            chunk.append(row)
            if len(chunk) >= size:
                yield chunk
                chunk = []
        if chunk:
            yield chunk

    def _kernel(self, name: str, ctx: ExecutionContext, builder: Callable[[], Any]) -> Any:
        """Fetch (or build once) a named batch kernel for this operator.

        Kernels are pure closures derived from the operator's compiled
        expressions, so memoizing them on the instance is safe across
        executions and threads (a lost race just rebuilds an identical
        closure). Hit/miss counts land on the context for the
        ``exec.compiled_cache_*`` metrics.
        """
        cache = self.__dict__.get("_batch_kernels")
        if cache is None:
            cache = self.__dict__.setdefault("_batch_kernels", {})
        kernel = cache.get(name)
        if kernel is None:
            kernel = builder()
            cache[name] = kernel
            ctx.compiled_cache_misses = getattr(ctx, "compiled_cache_misses", 0) + 1
        else:
            ctx.compiled_cache_hits = getattr(ctx, "compiled_cache_hits", 0) + 1
        return kernel

    @property
    def label(self) -> str:
        return type(self).__name__.replace("Op", "")

    def explain(self, indent: int = 0, costs: bool = False) -> str:
        """Render the plan subtree as indented text.

        With ``costs=True`` each line carries the optimizer's estimates
        (rows and abstract cost units), like a production EXPLAIN.
        """
        line = ("  " * indent) + self.describe()
        if costs and (self.estimated_rows or self.estimated_cost):
            line += f"  [rows={self.estimated_rows:.0f} cost={self.estimated_cost:.1f}]"
        lines = [line]
        for child in self.children:
            lines.append(child.explain(indent + 1, costs))
        return "\n".join(lines)

    def describe(self) -> str:
        return self.label

    def walk(self) -> Iterator["PhysicalOperator"]:
        """Yield this operator and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()


class ValuesOp(PhysicalOperator):
    """Emit a fixed list of row-producing closures (VALUES / SELECT 1)."""

    def __init__(self, schema: Schema, row_makers: Sequence[Sequence[Scalar]]):
        super().__init__(schema)
        self.row_makers = [list(makers) for makers in row_makers]

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        for makers in self.row_makers:
            ctx.work.rows_processed += 1
            yield tuple(maker((), ctx) for maker in makers)

    def execute_batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        rows = []
        for makers in self.row_makers:
            ctx.work.rows_processed += 1
            rows.append(tuple(maker((), ctx) for maker in makers))
        if rows:
            yield rows

    def describe(self) -> str:
        return f"Values({len(self.row_makers)} rows)"


class SeqScanOp(PhysicalOperator):
    """Full scan of a local table or materialized view's backing table."""

    def __init__(self, schema: Schema, table_name: str):
        super().__init__(schema)
        self.table_name = table_name

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        table = ctx.database.storage_table(self.table_name)
        for _, row in table.scan():
            ctx.work.rows_processed += 1
            yield row

    def execute_batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        table = ctx.database.storage_table(self.table_name)
        size = getattr(ctx, "batch_rows", DEFAULT_BATCH_ROWS)
        for chunk in table.scan_batches(size):
            ctx.work.rows_processed += len(chunk)
            yield chunk

    def describe(self) -> str:
        return f"SeqScan({self.table_name})"


class IndexSeekOp(PhysicalOperator):
    """Exact-match index seek on the leading columns of an index."""

    def __init__(
        self,
        schema: Schema,
        table_name: str,
        index_name: str,
        key_makers: Sequence[Scalar],
    ):
        super().__init__(schema)
        self.table_name = table_name
        self.index_name = index_name
        self.key_makers = list(key_makers)

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        table = ctx.database.storage_table(self.table_name)
        index = table.indexes.get(self.index_name)
        if index is None:
            raise ExecutionError(f"no index {self.index_name!r} on {self.table_name!r}")
        key = tuple(maker((), ctx) for maker in self.key_makers)
        ctx.work.index_seeks += 1
        if len(key) == len(index.column_names):
            rids = index.seek(key)
        else:
            rids = list(index.seek_prefix(key))
        for rid in rids:
            ctx.work.rows_processed += 1
            yield table.get(rid)

    def describe(self) -> str:
        return f"IndexSeek({self.table_name}.{self.index_name})"


class IndexRangeScanOp(PhysicalOperator):
    """Ordered range scan over an index: [low, high] bounds on leading key."""

    def __init__(
        self,
        schema: Schema,
        table_name: str,
        index_name: str,
        low_makers: Optional[Sequence[Scalar]] = None,
        high_makers: Optional[Sequence[Scalar]] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ):
        super().__init__(schema)
        self.table_name = table_name
        self.index_name = index_name
        self.low_makers = list(low_makers) if low_makers else None
        self.high_makers = list(high_makers) if high_makers else None
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        table = ctx.database.storage_table(self.table_name)
        index = table.indexes.get(self.index_name)
        if index is None:
            raise ExecutionError(f"no index {self.index_name!r} on {self.table_name!r}")
        low = tuple(m((), ctx) for m in self.low_makers) if self.low_makers else None
        high = tuple(m((), ctx) for m in self.high_makers) if self.high_makers else None
        ctx.work.index_seeks += 1
        for rid in index.range_scan(low, high, self.low_inclusive, self.high_inclusive):
            ctx.work.rows_processed += 1
            yield table.get(rid)

    def describe(self) -> str:
        return f"IndexRangeScan({self.table_name}.{self.index_name})"


class IndexExtremeOp(PhysicalOperator):
    """Answer ``SELECT MIN/MAX(col) FROM t`` from the index ends.

    Emits exactly one single-column row: the smallest or largest key of an
    index led by the column (NULL on an empty table), replacing a full
    scan-and-aggregate.
    """

    def __init__(self, schema: Schema, table_name: str, index_name: str, which: str):
        super().__init__(schema)
        self.table_name = table_name
        self.index_name = index_name
        if which not in ("MIN", "MAX"):
            raise ExecutionError(f"IndexExtreme supports MIN/MAX, not {which!r}")
        self.which = which

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        table = ctx.database.storage_table(self.table_name)
        index = table.indexes.get(self.index_name)
        if index is None:
            raise ExecutionError(f"no index {self.index_name!r} on {self.table_name!r}")
        ctx.work.index_seeks += 1
        value = None
        if self.which == "MAX":
            key = index.tree.max_key()
            if key is not None and len(key[0]) > 1:
                value = key[0][1]
        else:
            # NULL keys sort first; SQL MIN ignores NULLs, so skip them.
            for key, _ in index.tree.scan():
                if len(key[0]) > 1:
                    value = key[0][1]
                    break
        ctx.work.rows_processed += 1
        yield (value,)

    def describe(self) -> str:
        return f"IndexExtreme({self.which} via {self.table_name}.{self.index_name})"


class FilterOp(PhysicalOperator):
    """Row filter, optionally guarded by a startup predicate.

    The startup predicate is evaluated once per execution against an empty
    row; when it does not evaluate to True the input is never opened. This
    is the UnionAll/startup-predicate encoding of ChoosePlan from the
    paper's Figure 2(b).
    """

    def __init__(
        self,
        child: PhysicalOperator,
        predicate: Optional[Scalar] = None,
        startup_predicate: Optional[Scalar] = None,
        description: str = "",
        startup_guard: Optional[Any] = None,
    ):
        super().__init__(child.schema, [child])
        self.predicate = predicate
        self.startup_predicate = startup_predicate
        self.description = description
        # Source AST of the startup predicate. Compiled startup predicates
        # are opaque closures; the plan verifier needs the expression to
        # prove ChoosePlan guards mutually exclusive and exhaustive.
        self.startup_guard = startup_guard

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        if self.startup_predicate is not None:
            if self.startup_predicate((), ctx) is not True:
                return
        child = self.children[0]
        if self.predicate is None:
            yield from child.execute(ctx)
            return
        for row in child.execute(ctx):
            ctx.work.rows_processed += 1
            if self.predicate(row, ctx) is True:
                yield row

    def execute_batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        if self.startup_predicate is not None:
            if self.startup_predicate((), ctx) is not True:
                return
        child = self.children[0]
        if self.predicate is None:
            yield from child.execute_batches(ctx)
            return
        kernel = self._kernel("predicate", ctx, lambda: batch_form(self.predicate))
        for chunk in child.execute_batches(ctx):
            ctx.work.rows_processed += len(chunk)
            selection = kernel(chunk, ctx)
            passed = [row for row, keep in zip(chunk, selection) if keep is True]
            if passed:
                yield passed

    def describe(self) -> str:
        parts = ["Filter"]
        if self.startup_predicate is not None:
            parts.append("[startup]")
        if self.description:
            parts.append(f"({self.description})")
        return "".join(parts)


class ProjectOp(PhysicalOperator):
    """Compute output expressions; also performs column pruning."""

    def __init__(self, child: PhysicalOperator, schema: Schema, makers: Sequence[Scalar]):
        super().__init__(schema, [child])
        self.makers = list(makers)

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        for row in self.children[0].execute(ctx):
            ctx.work.rows_processed += 1
            yield tuple(maker(row, ctx) for maker in self.makers)

    def execute_batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        kernel = self._kernel("project", ctx, lambda: tuple_kernel(self.makers))
        for chunk in self.children[0].execute_batches(ctx):
            ctx.work.rows_processed += len(chunk)
            yield kernel(chunk, ctx)

    def describe(self) -> str:
        return f"Project({', '.join(self.schema.names)})"


class NestedLoopJoinOp(PhysicalOperator):
    """Nested-loop join (INNER, LEFT or CROSS) with an optional predicate."""

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        predicate: Optional[Scalar] = None,
        kind: str = "INNER",
    ):
        super().__init__(left.schema.concat(right.schema), [left, right])
        self.predicate = predicate
        self.kind = kind

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        left, right = self.children
        right_rows = list(right.execute(ctx))
        null_right = (None,) * len(right.schema)
        for left_row in left.execute(ctx):
            matched = False
            for right_row in right_rows:
                ctx.work.rows_processed += 1
                combined = left_row + right_row
                if self.predicate is None or self.predicate(combined, ctx) is True:
                    matched = True
                    yield combined
            if self.kind == "LEFT" and not matched:
                yield left_row + null_right

    def describe(self) -> str:
        return f"NestedLoopJoin({self.kind})"


class HashJoinOp(PhysicalOperator):
    """Equi-join via hashing (INNER or LEFT outer).

    ``left_keys``/``right_keys`` are scalar extractors evaluated against the
    respective input rows; a residual predicate filters combined rows.
    """

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_keys: Sequence[Scalar],
        right_keys: Sequence[Scalar],
        residual: Optional[Scalar] = None,
        kind: str = "INNER",
    ):
        super().__init__(left.schema.concat(right.schema), [left, right])
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.residual = residual
        self.kind = kind

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        left, right = self.children
        # Build on the right input (typically the smaller by optimizer choice).
        build: dict = {}
        for right_row in right.execute(ctx):
            ctx.work.rows_processed += 1
            key = tuple(maker(right_row, ctx) for maker in self.right_keys)
            if any(part is None for part in key):
                continue  # NULL never equi-joins
            build.setdefault(key, []).append(right_row)
        null_right = (None,) * len(right.schema)
        for left_row in left.execute(ctx):
            ctx.work.rows_processed += 1
            key = tuple(maker(left_row, ctx) for maker in self.left_keys)
            matches = build.get(key, []) if not any(part is None for part in key) else []
            matched = False
            for right_row in matches:
                combined = left_row + right_row
                if self.residual is None or self.residual(combined, ctx) is True:
                    matched = True
                    yield combined
            if self.kind == "LEFT" and not matched:
                yield left_row + null_right

    def execute_batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        left, right = self.children
        right_kernel = self._kernel("right-keys", ctx, lambda: tuple_kernel(self.right_keys))
        left_kernel = self._kernel("left-keys", ctx, lambda: tuple_kernel(self.left_keys))
        build: dict = {}
        for chunk in right.execute_batches(ctx):
            ctx.work.rows_processed += len(chunk)
            for right_row, key in zip(chunk, right_kernel(chunk, ctx)):
                if any(part is None for part in key):
                    continue  # NULL never equi-joins
                build.setdefault(key, []).append(right_row)
        null_right = (None,) * len(right.schema)
        size = getattr(ctx, "batch_rows", DEFAULT_BATCH_ROWS)
        out: Batch = []
        for chunk in left.execute_batches(ctx):
            ctx.work.rows_processed += len(chunk)
            for left_row, key in zip(chunk, left_kernel(chunk, ctx)):
                matches = build.get(key, ()) if not any(part is None for part in key) else ()
                matched = False
                for right_row in matches:
                    combined = left_row + right_row
                    if self.residual is None or self.residual(combined, ctx) is True:
                        matched = True
                        out.append(combined)
                        if len(out) >= size:
                            yield out
                            out = []
                if self.kind == "LEFT" and not matched:
                    out.append(left_row + null_right)
                    if len(out) >= size:
                        yield out
                        out = []
        if out:
            yield out

    def describe(self) -> str:
        return f"HashJoin({self.kind})"


class IndexLookupJoinOp(PhysicalOperator):
    """Index nested-loop join: per left row, seek the right table's index.

    The workhorse for point-lookup joins (``customer ⋈ address`` by
    primary key): instead of scanning/hashing the whole right table, each
    left row probes a right-side index. ``key_makers`` extract the probe
    key from the left row; ``right_predicate`` applies the right leaf's
    own filters (compiled against the right storage's full schema);
    ``right_positions`` projects the right row down to the leaf schema;
    ``residual`` filters the combined row.
    """

    def __init__(
        self,
        left: PhysicalOperator,
        right_schema: Schema,
        table_name: str,
        index_name: str,
        key_makers: Sequence[Scalar],
        right_positions: Sequence[int],
        right_predicate: Optional[Scalar] = None,
        residual: Optional[Scalar] = None,
        kind: str = "INNER",
    ):
        super().__init__(left.schema.concat(right_schema), [left])
        self.right_schema = right_schema
        self.table_name = table_name
        self.index_name = index_name
        self.key_makers = list(key_makers)
        self.right_positions = list(right_positions)
        self.right_predicate = right_predicate
        self.residual = residual
        self.kind = kind

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        table = ctx.database.storage_table(self.table_name)
        index = table.indexes.get(self.index_name)
        if index is None:
            raise ExecutionError(f"no index {self.index_name!r} on {self.table_name!r}")
        partial = len(self.key_makers) < len(index.column_names)
        null_right = (None,) * len(self.right_schema)
        for left_row in self.children[0].execute(ctx):
            key = tuple(maker(left_row, ctx) for maker in self.key_makers)
            ctx.work.index_seeks += 1
            if any(part is None for part in key):
                rids = []
            elif partial:
                rids = list(index.seek_prefix(key))
            else:
                rids = index.seek(key)
            matched = False
            for rid in rids:
                right_full = table.get(rid)
                ctx.work.rows_processed += 1
                if (
                    self.right_predicate is not None
                    and self.right_predicate(right_full, ctx) is not True
                ):
                    continue
                right_row = tuple(right_full[position] for position in self.right_positions)
                combined = left_row + right_row
                if self.residual is None or self.residual(combined, ctx) is True:
                    matched = True
                    yield combined
            if self.kind == "LEFT" and not matched:
                yield left_row + null_right

    def describe(self) -> str:
        return f"IndexLookupJoin({self.table_name}.{self.index_name})"


class MergeJoinOp(PhysicalOperator):
    """Sort-merge equi-join (INNER).

    Materializes and sorts both inputs on their join keys, then merges
    with duplicate-group handling. Chosen by the optimizer when both
    inputs are large enough that sorting beats hashing's memory footprint
    (in this in-memory engine the cost difference is modest; the operator
    exists for completeness and for ORDER-BY-covering plans).
    """

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_keys: Sequence[Scalar],
        right_keys: Sequence[Scalar],
        residual: Optional[Scalar] = None,
    ):
        super().__init__(left.schema.concat(right.schema), [left, right])
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.residual = residual

    @staticmethod
    def _sortable(key: Tuple) -> Tuple:
        return tuple(
            (0, part) if isinstance(part, (int, float)) and not isinstance(part, bool)
            else (1, str(part))
            for part in key
        )

    def _keyed(self, op: PhysicalOperator, makers: List[Scalar], ctx) -> List[Tuple]:
        keyed = []
        for row in op.execute(ctx):
            ctx.work.rows_processed += 1
            key = tuple(maker(row, ctx) for maker in makers)
            if any(part is None for part in key):
                continue  # NULL never equi-joins
            keyed.append((self._sortable(key), row))
        keyed.sort(key=lambda pair: pair[0])
        return keyed

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        left = self._keyed(self.children[0], self.left_keys, ctx)
        right = self._keyed(self.children[1], self.right_keys, ctx)
        i = j = 0
        while i < len(left) and j < len(right):
            left_key = left[i][0]
            right_key = right[j][0]
            if left_key < right_key:
                i += 1
                continue
            if left_key > right_key:
                j += 1
                continue
            # Duplicate groups on both sides.
            i_end = i
            while i_end < len(left) and left[i_end][0] == left_key:
                i_end += 1
            j_end = j
            while j_end < len(right) and right[j_end][0] == right_key:
                j_end += 1
            for _, left_row in left[i:i_end]:
                for _, right_row in right[j:j_end]:
                    combined = left_row + right_row
                    ctx.work.rows_processed += 1
                    if self.residual is None or self.residual(combined, ctx) is True:
                        yield combined
            i, j = i_end, j_end

    def describe(self) -> str:
        return "MergeJoin(INNER)"


class AggregateSpec:
    """One aggregate to compute: function, argument extractor, DISTINCT."""

    def __init__(self, function: str, argument: Optional[Scalar], distinct: bool = False):
        self.function = function
        self.argument = argument  # None => COUNT(*)
        self.distinct = distinct


class _AggState:
    """Accumulator for one aggregate within one group."""

    __slots__ = ("spec", "count", "total", "best", "seen")

    def __init__(self, spec: AggregateSpec):
        self.spec = spec
        self.count = 0
        self.total: Any = None
        self.best: Any = None
        self.seen = set() if spec.distinct else None

    def add(self, row: Row, ctx: ExecutionContext) -> None:
        spec = self.spec
        if spec.argument is None:  # COUNT(*)
            self.count += 1
            return
        self.add_value(spec.argument(row, ctx))

    def add_value(self, value: Any) -> None:
        """Accumulate one pre-extracted argument value.

        The batch path extracts the argument column for a whole chunk in
        one kernel call, then feeds values here in row order — so SUM/AVG
        accumulate in exactly the same sequence (and float associativity)
        as row mode.
        """
        spec = self.spec
        if spec.argument is None:  # COUNT(*) counts rows, not values
            self.count += 1
            return
        if value is None:
            return
        if self.seen is not None:
            if value in self.seen:
                return
            self.seen.add(value)
        self.count += 1
        if spec.function in ("SUM", "AVG"):
            self.total = value if self.total is None else self.total + value
        elif spec.function == "MIN":
            if self.best is None or value < self.best:
                self.best = value
        elif spec.function == "MAX":
            if self.best is None or value > self.best:
                self.best = value

    def result(self) -> Any:
        function = self.spec.function
        if function == "COUNT":
            return self.count
        if function == "SUM":
            return self.total
        if function == "AVG":
            if self.count == 0:
                return None
            return self.total / self.count
        if function in ("MIN", "MAX"):
            return self.best
        raise ExecutionError(f"unknown aggregate {function!r}")


class AggregateOp(PhysicalOperator):
    """Hash aggregation with optional grouping.

    Output rows are ``group_values + aggregate_results`` in declaration
    order. With no GROUP BY, exactly one row is produced even on empty
    input (COUNT = 0, other aggregates NULL), per SQL semantics.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        schema: Schema,
        group_makers: Sequence[Scalar],
        aggregates: Sequence[AggregateSpec],
    ):
        super().__init__(schema, [child])
        self.group_makers = list(group_makers)
        self.aggregates = list(aggregates)

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        groups: dict = {}
        order: List[Tuple] = []
        for row in self.children[0].execute(ctx):
            ctx.work.rows_processed += 1
            key = tuple(maker(row, ctx) for maker in self.group_makers)
            states = groups.get(key)
            if states is None:
                states = [_AggState(spec) for spec in self.aggregates]
                groups[key] = states
                order.append(key)
            for state in states:
                state.add(row, ctx)
        if not groups and not self.group_makers:
            yield tuple(_AggState(spec).result() for spec in self.aggregates)
            return
        for key in order:
            states = groups[key]
            yield key + tuple(state.result() for state in states)

    def execute_batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        groups: dict = {}
        order: List[Tuple] = []
        key_kernel = self._kernel(
            "group-keys", ctx, lambda: tuple_kernel(self.group_makers)
        )
        argument_kernels = self._kernel(
            "agg-args",
            ctx,
            lambda: [
                None if spec.argument is None else batch_form(spec.argument)
                for spec in self.aggregates
            ],
        )
        for chunk in self.children[0].execute_batches(ctx):
            ctx.work.rows_processed += len(chunk)
            keys = key_kernel(chunk, ctx)
            # Columnar argument extraction: one kernel call per aggregate
            # per chunk instead of one closure call per row.
            columns = [
                None if kernel is None else kernel(chunk, ctx)
                for kernel in argument_kernels
            ]
            for i, key in enumerate(keys):
                states = groups.get(key)
                if states is None:
                    states = [_AggState(spec) for spec in self.aggregates]
                    groups[key] = states
                    order.append(key)
                for state, column in zip(states, columns):
                    state.add_value(None if column is None else column[i])
        if not groups and not self.group_makers:
            yield [tuple(_AggState(spec).result() for spec in self.aggregates)]
            return
        size = getattr(ctx, "batch_rows", DEFAULT_BATCH_ROWS)
        out: Batch = []
        for key in order:
            out.append(key + tuple(state.result() for state in groups[key]))
            if len(out) >= size:
                yield out
                out = []
        if out:
            yield out

    def describe(self) -> str:
        names = [spec.function for spec in self.aggregates]
        return f"Aggregate(groups={len(self.group_makers)}, aggs={names})"


class SortOp(PhysicalOperator):
    """Sort by multiple keys with per-key direction; NULLs sort first ASC."""

    def __init__(
        self,
        child: PhysicalOperator,
        sort_makers: Sequence[Tuple[Scalar, bool]],  # (extractor, descending)
    ):
        super().__init__(child.schema, [child])
        self.sort_makers = list(sort_makers)

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        rows = list(self.children[0].execute(ctx))
        ctx.work.rows_processed += len(rows)
        # Stable multi-pass sort: apply keys from least to most significant.
        # NULL is the lowest value (T-SQL): first ascending, last
        # descending — the same (0-tagged) key works for both directions.
        for maker, descending in reversed(self.sort_makers):
            def key_fn(row, maker=maker):
                value = maker(row, ctx)
                if value is None:
                    return (0, 0)
                return (1, value)

            rows.sort(key=key_fn, reverse=descending)
        yield from rows

    def execute_batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        rows: Batch = []
        for chunk in self.children[0].execute_batches(ctx):
            rows.extend(chunk)
        ctx.work.rows_processed += len(rows)
        kernels = self._kernel(
            "sort-keys",
            ctx,
            lambda: [batch_form(maker) for maker, _ in self.sort_makers],
        )
        # Same stable multi-pass sort as row mode, but each pass extracts
        # its whole key column with one kernel call, then reorders by
        # index (``sorted`` with a key is stable, like ``list.sort``).
        for (maker, descending), kernel in zip(
            reversed(self.sort_makers), reversed(kernels)
        ):
            values = kernel(rows, ctx)
            keyed = [(0, 0) if value is None else (1, value) for value in values]
            positions = sorted(
                range(len(rows)), key=keyed.__getitem__, reverse=descending
            )
            rows = [rows[i] for i in positions]
        size = getattr(ctx, "batch_rows", DEFAULT_BATCH_ROWS)
        for start in range(0, len(rows), size):
            yield rows[start : start + size]

    def describe(self) -> str:
        return f"Sort({len(self.sort_makers)} keys)"


class TopOp(PhysicalOperator):
    """Emit at most N rows; N may be a parameter expression."""

    def __init__(self, child: PhysicalOperator, count_maker: Scalar):
        super().__init__(child.schema, [child])
        self.count_maker = count_maker

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        limit = self.count_maker((), ctx)
        if limit is None:
            raise ExecutionError("TOP count evaluated to NULL")
        remaining = int(limit)
        if remaining <= 0:
            return
        for row in self.children[0].execute(ctx):
            yield row
            remaining -= 1
            if remaining == 0:
                return

    def execute_batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        limit = self.count_maker((), ctx)
        if limit is None:
            raise ExecutionError("TOP count evaluated to NULL")
        remaining = int(limit)
        if remaining <= 0:
            return
        for chunk in self.children[0].execute_batches(ctx):
            if len(chunk) >= remaining:
                yield chunk[:remaining]
                return
            remaining -= len(chunk)
            yield chunk

    def describe(self) -> str:
        return "Top"


class DistinctOp(PhysicalOperator):
    """Remove duplicate rows (hash-based, NULL-safe)."""

    def __init__(self, child: PhysicalOperator):
        super().__init__(child.schema, [child])

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        seen = set()
        for row in self.children[0].execute(ctx):
            ctx.work.rows_processed += 1
            if row not in seen:
                seen.add(row)
                yield row

    def execute_batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        seen: set = set()
        for chunk in self.children[0].execute_batches(ctx):
            ctx.work.rows_processed += len(chunk)
            fresh: Batch = []
            for row in chunk:
                if row not in seen:
                    seen.add(row)
                    fresh.append(row)
            if fresh:
                yield fresh

    def describe(self) -> str:
        return "Distinct"


class UnionAllOp(PhysicalOperator):
    """Concatenate child outputs.

    Combined with startup-predicate FilterOp children, this implements the
    paper's ChoosePlan: exactly one branch produces rows at run time.
    """

    def __init__(self, children: Sequence[PhysicalOperator], choose_plan: bool = False):
        if not children:
            raise ExecutionError("UnionAll requires at least one input")
        super().__init__(children[0].schema, children)
        self.choose_plan = choose_plan

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        for child in self.children:
            yield from child.execute(ctx)

    def execute_batches(self, ctx: ExecutionContext) -> Iterator[Batch]:
        for child in self.children:
            yield from child.execute_batches(ctx)

    def describe(self) -> str:
        return "ChoosePlan(UnionAll)" if self.choose_plan else "UnionAll"


class RemoteQueryOp(PhysicalOperator):
    """Execute a textual SQL query on a linked server (DataTransfer).

    This is the runtime face of the optimizer's DataTransfer operator: the
    remote subexpression has been rendered back to SQL text (plans cannot
    be shipped), the linked server re-parses and re-optimizes it, and the
    result rows flow back. Transferred volume is charged to the context's
    work counters so the cost model and the cluster simulator see it.

    On the statement fast path the text is shipped only once: the first
    execution prepares it on the link (paper §4.3's parameterized remote
    query) and every execution after that goes by handle with just the
    parameter values. The target re-prepares transparently when its
    schema version bumps, so plans stay valid across remote DDL.
    """

    def __init__(self, schema: Schema, server_name: str, sql_text: str):
        super().__init__(schema)
        self.server_name = server_name
        self.sql_text = sql_text

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        if ctx.linked_servers is None:
            raise ExecutionError("no linked servers registered in context")
        server = ctx.linked_servers.get(self.server_name)
        tracer = getattr(ctx, "tracer", None)
        if tracer is not None:
            span = tracer.span("remote.query", server=self.server_name)
        else:
            from repro.obs.tracing import NULL_SPAN

            span = NULL_SPAN
        with span:
            if getattr(ctx, "fastpath", True):
                handle = server.prepare(self.sql_text)
                rows = handle.execute_rows(ctx.params)
                ctx.work.prepared_executions += 1
            else:
                rows = server.execute_remote_sql(self.sql_text, ctx.params)
        ctx.work.remote_queries += 1
        width = self.schema.row_width
        for row in rows:
            ctx.work.rows_processed += 1
            ctx.work.bytes_transferred += width
            yield tuple(row)

    def describe(self) -> str:
        text = self.sql_text if len(self.sql_text) <= 60 else self.sql_text[:57] + "..."
        return f"RemoteQuery[{self.server_name}]({text})"


class BatchCursor:
    """Pull-based handle over a plan's batch stream.

    ``next_batch()`` returns the next non-empty chunk of rows, or ``None``
    once the plan is exhausted. This is the driver-facing face of the
    batch protocol (the server's execution loop uses it); operators
    themselves compose through ``execute_batches`` generators.
    """

    def __init__(self, root: PhysicalOperator, ctx: ExecutionContext):
        self._batches = root.execute_batches(ctx)

    def next_batch(self) -> Optional[Batch]:
        return next(self._batches, None)

    def close(self) -> None:
        self._batches.close()
