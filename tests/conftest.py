"""Shared fixtures: a small shop database and an MTCache deployment."""

from __future__ import annotations

import os

import pytest

from repro import MTCacheDeployment, Server

# Checked execution for the whole suite: every server verifies each
# freshly optimized plan against the repro.analysis invariants. The
# default is read when each Server is constructed, so setting it at
# conftest import time covers every test.
os.environ.setdefault("REPRO_CHECKED_PLANS", "1")

# Lock witness for the whole suite: every lock minted through the
# repro.common.locks chokepoints records its acquisitions into the
# process-wide witness graph; the session gate below fails the run if
# any test produced a lock-order inversion or an edge outside the
# modeled hierarchy.
os.environ.setdefault("REPRO_LOCK_WITNESS", "1")


@pytest.fixture(scope="session", autouse=True)
def _lock_witness_gate():
    """Assert the suite's observed lock graph embeds in the hierarchy."""
    yield
    from repro.analysis.concurrency import verify_witness
    from repro.common.witness import active_witness

    witness = active_witness()
    if witness is None:  # REPRO_LOCK_WITNESS=0: explicitly disabled
        return
    problems = [str(diagnostic) for diagnostic in verify_witness(witness)]
    assert not problems, "lock witness recorded violations:\n" + "\n".join(problems)


def make_shop_backend(customers: int = 200, orders: int = 400) -> Server:
    """A small backend with customer/orders tables and statistics."""
    server = Server("backend")
    server.create_database("shop")
    server.execute(
        """
        CREATE TABLE customer (
            cid INT PRIMARY KEY,
            cname VARCHAR(40) NOT NULL,
            caddress VARCHAR(60),
            segment VARCHAR(10)
        );
        CREATE TABLE orders (
            oid INT PRIMARY KEY,
            o_cid INT NOT NULL,
            total FLOAT,
            status VARCHAR(10)
        );
        CREATE INDEX ix_orders_cid ON orders (o_cid);
        CREATE INDEX ix_customer_segment ON customer (segment);
        """
    )
    database = server.database("shop")
    database.bulk_load(
        "customer",
        [
            (
                i,
                f"cust{i}",
                f"addr{i}",
                "gold" if i % 3 == 0 else "base",
            )
            for i in range(1, customers + 1)
        ],
    )
    database.bulk_load(
        "orders",
        [
            (
                i,
                (i % customers) + 1,
                round(i * 1.5, 2),
                "OPEN" if i % 4 else "SHIPPED",
            )
            for i in range(1, orders + 1)
        ],
    )
    database.analyze_all()
    return server


@pytest.fixture
def backend() -> Server:
    return make_shop_backend()


@pytest.fixture
def deployment(backend):
    return MTCacheDeployment(backend, "shop")


@pytest.fixture
def cache(deployment):
    """A cache server with the paper's running-example cached view."""
    cache_server = deployment.add_cache_server("cache1")
    cache_server.create_cached_view(
        "CREATE CACHED VIEW Cust1000 AS "
        "SELECT cid, cname, caddress FROM customer WHERE cid <= 100"
    )
    return cache_server
