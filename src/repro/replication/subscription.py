"""Subscriptions: a subscriber's claim on an article.

A subscription binds one article to a target table on the subscriber (for
MTCache: the backing table of a cached view). Applying commands keeps the
target transactionally consistent with the publisher as of the last
applied commit; the subscription tracks the commit timestamp high-water
mark, which drives both the latency experiment and the freshness clause.

Apply goes through a *prepared applier* — the replication analogue of a
prepared statement. Instead of re-resolving the target table and probing
every index per command, the applier binds the table and its unique
index once (per batch on the fast path) and each command then executes
against pre-resolved state.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.engine.locks import LockMode
from repro.errors import ReplicationError
from repro.storage.table import Table

_EXCLUSIVE = LockMode.EXCLUSIVE


class PreparedApplier:
    """Pre-bound apply state for one subscription's target table.

    Resolving the storage table and scanning ``table.indexes`` for the
    unique index is loop-invariant across the commands of a batch; doing
    it once per subscriber round trip instead of once per command is the
    replication half of the statement fast path.
    """

    __slots__ = ("table", "unique_index")

    def __init__(self, table: Table):
        self.table = table
        self.unique_index = next(
            (index for index in table.indexes.values() if index.unique), None
        )

    def locate(self, row: Tuple) -> Optional[int]:
        """Find the target row: unique-index fast path, then full match."""
        if self.unique_index is not None:
            key = tuple(row[position] for position in self.unique_index.positions)
            rids = self.unique_index.seek(key)
            return rids[0] if rids else None
        for rid, existing in self.table.rows.items():
            if existing == row:
                return rid
        return None


class Subscription:
    """One article -> one target table on a subscriber database."""

    def __init__(
        self,
        name: str,
        article_name: str,
        subscriber_database,
        target_table: str,
    ):
        self.name = name
        self.article_name = article_name
        self.subscriber_database = subscriber_database
        self.target_table = target_table
        # Position in the distribution database's commit-ordered stream.
        self.last_sequence = 0
        # Commit timestamp of the newest applied transaction.
        self.last_applied_commit_ts: float = 0.0
        # When (subscriber clock) the newest transaction was applied.
        self.last_apply_time: float = 0.0
        # (commit_ts, applied_at) samples for latency measurement.
        self.latency_samples: List[Tuple[float, float]] = []
        self.commands_applied = 0
        # One round trip may carry many transactions (agent batching).
        self.batches_applied = 0
        # Times an apply failed and was rolled back to the watermark.
        self.apply_failures = 0
        # Fault-injection hook (repro.faults); None is a true no-op.
        self.injector = None

    def storage(self) -> Table:
        return self.subscriber_database.storage_table(self.target_table)

    def prepare_applier(self) -> PreparedApplier:
        """Bind the target table and its unique index for a batch."""
        return PreparedApplier(self.storage())

    def apply_batch(self, transactions) -> int:
        """Apply a commit-ordered batch in one subscriber round trip.

        All transactions share a single prepared applier; each is still
        applied atomically in commit order, with its own watermark and
        latency bookkeeping, so consistency is exactly that of applying
        them one round trip at a time.
        """
        if not transactions:
            return 0
        applier = self.prepare_applier()
        applied = 0
        for transaction in transactions:
            applied += self.apply_transaction(transaction, applier=applier)
        self.batches_applied += 1
        return applied

    def apply_transaction(
        self, transaction, applier: Optional[PreparedApplier] = None
    ) -> int:
        """Apply one replicated transaction's commands for this article.

        Atomic per transaction: a failure partway through (a missing old
        image, an injected fault, a subscriber crash) undoes the commands
        already applied and leaves ``last_sequence`` at the previous
        transaction — so the next poll's ``read_after(last_sequence)``
        re-delivers exactly this transaction and its unapplied
        successors. That is the exactly-once guarantee at transaction
        granularity: a crash mid-batch never skips or double-applies.

        The whole apply (including the undo of a failed prefix) runs
        under the subscriber database's latch (shared) plus an exclusive
        lock on the target table — the same protocol as a local DML
        statement — so a threaded driver reading the cached view never
        observes a half-applied transaction.
        """
        latch = getattr(self.subscriber_database, "latch", None)
        if latch is not None and not latch.owns_exclusive():
            with latch.shared():
                with self.subscriber_database.lock_manager.locking(
                    [(self.target_table, _EXCLUSIVE)]
                ):
                    return self._apply_locked(transaction, applier)
        return self._apply_locked(transaction, applier)

    def _apply_locked(
        self, transaction, applier: Optional[PreparedApplier] = None
    ) -> int:
        applied = 0
        if applier is None:
            applier = self.prepare_applier()
        table = applier.table
        undo: List[Tuple] = []
        try:
            for command in transaction.commands:
                if command.article_name.lower() != self.article_name.lower():
                    continue
                if self.injector is not None:
                    self.injector.on_call(
                        f"subscription:{self.name}:apply",
                        subscription=self,
                        command=command,
                    )
                if command.action == "insert":
                    rid = table.insert(command.new_row)
                    undo.append(("insert", rid, None))
                elif command.action == "delete":
                    rid = self._delete_row(applier, command.old_row)
                    undo.append(("delete", rid, command.old_row))
                else:
                    rid = applier.locate(command.old_row)
                    if rid is None:
                        # The old image should exist; treat as insert to
                        # converge rather than silently diverging.
                        rid = table.insert(command.new_row)
                        undo.append(("insert", rid, None))
                    else:
                        old_row, _ = table.update_rid(rid, command.new_row)
                        undo.append(("update", rid, old_row))
                applied += 1
        except Exception:
            self.apply_failures += 1
            self._undo(table, undo)
            raise
        now = self.subscriber_database.clock.now()
        self.last_sequence = transaction.sequence
        self.last_applied_commit_ts = max(
            self.last_applied_commit_ts, transaction.commit_timestamp
        )
        self.last_apply_time = now
        if applied:
            self.latency_samples.append((transaction.commit_timestamp, now))
            self.commands_applied += applied
        return applied

    def _delete_row(self, applier: PreparedApplier, old_row: Tuple) -> int:
        rid = applier.locate(old_row)
        if rid is None:
            raise ReplicationError(
                f"subscription {self.name!r}: row to delete not found in {self.target_table!r}"
            )
        applier.table.delete_rid(rid)
        return rid

    @staticmethod
    def _undo(table: Table, undo: List[Tuple]) -> None:
        """Reverse the applied prefix of a failed transaction, newest first."""
        for action, rid, old_row in reversed(undo):
            if action == "insert":
                table.delete_rid(rid)
            elif action == "delete":
                table.insert_with_rid(rid, old_row)
            else:
                table.update_rid(rid, old_row)

    def average_latency(self) -> Optional[float]:
        """Mean commit-to-apply delay over recorded samples."""
        if not self.latency_samples:
            return None
        total = sum(applied - committed for committed, applied in self.latency_samples)
        return total / len(self.latency_samples)

    def reset_measurements(self) -> None:
        self.latency_samples.clear()
        self.commands_applied = 0
