"""Seeded violation: table locks held while acquiring the latch.

Expected finding: ``lock-order-inversion`` (latch under table locks).
"""


class BadDispatcher:
    def run(self, database, plan):
        with database.lock_manager.locking(plan.tables):
            # The protocol is latch first, then table locks; taking them
            # in the other order deadlocks against every DDL statement.
            with database.latch.shared():
                return self.execute(plan)
