"""Stored procedure interpreter (T-SQL control-flow subset).

Procedures are the primary source of parameterized queries (paper §5.2).
The interpreter maintains a variable frame seeded from the call arguments;
every embedded query executes through the server's plan cache with the
frame as its parameter bindings — so a procedure body compiled once keeps
reusing its (possibly dynamic) plans across calls with different
arguments, which is precisely the scenario dynamic plans exist for.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.catalog.objects import ProcedureDef
from repro.common.schema import Schema
from repro.engine.results import Result
from repro.errors import ExecutionError
from repro.exec.context import ExecutionContext
from repro.exec.expressions import ExpressionCompiler
from repro.sql import ast


class _ReturnSignal(Exception):
    """Internal control-flow signal for RETURN."""

    def __init__(self, value: Any):
        self.value = value


#: Safety bound on WHILE iterations (runaway-loop protection).
MAX_LOOP_ITERATIONS = 1_000_000


class ProcedureInterpreter:
    """Executes one procedure invocation."""

    def __init__(self, server, database, session):
        from repro.engine.session import Session

        self.server = server
        self.database = database
        # Ownership chaining: once the caller holds EXECUTE, the body runs
        # under the procedure owner's authority (as in T-SQL), so embedded
        # statements do not re-check the caller's table permissions.
        self.session = Session(principal="dbo", database=session.database)
        self.session.in_transaction = session.in_transaction
        self.session.transaction = getattr(session, "transaction", None)
        self._caller_session = session
        self._blank = ExpressionCompiler(Schema(()))

    def call(
        self,
        procedure: ProcedureDef,
        arguments: List[Tuple[Optional[str], ast.Expression]],
        outer_params: Optional[Dict[str, Any]] = None,
    ) -> Result:
        frame = self._bind_arguments(procedure, arguments, outer_params or {})
        result = Result()
        try:
            self._run_block(procedure.body, frame, result)
        except _ReturnSignal as signal:
            result.return_value = signal.value
        if result.resultsets:
            schema, rows = result.resultsets[-1]
            result.schema = schema
            result.rows = rows
        return result

    def _bind_arguments(
        self,
        procedure: ProcedureDef,
        arguments: List[Tuple[Optional[str], ast.Expression]],
        outer_params: Dict[str, Any],
    ) -> Dict[str, Any]:
        ctx = self._context(outer_params)
        frame: Dict[str, Any] = {}
        positional = [value for name, value in arguments if name is None]
        named = {name: value for name, value in arguments if name is not None}

        for position, param in enumerate(procedure.params):
            if param.name in named:
                expression = named.pop(param.name)
            elif position < len(positional):
                expression = positional[position]
            elif param.default is not None:
                expression = param.default
            else:
                raise ExecutionError(
                    f"missing argument @{param.name} for procedure {procedure.name}"
                )
            frame[param.name] = self._blank.compile(expression)((), ctx)
        if named:
            unknown = ", ".join(f"@{name}" for name in named)
            raise ExecutionError(
                f"unknown argument(s) {unknown} for procedure {procedure.name}"
            )
        return frame

    def _context(self, params: Dict[str, Any]) -> ExecutionContext:
        return ExecutionContext(
            database=self.database,
            params=params,
            linked_servers=self.server.linked_servers,
            clock=self.server.clock,
        )

    # -- statement dispatch -------------------------------------------------

    def _run_block(
        self, statements, frame: Dict[str, Any], result: Result
    ) -> None:
        for statement in statements:
            self._run_statement(statement, frame, result)

    def _run_statement(self, statement, frame: Dict[str, Any], result: Result) -> None:
        if isinstance(statement, ast.Declare):
            value = None
            if statement.initial is not None:
                value = self._evaluate(statement.initial, frame)
            frame[statement.name] = value
            return
        if isinstance(statement, ast.SetVariable):
            frame[statement.name] = self._evaluate(statement.value, frame)
            return
        if isinstance(statement, ast.IfStatement):
            condition = self._evaluate(statement.condition, frame)
            if self._truthy(condition):
                self._run_block(statement.then_body, frame, result)
            else:
                self._run_block(statement.else_body, frame, result)
            return
        if isinstance(statement, ast.WhileStatement):
            iterations = 0
            while self._truthy(self._evaluate(statement.condition, frame)):
                iterations += 1
                if iterations > MAX_LOOP_ITERATIONS:
                    raise ExecutionError("WHILE loop exceeded iteration bound")
                self._run_block(statement.body, frame, result)
            return
        if isinstance(statement, ast.ReturnStatement):
            value = (
                self._evaluate(statement.value, frame)
                if statement.value is not None
                else 0
            )
            raise _ReturnSignal(value)
        if isinstance(statement, ast.PrintStatement):
            result.messages.append(str(self._evaluate(statement.value, frame)))
            return
        if isinstance(statement, ast.Select):
            self._run_select(statement, frame, result)
            return
        # Everything else (DML, EXEC, transactions) goes through the
        # server's dispatcher with the frame as parameter bindings.
        inner = self.server.execute_statement(
            statement, params=frame, session=self.session, database=self.database
        )
        result.messages.extend(inner.messages)
        result.rowcount += inner.rowcount
        if inner.resultsets:
            result.resultsets.extend(inner.resultsets)
        elif inner.schema is not None:
            result.resultsets.append((inner.schema, inner.rows))

    def _run_select(self, statement: ast.Select, frame: Dict[str, Any], result: Result) -> None:
        targets = [item.target_parameter for item in statement.items]
        inner = self.server.execute_statement(
            statement, params=frame, session=self.session, database=self.database
        )
        if any(targets):
            # SELECT @x = expr: assignment form. T-SQL applies the select
            # list to each row; the final values come from the last row.
            # With no rows, variables keep their prior values.
            for row in inner.rows:
                for position, target in enumerate(targets):
                    if target is not None:
                        frame[target] = row[position]
            return
        result.resultsets.append((inner.schema, inner.rows))

    # -- helpers -------------------------------------------------------------

    def _evaluate(self, expression: ast.Expression, frame: Dict[str, Any]) -> Any:
        ctx = self._context(frame)
        ctx.subquery_executor = lambda select, params: self.server.run_subquery(
            select, params, self.database, self.session
        )
        return self._blank.compile(expression)((), ctx)

    @staticmethod
    def _truthy(value: Any) -> bool:
        if value is None:
            return False
        if isinstance(value, bool):
            return value
        if isinstance(value, (int, float)):
            return value != 0
        return bool(value)
