"""Check an observed witness graph against the modeled lock hierarchy.

The runtime witness (:mod:`repro.common.witness`) records every
``held -> acquired`` edge a test run produces. :func:`verify_witness`
asserts two things about that observation:

* **no recorded violations** — the witness flags inversions and
  unordered same-class nesting eagerly, at acquisition time; any entry
  in its violation list is a real interleaving that happened;
* **the observed graph embeds in the modeled hierarchy** — every edge
  must be legal under :func:`~repro.analysis.concurrency.model.allowed_edge`
  (descending or sideways), and the sideways edges must be globally
  acyclic. This is the subgraph check: the dynamic behavior the tests
  exercised stayed inside what the static model allows.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.concurrency.model import allowed_edge, find_cycle
from repro.common.witness import Witness, active_witness
from repro.errors import AnalysisError


def verify_witness(witness: Optional[Witness] = None) -> List[AnalysisError]:
    """Diagnostics for the (default: active) witness's observed graph."""
    if witness is None:
        witness = active_witness()
    if witness is None:
        return [
            AnalysisError(
                "witness-disabled",
                "no lock witness is active; set REPRO_LOCK_WITNESS=1 "
                "before creating any locks to record the acquisition graph",
                severity="note",
            )
        ]
    snapshot = witness.snapshot()
    diagnostics: List[AnalysisError] = []
    for violation in snapshot["violations"]:
        diagnostics.append(
            AnalysisError(
                violation["rule"],
                f"runtime witness: {violation['held']} -> "
                f"{violation['acquired']}: {violation['detail']}",
            )
        )
    classes = snapshot["classes"]
    edge_keys = []
    for edge in snapshot["edges"]:
        source, target = edge["from"], edge["to"]
        edge_keys.append((source, target))
        from_class = classes[source]
        to_class = classes[target]
        if not allowed_edge(
            from_class["level"],
            to_class["level"],
            source == target,
            to_class["ordered"],
        ):
            diagnostics.append(
                AnalysisError(
                    "witness-hierarchy",
                    f"observed edge {source} (level {from_class['level']}) -> "
                    f"{target} (level {to_class['level']}) is outside the "
                    f"modeled hierarchy (seen {edge['count']}x)",
                )
            )
    ordered = {key for key, cls in classes.items() if cls["ordered"]}
    cycle = find_cycle(edge_keys, ordered_classes=ordered)
    if cycle is not None:
        diagnostics.append(
            AnalysisError(
                "witness-cycle",
                "observed acquisition cycle " + " -> ".join(cycle),
            )
        )
    return diagnostics
