"""Expression evaluation: SQL semantics including three-valued logic."""

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.schema import Column, Schema
from repro.common.types import FLOAT, INT, VARCHAR
from repro.errors import ExecutionError, TypeCheckError
from repro.exec.context import ExecutionContext
from repro.exec.expressions import (
    ExpressionCompiler,
    _coerce_pair,
    batch_form,
    compiled_like_pattern,
    like_to_regex,
    sql_and,
    sql_compare,
    sql_not,
    sql_or,
)
from repro.sql import parse_expression

SCHEMA = Schema(
    [
        Column("a", INT, qualifier="t"),
        Column("b", FLOAT, qualifier="t"),
        Column("s", VARCHAR(20), qualifier="t"),
    ]
)


def evaluate(text, row=(1, 2.5, "hello"), params=None):
    compiled = ExpressionCompiler(SCHEMA).compile(parse_expression(text))
    return compiled(row, ExecutionContext(params=params or {}))


class TestArithmetic:
    def test_basic(self):
        assert evaluate("a + 2") == 3
        assert evaluate("b * 2") == 5.0
        assert evaluate("10 - a") == 9

    def test_integer_division_truncates_toward_zero(self):
        assert evaluate("7 / 2") == 3
        assert evaluate("-7 / 2") == -3

    def test_float_division(self):
        assert evaluate("7.0 / 2") == 3.5

    def test_division_by_zero(self):
        with pytest.raises(ExecutionError):
            evaluate("1 / 0")

    def test_modulo(self):
        assert evaluate("7 % 3") == 1

    def test_null_propagates(self):
        assert evaluate("a + NULL") is None
        assert evaluate("NULL * 2") is None

    def test_string_concat(self):
        assert evaluate("s + '!'") == "hello!"

    def test_string_plus_number_rejected(self):
        with pytest.raises(TypeCheckError):
            evaluate("s + 1")

    def test_unary_minus_null(self):
        assert evaluate("-(NULL + 1)") is None


class TestComparisons:
    def test_basic(self):
        assert evaluate("a = 1") is True
        assert evaluate("a <> 1") is False
        assert evaluate("b >= 2.5") is True
        assert evaluate("s < 'world'") is True

    def test_null_comparison_is_unknown(self):
        assert evaluate("a = NULL") is None
        assert evaluate("NULL <> NULL") is None

    def test_numeric_cross_type(self):
        assert evaluate("a < 1.5") is True

    def test_date_vs_string(self):
        schema = Schema([Column("d", INT)])
        compiled = ExpressionCompiler(schema).compile(parse_expression("d >= '2003-01-05'"))
        assert compiled((datetime.date(2003, 1, 6),), ExecutionContext()) is True


class TestThreeValuedLogic:
    def test_kleene_tables(self):
        assert sql_and(True, None) is None
        assert sql_and(False, None) is False
        assert sql_or(True, None) is True
        assert sql_or(False, None) is None
        assert sql_not(None) is None

    def test_and_or_in_expressions(self):
        assert evaluate("a = 1 AND NULL = 1") is None
        assert evaluate("a = 1 OR NULL = 1") is True
        assert evaluate("a = 2 AND NULL = 1") is False

    def test_not_unknown(self):
        assert evaluate("NOT (NULL = 1)") is None

    @settings(max_examples=100, deadline=None)
    @given(
        st.sampled_from([True, False, None]),
        st.sampled_from([True, False, None]),
    )
    def test_property_de_morgan(self, left, right):
        assert sql_not(sql_and(left, right)) == sql_or(sql_not(left), sql_not(right))
        assert sql_not(sql_or(left, right)) == sql_and(sql_not(left), sql_not(right))


class TestPredicates:
    def test_in_list(self):
        assert evaluate("a IN (1, 2)") is True
        assert evaluate("a IN (5, 6)") is False
        assert evaluate("a NOT IN (5, 6)") is True

    def test_in_list_with_null_semantics(self):
        # x IN (..., NULL) is UNKNOWN when no listed value matches.
        assert evaluate("a IN (5, NULL)") is None
        assert evaluate("a IN (1, NULL)") is True
        assert evaluate("a NOT IN (5, NULL)") is None

    def test_between(self):
        assert evaluate("a BETWEEN 0 AND 2") is True
        assert evaluate("a NOT BETWEEN 0 AND 2") is False
        assert evaluate("a BETWEEN NULL AND 2") is None

    def test_like(self):
        assert evaluate("s LIKE 'he%'") is True
        assert evaluate("s LIKE '%LL%'") is True  # case-insensitive
        assert evaluate("s LIKE 'h_llo'") is True
        assert evaluate("s NOT LIKE 'x%'") is True
        assert evaluate("s LIKE NULL") is None

    def test_like_special_chars_escaped(self):
        schema = Schema([Column("s", VARCHAR(20))])
        compiled = ExpressionCompiler(schema).compile(parse_expression("s LIKE 'a.b%'"))
        assert compiled(("a.bc",), ExecutionContext()) is True
        assert compiled(("axbc",), ExecutionContext()) is False

    def test_is_null(self):
        assert evaluate("NULL IS NULL") is True
        assert evaluate("a IS NULL") is False
        assert evaluate("a IS NOT NULL") is True

    def test_case_when(self):
        assert evaluate("CASE WHEN a = 1 THEN 'one' ELSE 'other' END") == "one"
        assert evaluate("CASE WHEN a = 9 THEN 'nine' END") is None


class TestParametersAndFunctions:
    def test_parameter_binding(self):
        assert evaluate("a = @x", params={"x": 1}) is True

    def test_missing_parameter_is_null(self):
        assert evaluate("@nothing IS NULL") is True

    def test_scalar_functions(self):
        assert evaluate("UPPER(s)") == "HELLO"
        assert evaluate("LOWER('ABC')") == "abc"
        assert evaluate("LEN(s)") == 5
        assert evaluate("ABS(-3)") == 3
        assert evaluate("SUBSTRING(s, 2, 3)") == "ell"
        assert evaluate("CHARINDEX('ll', s)") == 3
        assert evaluate("COALESCE(NULL, NULL, 7)") == 7
        assert evaluate("ISNULL(NULL, 9)") == 9
        assert evaluate("ROUND(2.567, 1)") == 2.6
        assert evaluate("FLOOR(2.9)") == 2
        assert evaluate("CEILING(2.1)") == 3

    def test_functions_propagate_null(self):
        assert evaluate("UPPER(NULL)") is None
        assert evaluate("LEN(NULL)") is None

    def test_unknown_function(self):
        with pytest.raises(ExecutionError, match="unknown function"):
            evaluate("FROBNICATE(1)")

    def test_getdate_uses_virtual_clock(self):
        from repro.common.clock import SimulatedClock

        clock = SimulatedClock()
        clock.advance(60.0)
        compiled = ExpressionCompiler(SCHEMA).compile(parse_expression("GETDATE()"))
        value = compiled((1, 2.5, "x"), ExecutionContext(clock=clock))
        assert value == datetime.datetime(2003, 6, 9, 0, 1)

    def test_aggregate_outside_group_by_rejected(self):
        with pytest.raises(ExecutionError):
            evaluate("SUM(a)")


class TestLikeRegex:
    def test_anchoring(self):
        assert like_to_regex("abc").match("abc")
        assert not like_to_regex("abc").match("xabc")
        assert not like_to_regex("abc").match("abcx")

    def test_compiled_pattern_memoized(self):
        assert compiled_like_pattern("xy%") is compiled_like_pattern("xy%")


class TestCoercionEdgeCases:
    """sql_compare/_coerce_pair corners the batch fast paths must respect."""

    def test_null_on_either_side_is_unknown(self):
        for op in ("=", "<>", "<", "<=", ">", ">="):
            assert sql_compare(op, None, 1) is None
            assert sql_compare(op, "x", None) is None
            assert sql_compare(op, None, None) is None

    def test_int_float_cross_type(self):
        assert sql_compare("=", 1, 1.0) is True
        assert sql_compare("<", 1, 1.5) is True
        assert sql_compare(">=", 2.0, 2) is True

    def test_bool_coerces_to_int(self):
        assert _coerce_pair(True, 1, "=") == 0
        assert _coerce_pair(False, 1, "<") == -1
        assert sql_compare("=", True, 1.0) is True

    def test_date_vs_iso_string_both_sides(self):
        day = datetime.date(2003, 6, 9)
        assert sql_compare("=", day, "2003-06-09") is True
        assert sql_compare("<", "2003-06-08", day) is True

    def test_date_vs_datetime_promotes(self):
        day = datetime.date(2003, 6, 9)
        stamp = datetime.datetime(2003, 6, 9, 12, 0)
        assert sql_compare("<", day, stamp) is True

    def test_mixed_incomparable_types_rejected(self):
        with pytest.raises(TypeCheckError):
            sql_compare("=", "abc", 1)
        with pytest.raises(TypeCheckError):
            _coerce_pair(datetime.date(2003, 1, 1), 5, "<")


#: Rows with NULLs, cross-type numerics, bools-as-ints, and boundary
#: strings — the inputs where a vectorized fast path could drift from
#: the scalar semantics.
EDGE_ROWS = [
    (1, 2.5, "hello"),
    (None, None, None),
    (0, 0.0, ""),
    (-7, 1.0, "HELLO"),
    (2, -2.5, "h_llo"),
    (True, 2.0, "hel"),
    (1000000, 1e-9, "hello world"),
    (None, 3.5, "xyz"),
    (3, None, "hello"),
]

BATCH_EXPRESSIONS = [
    "a = 1",
    "a <> 1",
    "a < 2",
    "a <= 0",
    "a > -1",
    "a >= 1000000",
    "1 < a",  # flipped orientation normalizes to a > 1
    "2.5 >= b",
    "b = 2.5",
    "s = 'hello'",
    "s < 'i'",
    "s LIKE 'he%'",
    "s LIKE '%l_o'",
    "s LIKE @pat",
    "a = @x",
    "a IS NULL",
    "b IS NOT NULL",
    "a = 1 AND b > 0",
    "a = 1 OR s = 'xyz'",
    "NOT (a = 1)",
    "a + 1",
    "-b",
    "a BETWEEN 0 AND 2",
    "a IN (1, 2, NULL)",
    "COALESCE(a, 99)",
]


class TestBatchFormsMatchScalar:
    """Every compiled batch closure must equal the scalar map, row for row."""

    PARAMS = {"x": 1, "pat": "h%o"}

    def _compiled(self, text):
        return ExpressionCompiler(SCHEMA).compile(parse_expression(text))

    @pytest.mark.parametrize("text", BATCH_EXPRESSIONS)
    def test_batch_equals_scalar_on_edge_rows(self, text):
        compiled = self._compiled(text)
        ctx = ExecutionContext(params=self.PARAMS)
        expected = [compiled(row, ctx) for row in EDGE_ROWS]
        assert batch_form(compiled)(EDGE_ROWS, ctx) == expected

    @pytest.mark.parametrize("text", BATCH_EXPRESSIONS)
    def test_batch_of_empty_chunk_is_empty(self, text):
        compiled = self._compiled(text)
        assert batch_form(compiled)([], ExecutionContext(params=self.PARAMS)) == []

    def test_temporal_batch_fast_path(self):
        schema = Schema([Column("d", INT)])
        compiled = ExpressionCompiler(schema).compile(
            parse_expression("d >= '2003-01-05'")
        )
        rows = [
            (datetime.date(2003, 1, 4),),
            (datetime.date(2003, 1, 5),),
            (None,),
            (datetime.date(2003, 1, 6),),
        ]
        ctx = ExecutionContext()
        expected = [compiled(row, ctx) for row in rows]
        assert expected == [False, True, None, True]
        assert batch_form(compiled)(rows, ctx) == expected

    @settings(max_examples=200, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.one_of(st.none(), st.integers(-50, 50), st.booleans()),
                st.one_of(st.none(), st.floats(-50, 50, allow_nan=False)),
                st.one_of(st.none(), st.text(alphabet="abchelo_%", max_size=8)),
            ),
            max_size=20,
        ),
        st.sampled_from(
            ["a < 3", "a >= @x", "b <= 1.5", "s = 'he'", "s LIKE 'h%'",
             "a = 1 AND b > 0", "a IS NULL OR s <> 'x'"]
        ),
    )
    def test_property_batch_matches_scalar(self, rows, text):
        compiled = self._compiled(text)
        ctx = ExecutionContext(params=self.PARAMS)
        expected = [compiled(row, ctx) for row in rows]
        assert batch_form(compiled)(rows, ctx) == expected
