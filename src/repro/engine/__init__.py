"""The database engine: servers, databases, sessions, transactions.

A :class:`Server` is the SQL Server stand-in: it owns databases, accepts
SQL text over sessions, and participates in distributed queries as a
linked server. A :class:`Database` couples a catalog with storage,
statistics and a write-ahead log.
"""

from repro.engine.database import Database
from repro.engine.results import Result
from repro.engine.server import Server
from repro.engine.session import Session

__all__ = ["Database", "Result", "Server", "Session"]
