"""Concurrency lint pack: the repo is clean, mutations are caught."""

from __future__ import annotations

import threading
from textwrap import dedent

from repro.analysis.concurrency import analyze_lock_order, verify_witness
from repro.analysis.concurrency.atomicity import (
    check_lock_plans,
    check_rebalance_protocol,
    check_statement_coverage,
)
from repro.analysis.concurrency.model import (
    LEVEL_LATCH,
    LEVEL_LEAF,
    LEVEL_OUTER,
    LEVEL_TABLE,
    allowed_edge,
    find_cycle,
)
from repro.analysis.shardlint import (
    check_partitioner,
    check_partitioner_domain,
    lint_sharding_policy,
)
from repro.common.witness import Witness, WitnessedLock, lock_class
from repro.engine.locks import LockMode, LockPlan
from repro.sharding.policy import (
    ROUTE_KEY,
    ProcedureRoute,
    ShardingPolicy,
    TablePartition,
    tpcw_sharding_policy,
)
from repro.sharding.ring import RangePartitioner
from repro.sql import ast as sqlast
from repro.tpcw import TPCWConfig


def _rules(diagnostics):
    return [d.rule for d in diagnostics]


# -- the repository itself is clean -----------------------------------------


def test_repository_lock_order_is_clean():
    report = analyze_lock_order()
    assert report.errors == []
    # The graph is non-trivial: the analyzer actually found the engine's
    # latch and table classes and at least the latch -> table edge.
    keys = set(report.classes)
    assert "latch" in keys and "table" in keys
    assert ("latch", "table") in report.edges


def test_statement_coverage_is_complete():
    assert check_statement_coverage() == []


def test_rebalance_protocol_of_real_deployment_is_clean():
    assert check_rebalance_protocol() == []


def test_tpcw_sharding_policy_partitioners_tile_the_domain():
    assert check_partitioner_domain(tpcw_sharding_policy(TPCWConfig())) == []


# -- modeled hierarchy ------------------------------------------------------


class TestModel:
    def test_descending_edges_are_legal(self):
        assert allowed_edge(LEVEL_OUTER, LEVEL_LATCH, False, False)
        assert allowed_edge(LEVEL_LATCH, LEVEL_TABLE, False, False)
        assert allowed_edge(LEVEL_TABLE, LEVEL_LEAF, False, False)

    def test_ascending_edges_are_illegal(self):
        assert not allowed_edge(LEVEL_LEAF, LEVEL_LATCH, False, False)
        assert not allowed_edge(LEVEL_TABLE, LEVEL_LATCH, False, False)

    def test_sideways_edges_are_locally_legal(self):
        assert allowed_edge(LEVEL_LEAF, LEVEL_LEAF, False, False)

    def test_same_class_requires_intra_class_order(self):
        assert not allowed_edge(LEVEL_TABLE, LEVEL_TABLE, True, False)
        assert allowed_edge(LEVEL_TABLE, LEVEL_TABLE, True, True)

    def test_find_cycle_reports_a_two_node_cycle(self):
        cycle = find_cycle([("a", "b"), ("b", "a")])
        assert cycle is not None
        assert set(cycle) == {"a", "b"}

    def test_find_cycle_clean_on_a_dag(self):
        assert find_cycle([("a", "b"), ("b", "c"), ("a", "c")]) is None

    def test_ordered_self_loop_is_sanctioned(self):
        assert find_cycle([("table", "table")], ordered_classes=["table"]) is None
        assert find_cycle([("pool", "pool")]) == ["pool", "pool"]


# -- runtime witness verification -------------------------------------------


def _synthetic_witness(classes, edges):
    witness = Witness()
    witness.key_levels.update(classes)
    for edge in edges:
        witness.edges[edge] = witness.edges.get(edge, 0) + 1
    return witness


class TestVerifyWitness:
    def test_clean_descending_graph_verifies(self):
        witness = Witness()
        outer = WitnessedLock(
            threading.Lock(), lock_class("vw-outer", LEVEL_OUTER), witness=witness
        )
        leaf = WitnessedLock(
            threading.Lock(), lock_class("vw-leaf", LEVEL_LEAF), witness=witness
        )
        with outer:
            with leaf:
                pass
        assert verify_witness(witness) == []

    def test_recorded_violations_become_errors(self):
        witness = Witness()
        latch = WitnessedLock(
            threading.Lock(), lock_class("vw-latch", LEVEL_LATCH), witness=witness
        )
        leaf = WitnessedLock(
            threading.Lock(), lock_class("vw-leaf2", LEVEL_LEAF), witness=witness
        )
        with leaf:
            with latch:
                pass
        rules = _rules(verify_witness(witness))
        assert "lock-order-inversion" in rules
        # The inverted edge is also outside the modeled hierarchy.
        assert "witness-hierarchy" in rules

    def test_upward_edge_without_violation_is_still_flagged(self):
        # A hand-built graph (no violations list): the subgraph check
        # alone must reject the upward edge.
        witness = _synthetic_witness(
            {"leafish": (LEVEL_LEAF, False), "latchish": (LEVEL_LATCH, False)},
            [("leafish", "latchish")],
        )
        assert _rules(verify_witness(witness)) == ["witness-hierarchy"]

    def test_sideways_cycle_is_flagged(self):
        witness = _synthetic_witness(
            {"x": (LEVEL_LEAF, False), "y": (LEVEL_LEAF, False)},
            [("x", "y"), ("y", "x")],
        )
        assert _rules(verify_witness(witness)) == ["witness-cycle"]

    def test_ordered_self_edge_verifies(self):
        witness = _synthetic_witness(
            {"tablesort": (LEVEL_TABLE, True)}, [("tablesort", "tablesort")]
        )
        assert verify_witness(witness) == []


# -- atomicity: statement coverage mutations --------------------------------


class FancyMerge(sqlast.Statement):
    """A statement class the lock planner knows nothing about."""


def test_unclassified_statement_flagged():
    diagnostics = check_statement_coverage(statements=[FancyMerge])
    assert _rules(diagnostics) == ["unclassified-statement"]
    assert "FancyMerge" in diagnostics[0].message


# -- atomicity: lock-plan coverage against a live catalog -------------------


def _shop_with_procedures(backend):
    backend.execute(
        """
        CREATE PROCEDURE markShipped @oid INT AS
        BEGIN
            UPDATE orders SET status = 'SHIPPED' WHERE oid = @oid
        END;
        CREATE PROCEDURE getOrder @oid INT AS
        BEGIN
            SELECT oid, total FROM orders WHERE oid = @oid
        END
        """
    )
    return backend.database("shop")


def test_real_lock_plans_cover_the_shop_catalog(backend):
    database = _shop_with_procedures(backend)
    assert check_lock_plans(database, "shop") == []


def test_missing_plans_reported_per_table_and_procedure(backend):
    database = _shop_with_procedures(backend)
    diagnostics = check_lock_plans(database, "shop", lock_plan=lambda s, c: None)
    rules = set(_rules(diagnostics))
    # The writing procedure loses its exclusive EXEC span; the read-only
    # procedure's SELECT and the synthetic per-table DML lose coverage.
    assert rules == {"exec-span", "missing-table-lock"}
    messages = " ".join(d.message for d in diagnostics)
    assert "markShipped" in messages


def test_shared_lock_on_a_write_is_insufficient(backend):
    from repro.analysis.concurrency.atomicity import _walk_table_names

    database = _shop_with_procedures(backend)

    def weak_plan(statement, catalog):
        tables = sorted(
            {name.object_name.lower() for name in _walk_table_names(statement)}
        )
        return LockPlan(
            latch=LockMode.SHARED,
            tables=tuple((table, LockMode.SHARED) for table in tables),
        )

    diagnostics = check_lock_plans(database, "shop", lock_plan=weak_plan)
    # Writing procedures demand an exclusive latch span; the synthetic
    # DML needs exclusive table locks, SHARED is not enough.
    assert set(_rules(diagnostics)) == {"exec-span", "missing-table-lock"}


# -- atomicity: rebalance protocol over source text -------------------------


def test_undrained_rebalance_flagged():
    source = dedent(
        """
        class Deployment:
            def add_shard(self, name):
                keep, give = self.partitioner.plan_split("s0")
                self.partitioner.set_slice("s0", *keep)
                self.deployment.sync()
        """
    )
    assert _rules(check_rebalance_protocol(source)) == ["rebalance-drain"]


def test_torn_boundary_move_flagged():
    source = dedent(
        """
        class Deployment:
            def move_boundary(self, left, right, cut):
                self.deployment.sync()
                self.partitioner.set_slice(left, 0, cut)
                self.partitioner.set_slice(right, cut + 1, 100)
        """
    )
    assert _rules(check_rebalance_protocol(source)) == ["boundary-move-window"]


def test_drained_single_mutation_is_clean():
    source = dedent(
        """
        class Deployment:
            def move_boundary(self, left, right, cut):
                self.deployment.sync()
                self.partitioner.move_boundary(left, right, cut)
        """
    )
    assert check_rebalance_protocol(source) == []


# -- sharding policy lint ----------------------------------------------------


def _policy(**overrides):
    base = dict(
        key_domain=(1, 100),
        partitions={
            "customer": TablePartition(
                table="customer",
                view="CustomerSlice",
                key_column="cid",
                select="SELECT cid, cname FROM customer",
            )
        },
        routes={},
        shadow_tables=["customer"],
        procedures=[],
    )
    base.update(overrides)
    return ShardingPolicy(**base)


def test_policy_with_unknown_table_flagged(backend):
    catalog = backend.database("shop").catalog
    policy = _policy(
        partitions={
            "ghost": TablePartition(
                table="ghost", view="GhostSlice", key_column="gid", select="SELECT 1"
            )
        },
        shadow_tables=["ghost"],
    )
    assert "shard-partition-table" in _rules(lint_sharding_policy(policy, catalog))


def test_policy_with_unknown_key_column_flagged(backend):
    catalog = backend.database("shop").catalog
    policy = _policy(
        partitions={
            "customer": TablePartition(
                table="customer",
                view="CustomerSlice",
                key_column="not_a_column",
                select="SELECT cid FROM customer",
            )
        }
    )
    assert "shard-partition-key" in _rules(lint_sharding_policy(policy, catalog))


def test_key_route_to_uncopied_procedure_flagged(backend):
    catalog = backend.database("shop").catalog
    policy = _policy(
        routes={"getcustomer": ProcedureRoute(kind=ROUTE_KEY, table="customer")}
    )
    rules = _rules(lint_sharding_policy(policy, catalog))
    assert any(rule.startswith("shard-route") for rule in rules)


# -- partitioner geometry ----------------------------------------------------


def test_partitioner_tiles_after_moves():
    partitioner = RangePartitioner(["a", "b", "c"], 1, 99)
    partitioner.move_boundary("a", "b", partitioner.slice("a")[1] + 5)
    assert check_partitioner(partitioner) == []


def test_partitioner_gap_flagged():
    partitioner = RangePartitioner(["a", "b"], 1, 100)
    low, high = partitioner.slice("a")
    partitioner.set_slice("a", low, high - 3)  # leaves a hole before b
    assert _rules(check_partitioner(partitioner)) == ["shard-domain-coverage"]


def test_partitioner_overlap_flagged():
    partitioner = RangePartitioner(["a", "b"], 1, 100)
    low, high = partitioner.slice("a")
    partitioner.set_slice("a", low, high + 3)  # bleeds into b
    assert _rules(check_partitioner(partitioner)) == ["shard-domain-overlap"]
