"""E0 — §6.1.1 workload-mix table.

Paper:

    Workload   Browse  Order
    Browsing     95 %    5 %
    Shopping     80 %   20 %
    Ordering     50 %   50 %

Regenerates the table from the implemented interaction mixes and times mix
sampling (the load driver's hot path).
"""

import random

import pytest

from repro.tpcw.workload import MIXES, browse_order_split

from benchmarks.conftest import emit

PAPER = {"Browsing": (0.95, 0.05), "Shopping": (0.80, 0.20), "Ordering": (0.50, 0.50)}


def test_bench_workload_mix(benchmark, capsys):
    lines = [f"{'Workload':10s} {'Browse':>8s} {'Order':>8s}   paper"]
    for name in ("Browsing", "Shopping", "Ordering"):
        browse, order = browse_order_split(name)
        paper_browse, paper_order = PAPER[name]
        lines.append(
            f"{name:10s} {browse:8.2%} {order:8.2%}   {paper_browse:.0%}/{paper_order:.0%}"
        )
        assert browse == pytest.approx(paper_browse, abs=0.005)
        assert order == pytest.approx(paper_order, abs=0.005)
    emit(capsys, "E0: workload mix (Browse/Order class split)", lines)

    mix = MIXES["Shopping"]
    rng = random.Random(1)
    benchmark(lambda: [mix.sample(rng) for _ in range(1000)])
