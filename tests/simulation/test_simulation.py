"""Cluster simulation tests: calibration, analytic model, DES."""

import pytest

from repro.simulation import ClusterModel, DESConfig, calibrate, simulate_cluster
from repro.tpcw import TPCWConfig
from repro.tpcw.workload import MIXES


@pytest.fixture(scope="module")
def calibrations():
    config = TPCWConfig(num_items=60, num_ebs=10, bestseller_window=60)
    cached = calibrate("cached", config, repetitions=4)
    nocache = calibrate("nocache", config, repetitions=4)
    return cached, nocache


class TestCalibration:
    def test_profiles_cover_all_interactions(self, calibrations):
        cached, nocache = calibrations
        from repro.tpcw.workload import INTERACTIONS

        assert set(cached.profiles) == set(INTERACTIONS)
        assert set(nocache.profiles) == set(INTERACTIONS)

    def test_nocache_has_no_cache_work(self, calibrations):
        _, nocache = calibrations
        assert all(p.cache_work == 0 for p in nocache.profiles.values())

    def test_caching_offloads_browse_interactions(self, calibrations):
        cached, nocache = calibrations
        for name in ("best_sellers", "new_products", "product_detail"):
            assert cached.profiles[name].backend_work < nocache.profiles[name].backend_work
            assert cached.profiles[name].cache_work > 0

    def test_updates_stay_on_backend(self, calibrations):
        cached, _ = calibrations
        assert cached.profiles["buy_confirm"].backend_work > 0

    def test_replication_commands_only_from_updates(self, calibrations):
        cached, _ = calibrations
        assert cached.profiles["buy_confirm"].replication_commands > 0
        assert cached.profiles["best_sellers"].replication_commands == 0

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            calibrate("bogus", TPCWConfig(num_items=20, num_ebs=4), repetitions=1)


class TestAnalyticModel:
    def test_linear_scaling_until_backend_saturates(self, calibrations):
        cached, _ = calibrations
        model = ClusterModel(cached)
        curve = model.curve("Browsing", 5)
        wips = [point.wips for point in curve]
        # Browsing offloads nearly everything: WIPS ~ proportional to N.
        for n in range(1, 5):
            assert wips[n] / wips[0] == pytest.approx(n + 1, rel=0.05)

    def test_backend_utilization_grows_with_servers(self, calibrations):
        cached, _ = calibrations
        model = ClusterModel(cached)
        curve = model.curve("Ordering", 5)
        utils = [point.backend_utilization for point in curve]
        assert all(a <= b + 1e-9 for a, b in zip(utils, utils[1:]))
        assert utils[-1] <= 0.9 + 1e-9

    def test_ordering_least_scalable(self, calibrations):
        cached, _ = calibrations
        model = ClusterModel(cached)
        assert model.max_scaleout("Ordering") < model.max_scaleout("Shopping")
        assert model.max_scaleout("Shopping") < model.max_scaleout("Browsing")

    def test_baseline_backend_bound(self, calibrations):
        """With enough web servers the backend is the baseline bottleneck
        (the paper ran 5 web servers against the dual-CPU backend; at the
        tiny unit-test scale a few more are needed for the update-light
        demands)."""
        _, nocache = calibrations
        model = ClusterModel(nocache, replication_enabled=False)
        for mix in MIXES:
            point = model.baseline_wips(mix, web_servers=12)
            assert point.bottleneck == "backend"
            assert point.backend_utilization == pytest.approx(0.9)

    def test_replication_toggle_reduces_demand(self, calibrations):
        cached, _ = calibrations
        with_repl = ClusterModel(cached, replication_enabled=True)
        without = ClusterModel(cached, replication_enabled=False)
        assert (
            without.point("Ordering", 5).wips >= with_repl.point("Ordering", 5).wips
        )


class TestDES:
    def test_low_load_low_latency(self, calibrations):
        cached, _ = calibrations
        result = simulate_cluster(
            cached, DESConfig(users=10, mix_name="Shopping", servers=2, duration=60)
        )
        assert result.completed > 100
        assert result.p90_latency < 0.5
        assert result.backend_utilization < 0.5

    def test_throughput_tracks_users_below_saturation(self, calibrations):
        cached, _ = calibrations
        small = simulate_cluster(
            cached, DESConfig(users=10, mix_name="Shopping", servers=2, duration=60)
        )
        large = simulate_cluster(
            cached, DESConfig(users=30, mix_name="Shopping", servers=2, duration=60)
        )
        assert large.wips > small.wips * 2

    def test_saturation_raises_latency(self, calibrations):
        cached, _ = calibrations
        light = simulate_cluster(
            cached, DESConfig(users=10, mix_name="Ordering", servers=1, duration=60)
        )
        heavy = simulate_cluster(
            cached, DESConfig(users=800, mix_name="Ordering", servers=1, duration=60)
        )
        assert heavy.p90_latency > light.p90_latency
        assert heavy.web_utilization > 0.8

    def test_replication_latency_measured(self, calibrations):
        cached, _ = calibrations
        result = simulate_cluster(
            cached, DESConfig(users=30, mix_name="Ordering", servers=2, duration=60)
        )
        assert result.replication_samples > 0
        assert result.replication_latency is not None
        assert result.replication_latency > 0

    def test_replication_latency_grows_under_saturation(self, calibrations):
        cached, _ = calibrations
        light = simulate_cluster(
            cached, DESConfig(users=20, mix_name="Ordering", servers=2, duration=60)
        )
        heavy = simulate_cluster(
            cached,
            DESConfig(users=1500, mix_name="Ordering", servers=2, duration=60),
        )
        assert heavy.replication_latency > light.replication_latency

    def test_deterministic_given_seed(self, calibrations):
        cached, _ = calibrations
        cfg = DESConfig(users=15, mix_name="Shopping", servers=1, duration=30, seed=5)
        first = simulate_cluster(cached, cfg)
        second = simulate_cluster(cached, cfg)
        assert first.wips == second.wips
        assert first.p90_latency == second.p90_latency
