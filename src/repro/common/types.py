"""SQL type system used throughout the engine.

The engine stores values as plain Python objects (``int``, ``float``, ``str``,
``datetime.date``, ``datetime.datetime``, ``bool`` and ``None`` for SQL NULL)
and uses :class:`SqlType` descriptors on schemas to drive coercion, width
estimation (for transfer-cost modelling) and literal formatting when shipping
queries to a linked server as text.
"""

from __future__ import annotations

import datetime
import enum
from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import TypeCheckError


class TypeKind(enum.Enum):
    """The kinds of SQL types the engine supports."""

    INT = "int"
    BIGINT = "bigint"
    FLOAT = "float"
    NUMERIC = "numeric"
    VARCHAR = "varchar"
    CHAR = "char"
    DATE = "date"
    DATETIME = "datetime"
    BOOLEAN = "bit"


_NUMERIC_KINDS = frozenset(
    {TypeKind.INT, TypeKind.BIGINT, TypeKind.FLOAT, TypeKind.NUMERIC}
)
_STRING_KINDS = frozenset({TypeKind.VARCHAR, TypeKind.CHAR})
_TEMPORAL_KINDS = frozenset({TypeKind.DATE, TypeKind.DATETIME})

# Numeric widening order used by common_type().
_NUMERIC_RANK = {
    TypeKind.INT: 0,
    TypeKind.BIGINT: 1,
    TypeKind.NUMERIC: 2,
    TypeKind.FLOAT: 3,
}

# Estimated storage width in bytes, used by the DataTransfer cost model.
_FIXED_WIDTHS = {
    TypeKind.INT: 4,
    TypeKind.BIGINT: 8,
    TypeKind.FLOAT: 8,
    TypeKind.NUMERIC: 9,
    TypeKind.DATE: 4,
    TypeKind.DATETIME: 8,
    TypeKind.BOOLEAN: 1,
}


@dataclass(frozen=True)
class SqlType:
    """A SQL type descriptor: a kind plus optional length/precision/scale."""

    kind: TypeKind
    length: Optional[int] = None  # for VARCHAR/CHAR
    precision: Optional[int] = None  # for NUMERIC
    scale: Optional[int] = None  # for NUMERIC

    def __str__(self) -> str:
        if self.kind in _STRING_KINDS:
            name = "varchar" if self.kind is TypeKind.VARCHAR else "char"
            return f"{name}({self.length})" if self.length else name
        if self.kind is TypeKind.NUMERIC and self.precision is not None:
            if self.scale is not None:
                return f"numeric({self.precision},{self.scale})"
            return f"numeric({self.precision})"
        return self.kind.value

    @property
    def width(self) -> int:
        """Estimated average stored width in bytes (for transfer costing)."""
        if self.kind in _STRING_KINDS:
            declared = self.length or 32
            # Variable-length strings are assumed half full on average.
            if self.kind is TypeKind.VARCHAR:
                return max(1, declared // 2) + 2
            return declared
        return _FIXED_WIDTHS[self.kind]


# Convenience singletons for the common parameterless types.
INT = SqlType(TypeKind.INT)
BIGINT = SqlType(TypeKind.BIGINT)
FLOAT = SqlType(TypeKind.FLOAT)
NUMERIC = SqlType(TypeKind.NUMERIC, precision=15, scale=2)
DATE = SqlType(TypeKind.DATE)
DATETIME = SqlType(TypeKind.DATETIME)
BOOLEAN = SqlType(TypeKind.BOOLEAN)


def VARCHAR(length: Optional[int] = None) -> SqlType:
    """Build a ``varchar(length)`` type descriptor."""
    return SqlType(TypeKind.VARCHAR, length=length)


def CHAR(length: int) -> SqlType:
    """Build a ``char(length)`` type descriptor."""
    return SqlType(TypeKind.CHAR, length=length)


def is_numeric(sql_type: SqlType) -> bool:
    """Return True if the type participates in arithmetic."""
    return sql_type.kind in _NUMERIC_KINDS


def is_string(sql_type: SqlType) -> bool:
    """Return True if the type is a character string type."""
    return sql_type.kind in _STRING_KINDS


def is_temporal(sql_type: SqlType) -> bool:
    """Return True if the type is DATE or DATETIME."""
    return sql_type.kind in _TEMPORAL_KINDS


def common_type(left: SqlType, right: SqlType) -> SqlType:
    """Return the widened type two operand types combine into.

    Raises :class:`TypeCheckError` when the types are incompatible
    (e.g. string with numeric).
    """
    if left.kind == right.kind:
        if left.kind in _STRING_KINDS:
            length = None
            if left.length is not None and right.length is not None:
                length = max(left.length, right.length)
            return SqlType(left.kind, length=length)
        return left
    if left.kind in _NUMERIC_KINDS and right.kind in _NUMERIC_KINDS:
        winner = max(left.kind, right.kind, key=_NUMERIC_RANK.__getitem__)
        return SqlType(winner) if winner is not TypeKind.NUMERIC else NUMERIC
    if left.kind in _STRING_KINDS and right.kind in _STRING_KINDS:
        return VARCHAR(None)
    if left.kind in _TEMPORAL_KINDS and right.kind in _TEMPORAL_KINDS:
        return DATETIME
    raise TypeCheckError(f"incompatible types: {left} and {right}")


def coerce_value(value: Any, sql_type: SqlType) -> Any:
    """Coerce a Python value to the representation used for ``sql_type``.

    NULL (``None``) passes through every type unchanged. Raises
    :class:`TypeCheckError` when the value cannot represent the type.
    """
    if value is None:
        return None
    kind = sql_type.kind
    if kind in (TypeKind.INT, TypeKind.BIGINT):
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(value, str):
            try:
                return int(value)
            except ValueError as exc:
                raise TypeCheckError(f"cannot coerce {value!r} to {sql_type}") from exc
        raise TypeCheckError(f"cannot coerce {value!r} to {sql_type}")
    if kind in (TypeKind.FLOAT, TypeKind.NUMERIC):
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError as exc:
                raise TypeCheckError(f"cannot coerce {value!r} to {sql_type}") from exc
        raise TypeCheckError(f"cannot coerce {value!r} to {sql_type}")
    if kind in _STRING_KINDS:
        if isinstance(value, str):
            if sql_type.length is not None and len(value) > sql_type.length:
                return value[: sql_type.length]
            return value
        return str(value)
    if kind is TypeKind.DATE:
        if isinstance(value, datetime.datetime):
            return value.date()
        if isinstance(value, datetime.date):
            return value
        if isinstance(value, str):
            return datetime.date.fromisoformat(value)
        raise TypeCheckError(f"cannot coerce {value!r} to {sql_type}")
    if kind is TypeKind.DATETIME:
        if isinstance(value, datetime.datetime):
            return value
        if isinstance(value, datetime.date):
            return datetime.datetime(value.year, value.month, value.day)
        if isinstance(value, str):
            return datetime.datetime.fromisoformat(value)
        raise TypeCheckError(f"cannot coerce {value!r} to {sql_type}")
    if kind is TypeKind.BOOLEAN:
        if isinstance(value, bool):
            return value
        if isinstance(value, int):
            return bool(value)
        raise TypeCheckError(f"cannot coerce {value!r} to {sql_type}")
    raise TypeCheckError(f"unsupported type {sql_type}")


def sql_literal(value: Any) -> str:
    """Render a Python value as a SQL literal for remote query shipping."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, datetime.datetime):
        return f"'{value.isoformat(sep=' ')}'"
    if isinstance(value, datetime.date):
        return f"'{value.isoformat()}'"
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"
