"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``demo``     — the quickstart walkthrough (cached views, dynamic plans,
  transparent updates);
* ``scaleout`` — regenerate the paper's Figure 6 and summary table from
  calibrated cluster models;
* ``tpcw``     — run TPC-W traffic against backend and cache and report
  the work split;
* ``metrics``  — drive a short TPC-W workload and print the deployment's
  observability snapshot (metrics, caches, replication lag) as JSON;
* ``analyze``  — run the static-analysis passes (``--self`` AST lint,
  ``--workload`` SQL lint, ``--plans`` plan-invariant verification,
  ``--concurrency`` lock-order/atomicity/witness checks; all four when
  no flag is given);
* ``serve``    — boot a TCP network front end (``repro.net``) over a
  TPC-W cache deployment (or a minimal shop backend) and print the
  ``tcp://`` DSN clients dial with ``connect()`` / ``--dsn``.

These wrap the scripts under ``examples/`` so the package is runnable
after installation without a source checkout.
"""

from __future__ import annotations

import argparse
import sys


def _demo() -> None:
    from repro import MTCacheDeployment, Server

    backend = Server("backend")
    backend.create_database("shop")
    backend.execute(
        "CREATE TABLE customer (cid INT PRIMARY KEY, cname VARCHAR(40) NOT NULL)"
    )
    shop = backend.database("shop")
    shop.bulk_load("customer", [(i, f"cust{i}") for i in range(1, 2001)])
    shop.analyze_all()

    deployment = MTCacheDeployment(backend, "shop")
    cache = deployment.add_cache_server("cache1")
    cache.create_cached_view(
        "CREATE CACHED VIEW Cust1000 AS "
        "SELECT cid, cname FROM customer WHERE cid <= 1000"
    )
    query = "SELECT cid, cname FROM customer WHERE cid <= @cid"
    print("Dynamic plan (with cost annotations):\n")
    print(cache.plan(query).explain(costs=True))
    print()
    for value in (500, 1500):
        rows = cache.execute(query, params={"cid": value}).rows
        print(f"@cid={value:5d} -> {len(rows)} rows")
    cache.execute("UPDATE customer SET cname = 'RENAMED' WHERE cid = 1")
    deployment.clock.advance(1.0)
    deployment.sync()
    print(
        "after update + sync:",
        cache.execute("SELECT cname FROM Cust1000 WHERE cid = 1").scalar,
    )


def _scaleout() -> None:
    import runpy
    import pathlib

    script = pathlib.Path(__file__).resolve().parents[2] / "examples" / "scaleout_analysis.py"
    if script.exists():
        runpy.run_path(str(script), run_name="__main__")
        return
    # Installed without the examples directory: inline fallback.
    from repro.simulation import ClusterModel, ClusterSpec, calibrate
    from repro.tpcw import TPCWConfig

    config = TPCWConfig(num_items=200, num_ebs=40, bestseller_window=200)
    cached = ClusterModel(calibrate("cached", config, repetitions=6), ClusterSpec())
    for mix in ("Browsing", "Shopping", "Ordering"):
        curve = cached.curve(mix, 5)
        wips = ", ".join(f"{point.wips:.0f}" for point in curve)
        print(f"{mix:10s} WIPS(1..5 servers): {wips}")


def _tpcw() -> None:
    import random

    from repro.mtcache.odbc import OdbcSourceRegistry
    from repro.tpcw import MIXES, TPCWApplication, TPCWConfig, build_backend, enable_caching

    backend, config = build_backend(TPCWConfig(num_items=100, num_ebs=20))
    deployment, caches = enable_caching(backend, ["cache1"], config)
    registry = OdbcSourceRegistry()
    registry.register("tpcw", caches[0].server, "tpcw")
    application = TPCWApplication(registry.connect("tpcw"), config)
    rng = random.Random(1)
    sessions = [application.new_session() for _ in range(8)]
    mix = MIXES["Shopping"]
    backend.reset_work()
    caches[0].server.reset_work()
    for step in range(300):
        application.run(mix.sample(rng), sessions[step % 8])
        deployment.tick(0.02)
    deployment.sync()
    print(f"interactions: 300  db calls: {application.db_calls}")
    print(f"cache work:   {caches[0].server.total_work.rows_processed:,} row touches")
    print(f"backend work: {backend.total_work.rows_processed:,} row touches")
    latency = deployment.average_replication_latency()
    if latency is not None:
        print(f"replication latency: {latency:.2f}s")


def _metrics() -> None:
    import random

    from repro.mtcache.odbc import OdbcSourceRegistry
    from repro.obs.export import deployment_snapshot, to_json
    from repro.tpcw import MIXES, TPCWApplication, TPCWConfig, build_backend, enable_caching

    backend, config = build_backend(TPCWConfig(num_items=100, num_ebs=20))
    deployment, caches = enable_caching(backend, ["cache1"], config)
    registry = OdbcSourceRegistry()
    registry.register("tpcw", caches[0].server, "tpcw")
    application = TPCWApplication(registry.connect("tpcw"), config)
    rng = random.Random(1)
    sessions = [application.new_session() for _ in range(8)]
    mix = MIXES["Shopping"]
    for step in range(150):
        application.run(mix.sample(rng), sessions[step % 8])
        deployment.tick(0.02)
    deployment.sync()
    print(to_json(deployment_snapshot(deployment)))


def _serve(args) -> None:
    import threading
    import time

    from repro.net import ReproServer

    if args.serve_workload == "tpcw":
        from repro.tpcw import TPCWConfig, build_backend, enable_caching

        backend, config = build_backend(TPCWConfig(num_items=args.items, num_ebs=20))
        deployment, caches = enable_caching(backend, ["cache1"], config)
        target = caches[0]
        # Replication needs virtual time to flow while real clients talk
        # over real sockets: a ticker tracks elapsed wall time onto the
        # deployment clock (the ThreadedLoadDriver does the same).
        virtual_start = deployment.clock.now()
        wall_start = time.perf_counter()

        def tick() -> None:
            while True:
                time.sleep(0.05)
                deployment.clock.advance_to(
                    virtual_start + (time.perf_counter() - wall_start)
                )
                deployment.tick()

        threading.Thread(target=tick, name="repro-serve-ticker", daemon=True).start()
    else:  # shop: a bare backend, no cache tier
        from repro import Server

        backend = Server("backend")
        backend.create_database("shop")
        backend.execute(
            "CREATE TABLE customer (cid INT PRIMARY KEY, cname VARCHAR(40) NOT NULL)"
        )
        shop = backend.database("shop")
        shop.bulk_load("customer", [(i, f"cust{i}") for i in range(1, 1001)])
        shop.analyze_all()
        target = backend

    server = ReproServer.serve(
        target, host=args.host, port=args.port, max_connections=args.max_connections
    )
    # The exact line tests and scripts parse to find the ephemeral port.
    print(f"serving {server.dsn}", flush=True)
    server.serve_forever()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="MTCache reproduction (SIGMOD 2003) demos",
    )
    parser.add_argument(
        "command", choices=["demo", "scaleout", "tpcw", "metrics", "analyze", "serve"]
    )
    parser.add_argument(
        "--self",
        dest="self_lint",
        action="store_true",
        help="analyze: run only the repo AST lint pack",
    )
    parser.add_argument(
        "--workload",
        action="store_true",
        help="analyze: run only the workload SQL lint",
    )
    parser.add_argument(
        "--plans",
        action="store_true",
        help="analyze: run only the plan-invariant verifier",
    )
    parser.add_argument(
        "--concurrency",
        action="store_true",
        help="analyze: run only the concurrency lint (lock order, atomicity, witness)",
    )
    parser.add_argument(
        "--path",
        default=None,
        help="analyze --concurrency: static passes over this source tree "
        "instead of the installed package",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="serve: interface to bind"
    )
    parser.add_argument(
        "--port", type=int, default=0, help="serve: port (0 = ephemeral; DSN is printed)"
    )
    parser.add_argument(
        "--serve-workload",
        choices=["tpcw", "shop"],
        default="tpcw",
        help="serve: tpcw cache deployment (default) or a bare shop backend",
    )
    parser.add_argument(
        "--items", type=int, default=100, help="serve: TPC-W item count"
    )
    parser.add_argument(
        "--max-connections",
        type=int,
        default=64,
        help="serve: accept limit before shedding with OverloadError",
    )
    args = parser.parse_args(argv)
    if args.command == "serve":
        _serve(args)
        return 0
    if args.command == "analyze":
        from repro.analysis.cli import run_analyze

        return run_analyze(
            self_lint=args.self_lint,
            workload=args.workload,
            plans=args.plans,
            concurrency=args.concurrency,
            path=args.path,
        )
    {"demo": _demo, "scaleout": _scaleout, "tpcw": _tpcw, "metrics": _metrics}[
        args.command
    ]()
    return 0


if __name__ == "__main__":
    sys.exit(main())
