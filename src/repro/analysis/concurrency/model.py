"""The modeled lock hierarchy shared by the static and runtime checks.

The levels themselves live in :mod:`repro.common.witness` (the runtime
source of truth — the witness must classify locks without importing the
analysis package); this module adds the *judgments*: which edges the
hierarchy allows, and cycle detection over an observed or modeled
acquisition graph.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.witness import (  # noqa: F401  (re-exported for the passes)
    LEVEL_LATCH,
    LEVEL_LEAF,
    LEVEL_NAMES,
    LEVEL_OUTER,
    LEVEL_SPAN,
    LEVEL_TABLE,
    OUTER_SUBPACKAGES,
    level_for_site,
)


def allowed_edge(
    from_level: int, to_level: int, same_class: bool, ordered: bool
) -> bool:
    """May a lock at ``to_level`` be acquired while ``from_level`` is held?

    Descending (``to > from``) is always legal; sideways (equal levels,
    distinct classes) is legal *locally* but must be globally acyclic
    (checked by :func:`find_cycle`); a second instance of the same class
    is legal only for ordered classes (table locks, sorted batch).
    """
    if same_class:
        return ordered
    return to_level >= from_level


def find_cycle(
    edges: Iterable[Tuple[str, str]],
    ordered_classes: Optional[Iterable[str]] = None,
) -> Optional[List[str]]:
    """A cycle in the acquisition graph, as a key path, or None.

    Self-loops on ordered classes are sanctioned (intra-class order
    exists) and skipped; any other cycle is a potential deadlock.
    """
    sanctioned = set(ordered_classes or ())
    graph: Dict[str, List[str]] = {}
    for source, target in edges:
        if source == target and source in sanctioned:
            continue
        graph.setdefault(source, []).append(target)
        graph.setdefault(target, [])

    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}
    for start in sorted(graph):
        if color[start] != WHITE:
            continue
        path: List[str] = []
        stack: List[Tuple[str, int]] = [(start, 0)]
        color[start] = GRAY
        path.append(start)
        while stack:
            node, index = stack[-1]
            targets = graph[node]
            if index < len(targets):
                stack[-1] = (node, index + 1)
                target = targets[index]
                if color[target] == GRAY:
                    return path[path.index(target) :] + [target]
                if color[target] == WHITE:
                    color[target] = GRAY
                    path.append(target)
                    stack.append((target, 0))
            else:
                color[node] = BLACK
                path.pop()
                stack.pop()
    return None
