"""EXPLAIN statement tests."""

import pytest

from repro import MTCacheDeployment
from repro.errors import ParseError

from tests.conftest import make_shop_backend


@pytest.fixture(scope="module")
def env():
    backend = make_shop_backend(customers=60, orders=60)
    deployment = MTCacheDeployment(backend, "shop")
    cache = deployment.add_cache_server("explain_cache")
    cache.create_cached_view(
        "CREATE CACHED VIEW ec AS SELECT cid, cname FROM customer WHERE cid <= 30"
    )
    return backend, cache


def test_explain_returns_plan_rows(env):
    backend, _ = env
    result = backend.execute("EXPLAIN SELECT cname FROM customer WHERE cid = 3", database="shop")
    text = "\n".join(row[0] for row in result.rows)
    assert "IndexSeek" in text
    assert result.schema.names == ["plan"]


def test_explain_costs_annotates(env):
    backend, _ = env
    result = backend.execute(
        "EXPLAIN COSTS SELECT cname FROM customer WHERE cid <= 10", database="shop"
    )
    text = "\n".join(row[0] for row in result.rows)
    assert "cost=" in text


def test_explain_shows_dynamic_plans_on_cache(env):
    _, cache = env
    result = cache.execute("EXPLAIN SELECT cid, cname FROM customer WHERE cid <= @c")
    text = "\n".join(row[0] for row in result.rows)
    assert "ChoosePlan" in text
    assert "RemoteQuery" in text


def test_explain_does_not_execute(env):
    backend, _ = env
    before = backend.execute("SELECT COUNT(*) FROM customer", database="shop").scalar
    backend.execute(
        "EXPLAIN SELECT COUNT(*) FROM customer WHERE cid < 5", database="shop"
    )
    assert (
        backend.execute("SELECT COUNT(*) FROM customer", database="shop").scalar
        == before
    )


def test_explain_non_select_rejected(env):
    backend, _ = env
    with pytest.raises(ParseError):
        backend.execute("EXPLAIN UPDATE customer SET cname = 'x'", database="shop")
