"""Crash recovery: rebuild table state by redoing the WAL.

The WAL stores full before/after row images for every logged change and
COMMIT/ABORT markers per transaction, so a crashed database's state is
reconstructible by redoing committed transactions in log order — the same
property the replication log reader relies on. Uncommitted and aborted
work is naturally excluded (its COMMIT never made the log).

Scope note: :meth:`~repro.engine.database.Database.bulk_load` deliberately
bypasses the WAL (initial population happens before anyone depends on the
log), so recovery applies on top of whatever baseline the caller restores
first — recover into an empty schema for fully-logged databases, or
re-run the bulk load and then redo the log.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import ExecutionError
from repro.storage.table import Table
from repro.storage.wal import LogRecordType, WriteAheadLog


def _locate(table: Table, row: Tuple) -> Optional[int]:
    """Find a row by unique index, falling back to full-image match."""
    for index in table.indexes.values():
        if index.unique:
            key = tuple(row[position] for position in index.positions)
            rids = index.seek(key)
            return rids[0] if rids else None
    for rid, existing in table.rows.items():
        if existing == row:
            return rid
    return None


def replay_wal(database, wal: Optional[WriteAheadLog] = None) -> int:
    """Redo every committed transaction from ``wal`` into ``database``.

    The database must contain the schema (tables and indexes); its storage
    is updated in place. Returns the number of changes applied. Typically
    called on a freshly created database whose DDL has been re-run, with
    the surviving WAL of the crashed instance.
    """
    wal = wal or database.wal
    applied = 0
    for commit_record, changes in wal.committed_transactions(0):
        for record in changes:
            if record.table is None:
                continue
            table = database.storage_table(record.table)
            if record.record_type is LogRecordType.INSERT:
                table.insert(record.new_row)
            elif record.record_type is LogRecordType.DELETE:
                rid = _locate(table, record.old_row)
                if rid is None:
                    raise ExecutionError(
                        f"recovery: row to delete not found in {record.table!r}"
                    )
                table.delete_rid(rid)
            else:  # UPDATE
                rid = _locate(table, record.old_row)
                if rid is None:
                    raise ExecutionError(
                        f"recovery: row to update not found in {record.table!r}"
                    )
                table.update_rid(rid, record.new_row)
            applied += 1
    return applied
