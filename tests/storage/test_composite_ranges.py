"""Composite-index range scans: prefix bounds vs brute force.

Regression guard for the prefix-upper-bound bug: a high bound shorter than
the index key must cover every key sharing the prefix (``(1,)`` as a high
bound must include ``(1, 4)``).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.schema import Column, Schema
from repro.common.types import INT
from repro.storage.table import Table


def make_table(pairs):
    schema = Schema(
        [
            Column("a", INT, nullable=False),
            Column("b", INT, nullable=False),
            Column("payload", INT),
        ]
    )
    table = Table("t", schema)
    table.create_index("ix_ab", ["a", "b"])
    for position, (a, b) in enumerate(pairs):
        table.insert((a, b, position))
    return table


def scan(table, low=None, high=None, low_inclusive=True, high_inclusive=True):
    index = table.indexes["ix_ab"]
    return sorted(
        table.rows[rid][:2]
        for rid in index.range_scan(low, high, low_inclusive, high_inclusive)
    )


class TestPrefixBounds:
    def setup_method(self):
        self.table = make_table([(a, b) for a in range(3) for b in range(4)])

    def test_full_prefix_high_bound_covers_group(self):
        assert scan(self.table, low=(1,), high=(1,)) == [
            (1, 0), (1, 1), (1, 2), (1, 3),
        ]

    def test_prefix_with_high_component(self):
        assert scan(self.table, low=(1, 2), high=(1,)) == [(1, 2), (1, 3)]

    def test_prefix_with_low_and_high_components(self):
        assert scan(self.table, low=(1, 1), high=(1, 2)) == [(1, 1), (1, 2)]

    def test_exclusive_low_component(self):
        assert scan(self.table, low=(1, 1), high=(1,), low_inclusive=False) == [
            (1, 2), (1, 3),
        ]

    def test_short_exclusive_high_is_strict_prefix_cut(self):
        # Exclusive high (1,) excludes everything with prefix >= (1,...).
        assert scan(self.table, low=(0,), high=(1,), high_inclusive=False) == [
            (0, 0), (0, 1), (0, 2), (0, 3),
        ]


@settings(max_examples=80, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 4)), min_size=0, max_size=40
    ),
    a_low=st.integers(0, 4),
    b_bound=st.one_of(st.none(), st.integers(0, 4)),
    direction=st.sampled_from(["<=", ">="]),
)
def test_property_prefix_range_matches_bruteforce(pairs, a_low, b_bound, direction):
    table = make_table(pairs)
    if b_bound is None:
        got = scan(table, low=(a_low,), high=(a_low,))
        expected = sorted((a, b) for a, b in pairs if a == a_low)
    elif direction == "<=":
        got = scan(table, low=(a_low,), high=(a_low, b_bound))
        expected = sorted((a, b) for a, b in pairs if a == a_low and b <= b_bound)
    else:
        got = scan(table, low=(a_low, b_bound), high=(a_low,))
        expected = sorted((a, b) for a, b in pairs if a == a_low and b >= b_bound)
    assert got == expected
