"""E2 — §6.2.2 replication overhead.

Paper (Ordering workload):

* backend: log reader on -> 283 WIPS, off -> 311 WIPS (~10 % reduction);
* an idle middle-tier machine spends ~15 % CPU applying the change stream
  when the backend is saturated.

Reproduced two ways: analytically from the calibrated demands, and by
running the real engines with the log reader toggled and measuring the
actual extra backend work.
"""

import random


from repro.mtcache.odbc import OdbcConnection
from repro.tpcw import TPCWApplication, TPCWConfig, build_backend, enable_caching
from repro.tpcw.workload import MIXES

from benchmarks.conftest import emit


def test_bench_logreader_throughput_cost(cal_nocache, cal_cached, spec, benchmark, capsys):
    """Backend-bound throughput with and without the log reader.

    Experiment 2's setup saturates the backend (caches replicate but do
    not serve queries), so the workload demand on the backend is the
    no-cache demand; replication adds the log reader's per-command work.
    """
    _, backend_demand, _ = cal_nocache.mix_demand(MIXES["Ordering"])
    _, _, commands = cal_cached.mix_demand(MIXES["Ordering"])
    logreader_demand = commands * spec.logreader_work_per_command

    capacity = spec.backend_cpus * spec.utilization_target * spec.cpu_capacity
    wips_on = capacity / (backend_demand + logreader_demand)
    wips_off = capacity / backend_demand
    ratio = wips_on / wips_off

    apply_demand = commands * spec.apply_work_per_command
    idle_cache_cpu = wips_on * apply_demand / spec.cpu_capacity

    emit(
        capsys,
        "E2: replication overhead (Ordering, backend saturated)",
        [
            f"log reader ON : {wips_on:7.1f} WIPS   (paper: 283)",
            f"log reader OFF: {wips_off:7.1f} WIPS   (paper: 311)",
            f"throughput ratio on/off: {ratio:.3f}   (paper: 283/311 = 0.91)",
            f"idle cache machine CPU from applying: {idle_cache_cpu:.1%}   (paper: ~15 %)",
        ],
    )
    # Shape: overhead exists but is small (<= ~20 % throughput, <= ~25 % CPU).
    assert 0.8 <= ratio < 1.0
    assert 0.0 < idle_cache_cpu <= 0.25

    benchmark(lambda: cal_cached.mix_demand(MIXES["Ordering"]))


def test_bench_logreader_measured_engine_work(benchmark, capsys):
    """Measure the log reader's actual work on real engines: run the same
    Ordering traffic with the reader on and off and compare the backend's
    replication scan volume."""
    config = TPCWConfig(num_items=100, num_ebs=20, bestseller_window=100)
    backend, config = build_backend(config)
    deployment, caches = enable_caching(backend, ["c1"], config)
    connection = OdbcConnection(backend, "tpcw", "dbo")
    application = TPCWApplication(connection, config, random.Random(2))
    mix = MIXES["Ordering"]
    rng = random.Random(3)
    sessions = [application.new_session() for _ in range(4)]

    def drive(steps):
        for step in range(steps):
            application.run(mix.sample(rng), sessions[step % 4])
            deployment.tick(0.05)

    deployment.set_log_reader_enabled(True)
    before = deployment.log_reader.records_scanned
    drive(60)
    scanned_on = deployment.log_reader.records_scanned - before

    deployment.set_log_reader_enabled(False)
    before = deployment.log_reader.records_scanned
    drive(60)
    scanned_off = deployment.log_reader.records_scanned - before

    emit(
        capsys,
        "E2 (engine-level): log records scanned per 60 Ordering interactions",
        [f"reader on: {scanned_on}", f"reader off: {scanned_off}"],
    )
    assert scanned_on > 0
    assert scanned_off == 0

    deployment.set_log_reader_enabled(True)
    benchmark(lambda: deployment.sync())
