"""DSN grammar, the inproc registry, and the connect() redesign."""

from __future__ import annotations

import pytest

from repro.client import connect
from repro.errors import DsnError
from repro.net import (
    DEFAULT_PORT,
    parse_dsn,
    register_inproc,
    resolve_inproc,
    unregister_inproc,
)
from tests.conftest import make_shop_backend


class TestParseDsn:
    def test_tcp_full(self):
        dsn = parse_dsn("tcp://db.example.com:9999/tpcw?timeout=2.5&fetch_rows=64")
        assert dsn.scheme == "tcp"
        assert dsn.host == "db.example.com"
        assert dsn.port == 9999
        assert dsn.database == "tpcw"
        assert dsn.timeout == 2.5
        assert dsn.fetch_rows == 64
        assert dsn.principal is None

    def test_tcp_port_defaults(self):
        assert parse_dsn("tcp://localhost/shop").port == DEFAULT_PORT

    def test_inproc_key_joins_path(self):
        dsn = parse_dsn("inproc://deployment/cache0")
        assert dsn.scheme == "inproc"
        assert dsn.inproc_key == "deployment/cache0"
        assert parse_dsn("inproc://cache0").inproc_key == "cache0"

    def test_principal_param(self):
        assert parse_dsn("tcp://h/d?principal=web").principal == "web"

    @pytest.mark.parametrize(
        "bad, fragment",
        [
            ("just-a-name", "not a DSN"),
            ("http://h/d", "unknown DSN scheme"),
            ("tcp:///shop", "missing a host"),
            ("inproc://", "missing a registry name"),
            ("tcp://h:notaport/d", "invalid port"),
            ("inproc://name:123", "cannot carry a port"),
            ("tcp://h/a/b", "multi-segment path"),
            ("tcp://h/d?bogus=1", "unknown DSN parameter"),
            ("tcp://h/d?timeout=", "has no value"),
            ("tcp://h/d?timeout=fast", "is not a number"),
            ("tcp://h/d?fetch_rows=many", "is not a number"),
        ],
    )
    def test_precise_errors(self, bad, fragment):
        with pytest.raises(DsnError, match=fragment):
            parse_dsn(bad)


class TestInprocRegistry:
    def test_register_resolve_unregister(self):
        sentinel = object()
        register_inproc("t/dsn-suite", sentinel, database="shop")
        try:
            target, database = resolve_inproc("t/dsn-suite")
            assert target is sentinel
            assert database == "shop"
        finally:
            unregister_inproc("t/dsn-suite")
        with pytest.raises(DsnError, match="no inproc target registered"):
            resolve_inproc("t/dsn-suite")

    def test_unknown_key_lists_known_names(self):
        register_inproc("t/known-one", object())
        try:
            with pytest.raises(DsnError, match="t/known-one"):
                resolve_inproc("t/missing")
        finally:
            unregister_inproc("t/known-one")

    def test_empty_name_rejected(self):
        with pytest.raises(DsnError, match="empty name"):
            register_inproc("///", object())  # strips to nothing


class TestConnectRedesign:
    def test_plain_object_back_compat(self):
        backend = make_shop_backend()
        connection = connect(backend, database="shop")
        try:
            rows = connection.cursor().execute(
                "SELECT cid FROM customer WHERE cid <= 3"
            ).fetchall()
            assert len(rows) == 3
        finally:
            connection.close()

    def test_inproc_dsn_resolves_registered_target(self):
        backend = make_shop_backend()
        register_inproc("t/shop0", backend, database="shop")
        try:
            connection = connect("inproc://t/shop0")
            assert connection.database == "shop"
            row = connection.cursor().execute(
                "SELECT cname FROM customer WHERE cid = 1"
            ).fetchone()
            assert row == ("cust1",)
            # close() must NOT tear down the shared registered target
            connection.close()
            assert connect("inproc://t/shop0").healthy()
        finally:
            unregister_inproc("t/shop0")

    def test_database_argument_deprecated_when_dsn_has_path(self):
        backend = make_shop_backend()
        register_inproc("t/depr", backend)
        register_inproc("t/depr/shop", backend, database="shop")
        try:
            with pytest.warns(DeprecationWarning, match="already\\s+carries"):
                connection = connect("inproc://t/depr/shop", database="other")
            # The DSN wins: the registered default database is used.
            assert connection.database == "shop"
        finally:
            unregister_inproc("t/depr")
            unregister_inproc("t/depr/shop")

    def test_unknown_inproc_target_is_a_dsn_error(self):
        with pytest.raises(DsnError, match="no inproc target registered"):
            connect("inproc://never/registered")
