"""Shared value model: SQL types, schemas, rows and the simulated clock."""

from repro.common.types import (
    SqlType,
    TypeKind,
    INT,
    BIGINT,
    FLOAT,
    NUMERIC,
    VARCHAR,
    CHAR,
    DATE,
    DATETIME,
    BOOLEAN,
    coerce_value,
    common_type,
    is_numeric,
    sql_literal,
)
from repro.common.schema import Column, Schema
from repro.common.clock import SimulatedClock
from repro.common.lru import CacheStats, LRUCache

__all__ = [
    "SqlType",
    "TypeKind",
    "INT",
    "BIGINT",
    "FLOAT",
    "NUMERIC",
    "VARCHAR",
    "CHAR",
    "DATE",
    "DATETIME",
    "BOOLEAN",
    "coerce_value",
    "common_type",
    "is_numeric",
    "sql_literal",
    "Column",
    "Schema",
    "SimulatedClock",
    "CacheStats",
    "LRUCache",
]
