"""Freshness requirements and a routing tour.

Demonstrates two things:

1. the paper's *future-work* SQL extension — a freshness clause
   (``WITH FRESHNESS n SECONDS``) that tells the optimizer how stale a
   result may be, letting it use cached data only when replication lag is
   within bounds;
2. how the cost-based router decides between the cache and the backend for
   a spectrum of queries (covered / partially covered / uncovered /
   parameterized).

Run:  python examples/freshness_and_routing.py
"""

from repro import MTCacheDeployment, Server


def build() -> tuple:
    backend = Server("backend")
    backend.create_database("shop")
    backend.execute(
        """
        CREATE TABLE product (
            pid INT PRIMARY KEY,
            name VARCHAR(40) NOT NULL,
            price FLOAT,
            category VARCHAR(20)
        );
        CREATE INDEX ix_product_category ON product (category);
        """
    )
    shop = backend.database("shop")
    shop.bulk_load(
        "product",
        [
            (i, f"product{i}", round(i * 1.1, 2), f"cat{i % 10}")
            for i in range(1, 1001)
        ],
    )
    shop.analyze_all()
    deployment = MTCacheDeployment(backend, "shop")
    cache = deployment.add_cache_server("cache1")
    cache.create_cached_view(
        "CREATE CACHED VIEW HotProducts AS "
        "SELECT pid, name, price FROM product WHERE pid <= 500"
    )
    return backend, deployment, cache


def main() -> None:
    backend, deployment, cache = build()

    # --- Routing tour ---------------------------------------------------------
    tour = [
        ("covered point query", "SELECT name FROM product WHERE pid = 10"),
        ("covered range query", "SELECT name FROM product WHERE pid BETWEEN 5 AND 50"),
        ("uncovered column", "SELECT category FROM product WHERE pid = 10"),
        ("uncovered range", "SELECT name FROM product WHERE pid > 900"),
        ("parameterized (dynamic plan)", "SELECT name, price FROM product WHERE pid <= @p"),
    ]
    for label, sql in tour:
        planned = cache.plan(sql)
        route = "DYNAMIC" if planned.is_dynamic else (
            "REMOTE" if planned.uses_remote else "LOCAL"
        )
        print(f"[{route:7s}] {label}")
        print("    " + planned.explain().replace("\n", "\n    "))
        print()

    # --- Freshness ------------------------------------------------------------
    print("Freshness demo:")
    deployment.sync()
    backend.execute(
        "UPDATE product SET price = 999.0 WHERE pid = 10", database="shop"
    )
    deployment.clock.advance(120.0)  # two minutes pass without replication

    relaxed = cache.execute(
        "SELECT price FROM product WHERE pid = 10 WITH FRESHNESS 10 MINUTES"
    )
    strict = cache.execute(
        "SELECT price FROM product WHERE pid = 10 WITH FRESHNESS 30 SECONDS"
    )
    print(f"  staleness bound 10 min -> price {relaxed.scalar}  (stale cache allowed)")
    print(f"  staleness bound 30 s   -> price {strict.scalar}  (forced to backend)")

    deployment.sync()
    after = cache.execute(
        "SELECT price FROM product WHERE pid = 10 WITH FRESHNESS 30 SECONDS"
    )
    print(f"  after replication sync -> price {after.scalar}  (cache fresh again)")


if __name__ == "__main__":
    main()
