"""A bounded connection pool with checkout timeout and health checks.

The pool owns up to ``size`` connections created by a ``connect``
callable. Checkout order: an idle connection if one exists, else a new
connection if the pool is not at capacity, else wait on a condition
variable until a release — up to ``checkout_timeout`` wall-clock seconds,
after which :class:`~repro.errors.PoolTimeoutError` is raised (it is
``transient``, so callers may shed load or retry).

On checkout the connection is health-checked via its ``healthy()`` probe
(PR-4 machinery: ``Server.available``, ``CacheServer.healthy``). An
unhealthy connection is closed and replaced once; if the replacement is
*still* unhealthy it is handed out anyway — the statement will fail with
a transient error that the resilience layer (retry policies, failover
routers) already knows how to handle, which beats the pool spinning.

Pool telemetry lives in a metrics registry (default: the process-global
one): gauge ``client.pool_in_use``, histogram ``client.checkout_wait``,
counters ``client.checkouts`` / ``client.checkout_timeouts`` /
``client.unhealthy_checkouts``.

Wall-clock time is correct here (unlike the simulation layers): the
timeout bounds how long a *real* thread blocks.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, List, Optional

from repro.client.connection import Connection
from repro.common.locks import condition
from repro.errors import ClientError, OverloadError, PoolTimeoutError

#: Checkout-wait histogram buckets (seconds): sub-millisecond uncontended
#: checkouts up through multi-second waits near the timeout.
WAIT_BUCKETS = (0.0001, 0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0)


class ConnectionPool:
    """A bounded pool of :class:`~repro.client.connection.Connection`."""

    def __init__(
        self,
        connect: Callable[[], Connection],
        size: int = 8,
        checkout_timeout: float = 5.0,
        health_check: bool = True,
        registry: Optional[Any] = None,
        max_waiters: Optional[int] = None,
        admission: Optional[Any] = None,
    ):
        if size < 1:
            raise ValueError(f"pool size must be >= 1, not {size}")
        if max_waiters is not None and max_waiters < 0:
            raise ValueError(f"max_waiters must be >= 0, not {max_waiters}")
        self._connect = connect
        self.size = size
        self.checkout_timeout = checkout_timeout
        self.health_check = health_check
        #: Bounded checkout queue (PR 9): with ``max_waiters`` set, a
        #: checkout that would become waiter number ``max_waiters + 1``
        #: is shed immediately with transient ``OverloadError`` instead
        #: of joining an ever-deeper queue to time out later. ``None``
        #: keeps the pre-PR-9 behavior (bounded only by the timeout).
        self.max_waiters = max_waiters
        #: Optional token-bucket admission gate consulted before any
        #: pool bookkeeping (repro.resilience.overload).
        self.admission = admission
        if registry is None:
            from repro.obs.metrics import global_registry

            registry = global_registry()
        self._in_use_gauge = registry.gauge("client.pool_in_use")
        self._wait_histogram = registry.histogram("client.checkout_wait", buckets=WAIT_BUCKETS)
        self._checkouts = registry.counter("client.checkouts")
        self._timeouts = registry.counter("client.checkout_timeouts")
        self._unhealthy = registry.counter("client.unhealthy_checkouts")
        self._shed_counter = registry.counter("overload.pool_shed")
        self._waiters_gauge = registry.gauge("overload.pool_waiters")
        self._cond = condition()
        self._idle: List[Connection] = []
        self._created = 0  # connections alive (idle + checked out)
        self._checked_out = 0
        self._waiters = 0
        self.shed = 0
        self.closed = False

    # -- checkout / release --------------------------------------------------

    def acquire(self, timeout: Optional[float] = None) -> Connection:
        """Check out a connection (health-checked); see module docstring.

        With an admission controller attached, checkout must be admitted
        first; with ``max_waiters`` set, a checkout finding the waiter
        queue full is shed immediately — both fail fast with transient
        :class:`~repro.errors.OverloadError` rather than queuing.
        """
        if self.admission is not None:
            self.admission.admit("pool checkout")
        budget = self.checkout_timeout if timeout is None else timeout
        started = time.perf_counter()
        connection: Optional[Connection] = None
        must_create = False
        waiting = False
        with self._cond:
            if self.closed:
                raise ClientError("pool is closed")
            try:
                while True:
                    if self._idle:
                        connection = self._idle.pop()
                        break
                    if self._created < self.size:
                        # Reserve the slot now; create outside the lock.
                        self._created += 1
                        must_create = True
                        break
                    if (
                        not waiting
                        and self.max_waiters is not None
                        and self._waiters >= self.max_waiters
                    ):
                        self.shed += 1
                        self._shed_counter.inc()
                        raise OverloadError(
                            f"pool overloaded: {self._waiters} checkouts already "
                            f"waiting (max_waiters={self.max_waiters}, "
                            f"size={self.size})"
                        )
                    if not waiting:
                        waiting = True
                        self._waiters += 1
                        self._waiters_gauge.set(float(self._waiters))
                    remaining = budget - (time.perf_counter() - started)
                    if remaining <= 0 or not self._cond.wait(remaining):
                        self._timeouts.inc()
                        raise PoolTimeoutError(
                            f"no connection available within {budget:.3f}s "
                            f"(size={self.size}, in_use={self._checked_out})"
                        )
                    if self.closed:
                        raise ClientError("pool is closed")
            finally:
                if waiting:
                    self._waiters -= 1
                    self._waiters_gauge.set(float(self._waiters))
        try:
            if must_create:
                connection = self._connect()
            elif self.health_check and not connection.healthy():
                # Replace the unhealthy connection once; if the fresh one
                # is unhealthy too (whole target down), hand it out anyway
                # and let the resilience layer deal with the failure.
                self._unhealthy.inc()
                self._safe_close(connection)
                connection = self._connect()
        except BaseException:
            with self._cond:
                self._created -= 1
                self._cond.notify()
            raise
        self._wait_histogram.observe(time.perf_counter() - started)
        self._checkouts.inc()
        with self._cond:
            self._checked_out += 1
            self._in_use_gauge.set(float(self._checked_out))
        return connection

    def release(self, connection: Connection) -> None:
        """Return a connection to the pool.

        Any transaction still open is rolled back — a pooled connection
        must never carry transaction state (or an exclusive database
        latch) into its next checkout.
        """
        try:
            connection.rollback()
        except Exception:
            self._safe_close(connection)
            connection = None  # type: ignore[assignment]
        with self._cond:
            self._checked_out = max(0, self._checked_out - 1)
            self._in_use_gauge.set(float(self._checked_out))
            if connection is None or connection.closed or self.closed:
                self._created = max(0, self._created - 1)
                if connection is not None and self.closed:
                    self._safe_close(connection)
            else:
                self._idle.append(connection)
            self._cond.notify()

    @contextmanager
    def connection(self, timeout: Optional[float] = None) -> Iterator[Connection]:
        """``with pool.connection() as conn:`` checkout/release block."""
        connection = self.acquire(timeout=timeout)
        try:
            yield connection
        finally:
            self.release(connection)

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Close the pool and every idle connection. Connections checked
        out at close time are closed on release."""
        with self._cond:
            self.closed = True
            idle, self._idle = self._idle, []
            self._created -= len(idle)
            self._cond.notify_all()
        for connection in idle:
            self._safe_close(connection)

    @staticmethod
    def _safe_close(connection: Optional[Connection]) -> None:
        if connection is None:
            return
        try:
            connection.close()
        except Exception:
            pass  # a failing rollback on a dead target is not a leak

    # -- introspection -----------------------------------------------------------

    @property
    def in_use(self) -> int:
        return self._checked_out

    @property
    def idle(self) -> int:
        return len(self._idle)

    def __repr__(self) -> str:
        return (
            f"<ConnectionPool size={self.size} in_use={self._checked_out} "
            f"idle={len(self._idle)} closed={self.closed}>"
        )
