"""Heap tables with secondary B+-tree indexes.

A :class:`Table` stores rows as tuples keyed by a monotonically increasing
row id. Primary keys are enforced through a unique index. Index maintenance
happens inside insert/update/delete so scans and seeks are always
consistent with the heap.

Tables also keep *work counters* (rows read/written) which the cluster
simulator uses to calibrate CPU service demands for the TPC-W experiments.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.common.schema import Schema
from repro.common.types import coerce_value
from repro.errors import ConstraintError, ExecutionError
from repro.storage.btree import PREFIX_SENTINEL, BPlusTree, encode_key


class SecondaryIndex:
    """A (possibly unique) B+-tree index over a subset of table columns."""

    def __init__(self, name: str, table: "Table", column_names: Sequence[str], unique: bool = False):
        self.name = name
        self.table = table
        self.column_names = tuple(column_names)
        self.positions = tuple(table.schema.resolve(name) for name in column_names)
        self.unique = unique
        self.tree = BPlusTree()

    def key_for(self, row: Tuple) -> Tuple:
        """Extract and encode this index's key from a heap row."""
        return encode_key(tuple(row[position] for position in self.positions))

    def insert(self, rid: int, row: Tuple) -> None:
        key = self.key_for(row)
        if self.unique:
            existing = self.tree.get(key)
            if existing:
                values = tuple(row[position] for position in self.positions)
                raise ConstraintError(
                    f"duplicate key {values!r} in unique index {self.name!r}"
                )
        self.tree.insert(key, rid)

    def delete(self, rid: int, row: Tuple) -> None:
        self.tree.delete(self.key_for(row), rid)

    def seek(self, values: Sequence[Any]) -> List[int]:
        """Return rids whose key equals the given values exactly."""
        return self.tree.get(encode_key(tuple(values)))

    def seek_prefix(self, values: Sequence[Any]) -> Iterator[int]:
        """Yield rids whose key starts with the given prefix values."""
        for _, rid in self.tree.scan_prefix(encode_key(tuple(values))):
            yield rid

    def range_scan(
        self,
        low: Optional[Sequence[Any]] = None,
        high: Optional[Sequence[Any]] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[int]:
        """Yield rids with keys inside the given bound, in key order.

        Bounds shorter than the index key act as *prefix* bounds: a short
        low bound naturally sorts before every key sharing the prefix, and
        a short high bound is padded with a sentinel so it sorts after
        them (otherwise ``(1,) < (1, x)`` would exclude the whole prefix).
        """
        low_key = encode_key(tuple(low)) if low is not None else None
        high_key = encode_key(tuple(high)) if high is not None else None
        if (
            high_key is not None
            and high_inclusive
            and len(high_key) < len(self.column_names)
        ):
            padding = len(self.column_names) - len(high_key)
            high_key = high_key + (PREFIX_SENTINEL,) * padding
        for _, rid in self.tree.scan(low_key, high_key, low_inclusive, high_inclusive):
            yield rid

    def __repr__(self) -> str:
        unique = "unique " if self.unique else ""
        return f"<{unique}index {self.name} on ({', '.join(self.column_names)})>"


class Table:
    """An in-memory heap table with schema, PK enforcement and indexes."""

    def __init__(self, name: str, schema: Schema, primary_key: Sequence[str] = ()):
        self.name = name
        self.schema = schema
        self.primary_key = tuple(primary_key)
        self.rows: Dict[int, Tuple] = {}
        self.indexes: Dict[str, SecondaryIndex] = {}
        self._rid_counter = itertools.count(1)
        self.rows_read = 0
        self.rows_written = 0
        if self.primary_key:
            self.create_index(f"pk_{name}", self.primary_key, unique=True)

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def row_count(self) -> int:
        return len(self.rows)

    def create_index(self, name: str, column_names: Sequence[str], unique: bool = False) -> SecondaryIndex:
        """Create an index and backfill it from existing rows."""
        if name in self.indexes:
            raise ConstraintError(f"index {name!r} already exists on {self.name!r}")
        index = SecondaryIndex(name, self, column_names, unique)
        for rid, row in self.rows.items():
            index.insert(rid, row)
        self.indexes[name] = index
        return index

    def drop_index(self, name: str) -> None:
        if name not in self.indexes:
            raise ConstraintError(f"no index {name!r} on {self.name!r}")
        del self.indexes[name]

    def find_index(self, column_names: Sequence[str]) -> Optional[SecondaryIndex]:
        """Return an index whose leading columns match ``column_names``."""
        wanted = tuple(name.lower() for name in column_names)
        for index in self.indexes.values():
            leading = tuple(name.lower() for name in index.column_names[: len(wanted)])
            if leading == wanted:
                return index
        return None

    def _coerce_row(self, values: Sequence[Any]) -> Tuple:
        if len(values) != len(self.schema):
            raise ExecutionError(
                f"row arity {len(values)} does not match table {self.name!r} "
                f"({len(self.schema)} columns)"
            )
        coerced = []
        for value, column in zip(values, self.schema):
            coerced_value = coerce_value(value, column.sql_type)
            if coerced_value is None and not column.nullable:
                raise ConstraintError(
                    f"column {column.name!r} of {self.name!r} is NOT NULL"
                )
            coerced.append(coerced_value)
        return tuple(coerced)

    def insert(self, values: Sequence[Any]) -> int:
        """Insert one row; returns its rid. Enforces PK/unique constraints."""
        row = self._coerce_row(values)
        rid = next(self._rid_counter)
        inserted: List[SecondaryIndex] = []
        try:
            for index in self.indexes.values():
                index.insert(rid, row)
                inserted.append(index)
        except ConstraintError:
            for index in inserted:
                index.delete(rid, row)
            raise
        self.rows[rid] = row
        self.rows_written += 1
        return rid

    def insert_with_rid(self, rid: int, values: Sequence[Any]) -> int:
        """Re-insert a row under a specific rid (transaction undo path)."""
        if rid in self.rows:
            raise ExecutionError(f"rid {rid} already present in {self.name!r}")
        row = self._coerce_row(values)
        inserted: List[SecondaryIndex] = []
        try:
            for index in self.indexes.values():
                index.insert(rid, row)
                inserted.append(index)
        except ConstraintError:
            for index in inserted:
                index.delete(rid, row)
            raise
        self.rows[rid] = row
        self.rows_written += 1
        return rid

    def delete_rid(self, rid: int) -> Tuple:
        """Delete the row with the given rid, returning the old row."""
        row = self.rows.pop(rid, None)
        if row is None:
            raise ExecutionError(f"no row {rid} in table {self.name!r}")
        for index in self.indexes.values():
            index.delete(rid, row)
        self.rows_written += 1
        return row

    def update_rid(self, rid: int, values: Sequence[Any]) -> Tuple[Tuple, Tuple]:
        """Replace the row at ``rid``; returns (old_row, new_row)."""
        old_row = self.rows.get(rid)
        if old_row is None:
            raise ExecutionError(f"no row {rid} in table {self.name!r}")
        new_row = self._coerce_row(values)
        for index in self.indexes.values():
            index.delete(rid, old_row)
        try:
            touched: List[SecondaryIndex] = []
            for index in self.indexes.values():
                index.insert(rid, new_row)
                touched.append(index)
        except ConstraintError:
            for index in touched:
                index.delete(rid, new_row)
            for index in self.indexes.values():
                index.insert(rid, old_row)
            raise
        self.rows[rid] = new_row
        self.rows_written += 1
        return old_row, new_row

    def scan(self) -> Iterator[Tuple[int, Tuple]]:
        """Yield (rid, row) for every row, in insertion order."""
        for rid, row in self.rows.items():
            self.rows_read += 1
            yield rid, row

    def scan_batches(self, size: int) -> Iterator[List[Tuple]]:
        """Yield rows in insertion-order chunks of at most ``size``.

        The batch-mode SeqScan source: one slice per chunk instead of one
        generator resumption per row. ``rows_read`` advances by whole
        chunks so the counter matches :meth:`scan` exactly.
        """
        if size <= 0:
            raise ExecutionError(f"scan batch size must be positive, got {size}")
        values = list(self.rows.values())
        for start in range(0, len(values), size):
            chunk = values[start : start + size]
            self.rows_read += len(chunk)
            yield chunk

    def get(self, rid: int) -> Tuple:
        """Fetch one row by rid."""
        row = self.rows.get(rid)
        if row is None:
            raise ExecutionError(f"no row {rid} in table {self.name!r}")
        self.rows_read += 1
        return row

    def truncate(self) -> None:
        """Remove all rows and reset indexes (keeps definitions)."""
        self.rows.clear()
        for index in self.indexes.values():
            index.tree.clear()

    def reset_counters(self) -> None:
        """Reset the work counters used for simulator calibration."""
        self.rows_read = 0
        self.rows_written = 0

    def __repr__(self) -> str:
        return f"<Table {self.name} rows={len(self.rows)} indexes={list(self.indexes)}>"
