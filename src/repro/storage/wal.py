"""Write-ahead log used for transactions and replication log sniffing.

SQL Server transactional replication collects changes by *log sniffing*: a
log reader process scans committed transactions out of the database log.
This module provides the log that makes that possible: every DML change is
recorded with its transaction id; COMMIT records carry the commit timestamp
so the distributor can propagate complete transactions in commit order.

Records carry full row images (old and new) so subscribers can apply
changes without re-evaluating predicates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.common.locks import mutex


class LogRecordType(enum.Enum):
    BEGIN = "begin"
    COMMIT = "commit"
    ABORT = "abort"
    INSERT = "insert"
    DELETE = "delete"
    UPDATE = "update"


@dataclass(frozen=True)
class LogRecord:
    """One log record. ``lsn`` is assigned by the log on append."""

    lsn: int
    record_type: LogRecordType
    transaction_id: int
    table: Optional[str] = None
    old_row: Optional[Tuple] = None
    new_row: Optional[Tuple] = None
    timestamp: float = 0.0  # virtual commit time (COMMIT records)

    def __repr__(self) -> str:
        return (
            f"LogRecord(lsn={self.lsn}, {self.record_type.value}, "
            f"txn={self.transaction_id}, table={self.table})"
        )


class WriteAheadLog:
    """An append-only log with LSN-addressed reads for log sniffing.

    ``append``/``truncate_through`` serialize on an internal mutex so the
    LSN sequence stays dense when concurrent sessions log changes; reads
    snapshot the record list under the same mutex so the log-sniffing
    reader never sees a half-appended tail.
    """

    def __init__(self):
        self._records: List[LogRecord] = []
        self._next_lsn = 1
        self._lock = mutex()

    def __len__(self) -> int:
        return len(self._records)

    @property
    def last_lsn(self) -> int:
        """The LSN of the most recent record (0 when empty)."""
        return self._next_lsn - 1

    def append(
        self,
        record_type: LogRecordType,
        transaction_id: int,
        table: Optional[str] = None,
        old_row: Optional[Tuple] = None,
        new_row: Optional[Tuple] = None,
        timestamp: float = 0.0,
    ) -> LogRecord:
        """Append a record; returns it with its assigned LSN."""
        with self._lock:
            record = LogRecord(
                lsn=self._next_lsn,
                record_type=record_type,
                transaction_id=transaction_id,
                table=table,
                old_row=old_row,
                new_row=new_row,
                timestamp=timestamp,
            )
            self._records.append(record)
            self._next_lsn += 1
            return record

    def read_from(self, after_lsn: int) -> List[LogRecord]:
        """Return all records with ``lsn > after_lsn`` (the sniffing read)."""
        with self._lock:
            if after_lsn >= self._next_lsn - 1 or not self._records:
                return []
            # Records are dense, so the slice offset is a direct computation
            # even after truncation shifted the first LSN.
            first_lsn = self._records[0].lsn
            offset = max(0, after_lsn - first_lsn + 1)
            return self._records[offset:]

    def records(self) -> Iterator[LogRecord]:
        """Iterate every record from the start of the log."""
        with self._lock:
            return iter(list(self._records))

    def truncate_through(self, lsn: int) -> int:
        """Discard records with ``lsn <= lsn`` after they are distributed.

        Returns the number of records discarded. A real system checkpoints;
        here truncation only matters for bounding memory in long runs.
        """
        with self._lock:
            kept = [record for record in self._records if record.lsn > lsn]
            discarded = len(self._records) - len(kept)
            self._records = kept
            return discarded

    def committed_transactions(self, after_lsn: int) -> List[Tuple[LogRecord, List[LogRecord]]]:
        """Group records after ``after_lsn`` into complete committed txns.

        Returns ``[(commit_record, [change_records...]), ...]`` in commit
        order. Transactions whose COMMIT has not been logged yet are not
        returned (the log reader will pick them up on a later scan), which
        gives replication its transactional-consistency guarantee.
        """
        pending: dict = {}
        result: List[Tuple[LogRecord, List[LogRecord]]] = []
        for record in self.read_from(after_lsn):
            if record.record_type is LogRecordType.BEGIN:
                pending[record.transaction_id] = []
            elif record.record_type in (
                LogRecordType.INSERT,
                LogRecordType.DELETE,
                LogRecordType.UPDATE,
            ):
                pending.setdefault(record.transaction_id, []).append(record)
            elif record.record_type is LogRecordType.COMMIT:
                changes = pending.pop(record.transaction_id, [])
                result.append((record, changes))
            elif record.record_type is LogRecordType.ABORT:
                pending.pop(record.transaction_id, None)
        return result
