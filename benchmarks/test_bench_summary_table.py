"""E1d — §6.2.1 summary table: no-cache vs five web/cache servers.

Paper:

    Workload   No cache   Five web/cache servers
               WIPS       WIPS   Backend load
    Browsing     50        129    7.5 %
    Shopping     82        199   15.9 %
    Ordering    283        271   55.4 %

Shapes to reproduce: Browsing/Shopping improve substantially with five
cache servers while the backend coasts (low single/low double-digit load);
Ordering does NOT improve (cached ≈ or below baseline) and keeps the
backend heavily loaded relative to the read mixes.
"""


from benchmarks.conftest import emit

PAPER = {
    "Browsing": (50, 129, 0.075),
    "Shopping": (82, 199, 0.159),
    "Ordering": (283, 271, 0.554),
}


def test_bench_summary_table(cached_model, nocache_model, benchmark, capsys, bench_recorder):
    lines = [
        f"{'Workload':10s} {'no-cache':>9s} {'cached@5':>9s} {'b.load@5':>9s}"
        f"   paper: base/cached/load"
    ]
    measured = {}
    for mix in ("Browsing", "Shopping", "Ordering"):
        base = nocache_model.baseline_wips(mix)
        at5 = cached_model.point(mix, 5)
        measured[mix] = (base.wips, at5.wips, at5.backend_utilization)
        paper_base, paper_cached, paper_load = PAPER[mix]
        lines.append(
            f"{mix:10s} {base.wips:9.1f} {at5.wips:9.1f} {at5.backend_utilization:9.1%}"
            f"   {paper_base}/{paper_cached}/{paper_load:.1%}"
        )
    emit(capsys, "E1d: no-cache vs five web/cache servers", lines)
    for mix, (base_wips, cached_wips, backend_load) in measured.items():
        bench_recorder.record(
            "summary_table",
            **{
                f"{mix.lower()}_nocache_wips": round(base_wips, 1),
                f"{mix.lower()}_cached5_wips": round(cached_wips, 1),
                f"{mix.lower()}_backend_load": round(backend_load, 4),
            },
        )

    # Observability snapshot from the calibration run that produced the
    # demands above: plan shapes and cache hit rates next to the numbers
    # they explain.
    obs = cached_model.calibration.obs_snapshot
    assert obs, "calibration should capture an observability snapshot"
    obs_lines = []
    for tier in ("cache", "backend"):
        snap = obs.get(tier)
        if snap is None:
            continue
        counters = snap["metrics"]["counters"]
        plan_cache = snap["statement_cache"]["plan_cache"]
        plan_lookups = plan_cache["hits"] + plan_cache["misses"]
        hit_rate = plan_cache["hits"] / plan_lookups if plan_lookups else 0.0
        obs_lines.append(
            f"{tier:8s} plans={counters.get('optimizer.plans', 0):5d}"
            f" dynamic={counters.get('optimizer.dynamic_plans', 0):4d}"
            f" remote={counters.get('optimizer.remote_plans', 0):4d}"
            f" cached_view={counters.get('optimizer.cached_view_plans', 0):4d}"
            f" plan-cache hit rate={hit_rate:6.1%}"
        )
        # Calibration repeats each interaction, so plan caches must help.
        assert 0.0 <= hit_rate <= 1.0
    emit(capsys, "E1d: calibration observability", obs_lines)
    cache_counters = obs["cache"]["metrics"]["counters"]
    assert cache_counters.get("optimizer.plans", 0) > 0

    # Who-wins shape checks.
    assert measured["Browsing"][1] > measured["Browsing"][0]  # caching wins
    assert measured["Shopping"][1] > measured["Shopping"][0]  # caching wins
    assert measured["Ordering"][1] <= measured["Ordering"][0] * 1.05  # no win
    # Backend-load ordering mirrors the paper's 7.5 < 15.9 < 55.4.
    assert (
        measured["Browsing"][2]
        < measured["Shopping"][2]
        < measured["Ordering"][2]
    )
    # Browsing/Shopping leave the backend mostly idle; Ordering does not.
    assert measured["Shopping"][2] < 0.25
    assert measured["Ordering"][2] > 0.35

    benchmark(lambda: cached_model.point("Browsing", 5))
