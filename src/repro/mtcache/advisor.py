"""Cache design advisor — the paper's §7 wish granted.

    "There are currently no tools to help a DBA define a caching strategy
    by analyzing a workload and providing advice on what cached views to
    create and where to run stored procedures. Such a design tool would be
    highly desirable."

The advisor consumes a weighted workload (SQL statements and/or stored
procedure calls), attributes reads and writes to tables (resolving
procedure bodies through the backend catalog), and recommends:

* which **cached views** to create — select-project views covering the
  columns the read workload touches on read-dominated tables, restricted
  to a constant range when every read constrains the same column;
* which **stored procedures to copy** to the cache tier — those whose
  bodies are read-dominated over cacheable tables (mirroring the paper's
  choice of 24 of 29).

``CacheAdvisor.recommend()`` returns a report whose ``apply(cache)``
provisions everything on a cache server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.optimizer.binder import Namespace, qualify_expression
from repro.optimizer.predicates import normalize_comparison, split_conjuncts
from repro.sql import ast, parse_statements


@dataclass
class WorkloadStatement:
    """One workload entry: SQL text plus its relative frequency."""

    sql: str
    weight: float = 1.0


@dataclass
class TableUsage:
    """Aggregated read/write pressure on one table."""

    table: str
    read_weight: float = 0.0
    write_weight: float = 0.0
    columns: Set[str] = field(default_factory=set)
    # column -> list of (op, constant) bounds seen in read predicates; a
    # column every read constrains may become the view's restriction.
    constant_bounds: Dict[str, List[Tuple[str, object]]] = field(default_factory=dict)
    reads_seen: int = 0
    reads_constraining: Dict[str, int] = field(default_factory=dict)

    @property
    def read_fraction(self) -> float:
        total = self.read_weight + self.write_weight
        if total == 0:
            return 0.0
        return self.read_weight / total


@dataclass
class ViewRecommendation:
    """One recommended cached view."""

    view_name: str
    table: str
    columns: Tuple[str, ...]
    predicate: Optional[str]
    read_weight: float
    write_weight: float

    @property
    def ddl(self) -> str:
        columns = ", ".join(self.columns)
        where = f" WHERE {self.predicate}" if self.predicate else ""
        return (
            f"CREATE CACHED VIEW {self.view_name} AS "
            f"SELECT {columns} FROM {self.table}{where}"
        )


@dataclass
class AdvisorReport:
    """The advisor's output."""

    views: List[ViewRecommendation]
    procedures_to_copy: List[str]
    table_usage: Dict[str, TableUsage]

    def apply(self, cache) -> None:
        """Provision every recommendation on a cache server."""
        for view in self.views:
            cache.create_cached_view(view.ddl)
        existing = set()
        for name in self.procedures_to_copy:
            if name.lower() not in existing:
                cache.copy_procedure(name)
                existing.add(name.lower())

    def summary(self) -> str:
        lines = ["Cache design recommendation:"]
        for view in self.views:
            lines.append(
                f"  {view.ddl}   -- reads {view.read_weight:.1f} / writes {view.write_weight:.1f}"
            )
        if self.procedures_to_copy:
            lines.append("  copy procedures: " + ", ".join(self.procedures_to_copy))
        return "\n".join(lines)


class CacheAdvisor:
    """Analyzes a workload against a backend database."""

    def __init__(
        self,
        backend,
        database_name: str,
        read_fraction_threshold: float = 0.7,
        min_read_weight: float = 1.0,
    ):
        self.backend = backend
        self.database = backend.database(database_name)
        self.read_fraction_threshold = read_fraction_threshold
        self.min_read_weight = min_read_weight

    # -- analysis ----------------------------------------------------------------

    def recommend(self, workload: List[WorkloadStatement]) -> AdvisorReport:
        usage: Dict[str, TableUsage] = {}
        procedure_reads: Dict[str, float] = {}
        procedure_writes: Dict[str, float] = {}

        for entry in workload:
            for statement in parse_statements(entry.sql):
                self._analyze_statement(
                    statement, entry.weight, usage, procedure_reads, procedure_writes
                )

        views = self._recommend_views(usage)
        cacheable_tables = {view.table.lower() for view in views}
        procedures = self._recommend_procedures(
            procedure_reads, procedure_writes, cacheable_tables
        )
        return AdvisorReport(
            views=views, procedures_to_copy=procedures, table_usage=usage
        )

    def _analyze_statement(
        self, statement, weight, usage, procedure_reads, procedure_writes, proc_name=None
    ) -> None:
        if isinstance(statement, ast.Select):
            self._analyze_select(statement, weight, usage)
            if proc_name:
                procedure_reads[proc_name] = procedure_reads.get(proc_name, 0.0) + weight
            return
        if isinstance(statement, (ast.Insert, ast.Update, ast.Delete)):
            table = statement.table.object_name.lower()
            self._usage_for(usage, table).write_weight += weight
            if proc_name:
                procedure_writes[proc_name] = (
                    procedure_writes.get(proc_name, 0.0) + weight
                )
            return
        if isinstance(statement, ast.Execute):
            name = statement.procedure[-1]
            procedure = self.database.catalog.maybe_procedure(name)
            if procedure is None:
                return
            for body_statement in procedure.body:
                self._analyze_body_statement(
                    body_statement, weight, usage, procedure_reads, procedure_writes, name
                )
            return
        # DDL / transactions: no caching impact.

    def _analyze_body_statement(
        self, statement, weight, usage, procedure_reads, procedure_writes, proc_name
    ) -> None:
        if isinstance(statement, (ast.Select, ast.Insert, ast.Update, ast.Delete, ast.Execute)):
            self._analyze_statement(
                statement, weight, usage, procedure_reads, procedure_writes, proc_name
            )
        elif isinstance(statement, ast.IfStatement):
            for child in list(statement.then_body) + list(statement.else_body):
                self._analyze_body_statement(
                    child, weight * 0.5, usage, procedure_reads, procedure_writes, proc_name
                )
        elif isinstance(statement, ast.WhileStatement):
            for child in statement.body:
                self._analyze_body_statement(
                    child, weight, usage, procedure_reads, procedure_writes, proc_name
                )

    def _analyze_select(self, select: ast.Select, weight: float, usage) -> None:
        if select.from_clause is None:
            return
        sources = self._collect_table_sources(select.from_clause)
        if not sources:
            return
        namespace = Namespace()
        table_of_alias: Dict[str, str] = {}
        for alias, table_name, columns in sources:
            try:
                namespace.add(alias, columns)
            except Exception:
                continue
            table_of_alias[alias.lower()] = table_name.lower()

        # Every FROM source is read even when no column is named (COUNT(*)).
        referenced: Dict[str, Set[str]] = {
            table_name.lower(): set() for _, table_name, _ in sources
        }
        expressions = [item.expression for item in select.items]
        if select.where is not None:
            expressions.append(select.where)
        expressions.extend(select.group_by)
        if select.having is not None:
            expressions.append(select.having)
        expressions.extend(entry.expression for entry in select.order_by)
        for expression in expressions:
            if isinstance(expression, ast.Star):
                for alias, table_name, columns in sources:
                    referenced.setdefault(table_name.lower(), set()).update(
                        column.lower() for column in columns
                    )
                continue
            try:
                qualified = qualify_expression(expression, namespace)
            except Exception:
                continue
            for column in ast.expression_columns(qualified):
                table = table_of_alias.get((column.qualifier or "").lower())
                if table:
                    referenced.setdefault(table, set()).add(column.name.lower())

        # Constant predicate bounds per table.
        constrained: Dict[str, Dict[str, List[Tuple[str, object]]]] = {}
        if select.where is not None:
            try:
                qualified = qualify_expression(select.where, namespace)
            except Exception:
                qualified = None
            if qualified is not None:
                for conjunct in split_conjuncts(qualified):
                    comparison = normalize_comparison(conjunct)
                    if comparison is None or comparison.is_parameterized:
                        continue
                    table = table_of_alias.get(
                        (comparison.column.qualifier or "").lower()
                    )
                    if table:
                        constrained.setdefault(table, {}).setdefault(
                            comparison.column.name.lower(), []
                        ).append((comparison.op, comparison.constant))

        for table, columns in referenced.items():
            record = self._usage_for(usage, table)
            record.read_weight += weight
            record.reads_seen += 1
            record.columns.update(columns)
            for column, bounds in constrained.get(table, {}).items():
                record.constant_bounds.setdefault(column, []).extend(bounds)
                record.reads_constraining[column] = (
                    record.reads_constraining.get(column, 0) + 1
                )

        # Nested subqueries read too.
        for expression in expressions:
            for node in ast.walk_expression(expression):
                if isinstance(node, (ast.InSubquery,)):
                    self._analyze_select(node.subquery, weight, usage)
                elif isinstance(node, (ast.Exists, )):
                    self._analyze_select(node.subquery, weight, usage)
                elif isinstance(node, ast.ScalarSubquery):
                    self._analyze_select(node.subquery, weight, usage)

    def _collect_table_sources(self, ref: ast.TableRef):
        sources = []

        def visit(node):
            if isinstance(node, ast.JoinRef):
                visit(node.left)
                visit(node.right)
                return
            if isinstance(node, ast.DerivedTable):
                return  # analyzed through its own select when encountered
            assert isinstance(node, ast.TableName)
            table = self.database.catalog.maybe_table(node.object_name)
            if table is None:
                return
            sources.append(
                (node.binding_name, node.object_name, list(table.schema.names))
            )

        visit(ref)
        return sources

    @staticmethod
    def _usage_for(usage: Dict[str, TableUsage], table: str) -> TableUsage:
        record = usage.get(table)
        if record is None:
            record = TableUsage(table=table)
            usage[table] = record
        return record

    # -- recommendations --------------------------------------------------------

    def _recommend_views(self, usage: Dict[str, TableUsage]) -> List[ViewRecommendation]:
        views = []
        for table, record in sorted(usage.items()):
            if record.read_weight < self.min_read_weight:
                continue
            if record.read_fraction < self.read_fraction_threshold:
                continue
            table_def = self.database.catalog.maybe_table(table)
            if table_def is None:
                continue
            # Keep the table's declared column order; always include the
            # primary key so the subscriber can apply changes by key.
            wanted = set(record.columns)
            wanted.update(key.lower() for key in table_def.primary_key)
            columns = tuple(
                column.name
                for column in table_def.schema
                if column.name.lower() in wanted
            )
            predicate = self._restriction_for(record)
            views.append(
                ViewRecommendation(
                    view_name=f"cv_{table}",
                    table=table_def.name,
                    columns=columns,
                    predicate=predicate,
                    read_weight=record.read_weight,
                    write_weight=record.write_weight,
                )
            )
        return views

    def _restriction_for(self, record: TableUsage) -> Optional[str]:
        """A constant range restriction when *every* read constrains the
        same column with upper/lower bounds (horizontal partial caching)."""
        for column, count in record.reads_constraining.items():
            if count < record.reads_seen or record.reads_seen == 0:
                continue
            bounds = record.constant_bounds.get(column, [])
            uppers = [value for op, value in bounds if op in ("<", "<=")]
            lowers = [value for op, value in bounds if op in (">", ">=")]
            equalities = [value for op, value in bounds if op == "="]
            try:
                if uppers and not lowers and not equalities:
                    return f"{column} <= {max(uppers)}"
                if lowers and not uppers and not equalities:
                    return f"{column} >= {min(lowers)}"
            except TypeError:
                continue
        return None

    def _recommend_procedures(
        self,
        procedure_reads: Dict[str, float],
        procedure_writes: Dict[str, float],
        cacheable_tables: Set[str],
    ) -> List[str]:
        names = set(procedure_reads) | set(procedure_writes)
        recommended = []
        for name in sorted(names):
            reads = procedure_reads.get(name, 0.0)
            writes = procedure_writes.get(name, 0.0)
            if reads <= 0:
                continue
            if reads / (reads + writes) >= self.read_fraction_threshold:
                recommended.append(name)
        return recommended
