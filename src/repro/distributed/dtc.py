"""A Distributed Transaction Coordinator (DTC) analogue.

SQL Server supports distributed transactions across linked servers through
Microsoft DTC and two-phase commit. This module provides the equivalent
for the repro engine: a coordinator that enlists per-database transactions
and commits them atomically — all participants commit, or all roll back.

The engine's local transactions apply changes eagerly with undo logs, so
*prepare* here validates that every enlisted transaction is still active
(the failure window 2PC protects against), and *commit* finalizes each
participant. Any prepare failure triggers rollback everywhere, which the
undo logs make possible.

A failure in the *commit phase* is the harder case — some participants
have already durably committed and cannot be rolled back. The coordinator
then stops, rolls back the still-active remainder, and records an
:class:`InDoubtRecord` (counted on ``dtc.in_doubt``) in the process-global
:class:`DtcRecoveryLog`. A recovery pass (:meth:`DtcRecoveryLog.resolve`)
resolves records deterministically: since the commit phase only starts
after a unanimous prepare, the coordinator's decision was *commit* — a
record whose branches all rolled back resolves as a clean global
rollback, anything with a committed branch resolves as heuristic damage
(the MS DTC "heuristically resolved" analogue) and is surfaced on the
``dtc.heuristic_outcomes`` counter for operators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import DistributedError, TransactionError
from repro.obs.metrics import global_registry
from repro.obs.tracing import Tracer

# The DTC has no owning server, so its spans and counters go to the
# process-global tracer/registry; spans still nest under whatever server
# span is active when commit() is called (context propagation).
_TRACER = Tracer(service="dtc")


@dataclass
class InDoubtRecord:
    """One commit-phase failure: which branches landed where."""

    participants: int
    committed: List[str] = field(default_factory=list)
    rolled_back: List[str] = field(default_factory=list)
    failed: str = ""
    error: str = ""
    resolved: bool = False
    resolution: Optional[str] = None


class DtcRecoveryLog:
    """The durable-log analogue the recovery pass reads.

    Real DTC writes its commit decision to a log and a recovery process
    replays it after failures; here the records accumulate in process and
    :meth:`resolve` is the recovery pass.
    """

    def __init__(self):
        self.records: List[InDoubtRecord] = []

    def append(self, record: InDoubtRecord) -> None:
        self.records.append(record)

    def pending(self) -> List[InDoubtRecord]:
        return [record for record in self.records if not record.resolved]

    def clear(self) -> None:
        self.records = []

    def resolve(self) -> List[InDoubtRecord]:
        """Resolve every pending record; returns those resolved.

        Deterministic rule: a unanimous prepare preceded the failure, so
        the coordinator's decision was commit. ``rolled_back`` resolution
        means no branch had committed yet — the outcome is a globally
        consistent rollback. Any committed branch makes the outcome mixed
        ("heuristic-damage"): the commit decision stands for the
        committed branches while others aborted, which operators must
        reconcile — exactly what the ``dtc.heuristic_outcomes`` counter
        flags.
        """
        registry = global_registry()
        resolved = []
        for record in self.records:
            if record.resolved:
                continue
            record.resolution = "rolled_back" if not record.committed else "heuristic-damage"
            record.resolved = True
            registry.counter("dtc.in_doubt_resolved").inc()
            if record.resolution == "heuristic-damage":
                registry.counter("dtc.heuristic_outcomes").inc()
            resolved.append(record)
        return resolved


_RECOVERY_LOG = DtcRecoveryLog()


def recovery_log() -> DtcRecoveryLog:
    """The process-global in-doubt log (tests may ``clear()`` it)."""
    return _RECOVERY_LOG


class DistributedTransactionCoordinator:
    """Coordinates one distributed transaction across databases."""

    def __init__(self):
        # Each participant is (database, transaction).
        self._participants: List[Tuple[object, object]] = []
        self._finished = False
        #: In-doubt records produced by this coordinator (also appended
        #: to the global recovery log).
        self.in_doubt: List[InDoubtRecord] = []
        #: One-shot hook fired after a successful prepare, before the
        #: first branch commit — the fault injector's window for aborting
        #: a participant between phases.
        self.on_before_commit_phase: Optional[Callable[["DistributedTransactionCoordinator"], None]] = None

    def begin_on(self, database) -> object:
        """Begin a branch transaction on a database and enlist it."""
        transaction = database.transactions.begin()
        self._participants.append((database, transaction))
        return transaction

    def enlist(self, database, transaction) -> None:
        """Enlist an already-running transaction."""
        self._participants.append((database, transaction))

    @property
    def participant_count(self) -> int:
        return len(self._participants)

    @property
    def participants(self) -> List[Tuple[object, object]]:
        """The enlisted (database, transaction) pairs (fault injection)."""
        return self._participants

    def prepare(self) -> bool:
        """Phase one: every participant votes."""
        if self._finished:
            raise DistributedError("transaction already finished")
        with _TRACER.span("2pc.prepare", participants=len(self._participants)):
            for _, transaction in self._participants:
                if not transaction.active:
                    global_registry().counter("dtc.prepare_failures").inc()
                    return False
            return True

    def commit(self) -> None:
        """Phase two: commit everywhere, or record the damage honestly.

        On a commit-phase failure the coordinator stops immediately,
        rolls back every still-active participant, and raises with an
        :class:`InDoubtRecord` logged — it does *not* keep committing the
        remaining branches (that would widen the inconsistency window).
        """
        with _TRACER.span("2pc.commit", participants=len(self._participants)):
            if not self.prepare():
                self.rollback()
                raise DistributedError(
                    "prepare failed; distributed transaction rolled back"
                )
            hook = self.on_before_commit_phase
            if hook is not None:
                self.on_before_commit_phase = None
                hook(self)
            committed: List[str] = []
            for index, (database, transaction) in enumerate(self._participants):
                try:
                    database.transactions.commit(transaction)
                except TransactionError as exc:
                    self._abort_commit_phase(index, committed, exc)
                committed.append(database.name)
            self._finished = True
            global_registry().counter("dtc.commits").inc()

    def _abort_commit_phase(
        self, index: int, committed: List[str], exc: TransactionError
    ) -> None:
        """Stop the commit phase at participant ``index`` (which failed)."""
        failed_db = self._participants[index][0]
        rolled_back: List[str] = []
        for database, transaction in self._participants[index + 1:]:
            if transaction.active:
                database.transactions.rollback(transaction)
                rolled_back.append(database.name)
        record = InDoubtRecord(
            participants=len(self._participants),
            committed=list(committed),
            rolled_back=rolled_back,
            failed=failed_db.name,
            error=str(exc),
        )
        self.in_doubt.append(record)
        recovery_log().append(record)
        registry = global_registry()
        registry.counter("dtc.commit_phase_failures").inc()
        if committed:
            # One in-doubt branch per participant that already committed
            # against a transaction whose other branches did not.
            registry.counter("dtc.in_doubt").inc(len(committed))
        self._finished = True
        raise DistributedError(
            f"commit phase failed on {failed_db.name!r}: "
            f"{len(committed)} participant(s) already committed (in doubt), "
            f"{len(rolled_back)} rolled back"
        ) from exc

    def rollback(self) -> None:
        """Abort every still-active participant."""
        if self._finished:
            return
        with _TRACER.span("2pc.rollback", participants=len(self._participants)):
            for database, transaction in self._participants:
                if transaction.active:
                    database.transactions.rollback(transaction)
            self._finished = True
            global_registry().counter("dtc.rollbacks").inc()
