"""Transparency: the application never changes, only the ODBC source.

This is the paper's central claim — caching must be indistinguishable from
talking to the backend, modulo bounded staleness.
"""

import pytest

from repro import MTCacheDeployment
from repro.mtcache.odbc import OdbcSourceRegistry

from tests.conftest import make_shop_backend


@pytest.fixture
def env():
    backend = make_shop_backend()
    deployment = MTCacheDeployment(backend, "shop")
    cache = deployment.add_cache_server("cache1")
    cache.create_cached_view(
        "CREATE CACHED VIEW vcust AS SELECT cid, cname, segment FROM customer"
    )
    cache.create_cached_view(
        "CREATE CACHED VIEW vorders AS SELECT oid, o_cid, total FROM orders"
    )
    registry = OdbcSourceRegistry()
    registry.register("shopdsn", backend, "shop")
    return backend, deployment, cache, registry


QUERIES = [
    "SELECT cname FROM customer WHERE cid = 17",
    "SELECT COUNT(*) FROM customer WHERE segment = 'gold'",
    "SELECT TOP 5 c.cname, SUM(o.total) AS s FROM customer c "
    "JOIN orders o ON o.o_cid = c.cid GROUP BY c.cname ORDER BY s DESC, c.cname",
    "SELECT cid FROM customer WHERE cid BETWEEN 10 AND 15 ORDER BY cid",
    "SELECT segment, COUNT(*) AS n FROM customer GROUP BY segment ORDER BY segment",
    "SELECT caddress FROM customer WHERE cid = 3",  # uncached column
]


class TestOdbcRedirection:
    def test_identical_results_before_and_after_redirect(self, env):
        backend, deployment, cache, registry = env
        before = {}
        connection = registry.connect("shopdsn")
        for sql in QUERIES:
            before[sql] = connection.execute(sql).rows
        # The configuration change: redirect the DSN to the cache server.
        registry.redirect("shopdsn", cache.server, "shop")
        connection = registry.connect("shopdsn")
        for sql in QUERIES:
            assert connection.execute(sql).rows == before[sql], sql

    def test_application_cannot_tell_servers_apart_functionally(self, env):
        backend, deployment, cache, registry = env
        registry.redirect("shopdsn", cache.server, "shop")
        connection = registry.connect("shopdsn")
        # The app writes and (after propagation) reads its own write.
        connection.execute("UPDATE customer SET cname = 'written' WHERE cid = 50")
        deployment.sync()
        assert (
            connection.execute("SELECT cname FROM customer WHERE cid = 50").scalar
            == "written"
        )

    def test_target_of_reports_current_server(self, env):
        backend, _, cache, registry = env
        assert registry.target_of("shopdsn") == "backend"
        registry.redirect("shopdsn", cache.server, "shop")
        assert registry.target_of("shopdsn") == "cache1"

    def test_unknown_source(self, env):
        _, _, _, registry = env
        from repro.errors import DistributedError

        with pytest.raises(DistributedError):
            registry.connect("nope")
        with pytest.raises(DistributedError):
            registry.redirect("nope", None)


class TestConsistencyUnderUpdates:
    def test_cache_converges_to_backend_state(self, env):
        """After arbitrary update traffic plus a sync, every query answers
        identically on cache and backend (transactional consistency)."""
        backend, deployment, cache, _ = env
        import random

        rng = random.Random(5)
        for step in range(40):
            choice = rng.random()
            cid = rng.randint(1, 200)
            if choice < 0.5:
                backend.execute(
                    f"UPDATE customer SET segment = 'seg{step % 4}' WHERE cid = {cid}",
                    database="shop",
                )
            elif choice < 0.75:
                backend.execute(
                    f"UPDATE orders SET total = total + 1 WHERE o_cid = {cid}",
                    database="shop",
                )
            else:
                backend.execute(
                    f"DELETE FROM orders WHERE oid = {rng.randint(1, 400)}",
                    database="shop",
                )
            deployment.clock.advance(0.05)
            deployment.tick()
        deployment.clock.advance(2.0)
        deployment.sync()
        for sql in QUERIES:
            backend_rows = backend.execute(sql, database="shop").rows
            cache_rows = cache.execute(sql).rows
            assert cache_rows == backend_rows, sql

    def test_stale_reads_are_consistent_snapshots(self, env):
        """Before a sync, the cache may be stale but must reflect a state
        that actually existed (whole transactions only)."""
        backend, deployment, cache, _ = env
        deployment.sync()
        from repro.engine import Session

        session = Session()
        backend.execute("BEGIN TRANSACTION", session=session, database="shop")
        backend.execute(
            "UPDATE customer SET segment = 'A' WHERE cid = 1", session=session, database="shop"
        )
        backend.execute(
            "UPDATE customer SET segment = 'A' WHERE cid = 2", session=session, database="shop"
        )
        backend.execute("COMMIT", session=session, database="shop")
        # Without sync: the cache shows both rows in their OLD state.
        rows = cache.execute(
            "SELECT segment FROM vcust WHERE cid <= 2 ORDER BY cid"
        ).rows
        assert rows == [("base",), ("base",)]
        deployment.sync()
        rows = cache.execute(
            "SELECT segment FROM vcust WHERE cid <= 2 ORDER BY cid"
        ).rows
        assert rows == [("A",), ("A",)]
