"""The partitioned cache tier: placement, provisioning, rebalancing.

The paper's scale-out (Figure 6) replicates the *same* articles to every
cache server, so each server pays the full apply cost and the tier tops
out where replication work saturates one cache (five servers in the
paper). This package partitions instead: each shard subscribes to a
horizontal slice of the hot tables, apply work divides across the tier,
and a shard-aware router (:class:`repro.client.ShardRouter`) sends
single-key statements to the owning shard and scatter-gathers scans.

Placement strategies live in :mod:`repro.sharding.ring`; the declarative
table/procedure policy in :mod:`repro.sharding.policy`; scatter-gather
decomposition in :mod:`repro.sharding.scatter`; provisioning and
rebalancing in :mod:`repro.sharding.deployment` and
:mod:`repro.sharding.rebalance`.
"""

from repro.sharding.deployment import ShardedDeployment
from repro.sharding.policy import (
    ROUTE_BACKEND,
    ROUTE_KEY,
    ROUTE_SCATTER,
    BroadcastView,
    ProcedureRoute,
    ShardingPolicy,
    TablePartition,
    tpcw_sharding_policy,
)
from repro.sharding.rebalance import Rebalancer
from repro.sharding.ring import HashRing, RangePartitioner, stable_hash
from repro.sharding.scatter import ScatterQuery, decompose

__all__ = [
    "BroadcastView",
    "HashRing",
    "ProcedureRoute",
    "RangePartitioner",
    "Rebalancer",
    "ROUTE_BACKEND",
    "ROUTE_KEY",
    "ROUTE_SCATTER",
    "ScatterQuery",
    "ShardedDeployment",
    "ShardingPolicy",
    "TablePartition",
    "decompose",
    "stable_hash",
    "tpcw_sharding_policy",
]
