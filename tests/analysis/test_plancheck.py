"""Plan-invariant verifier: clean plans verify, checked execution wires up."""

from __future__ import annotations

import pytest

from repro.analysis import check_plan, verify_plan
from repro.engine import Server
from repro.errors import AnalysisError
from repro.exec.operators import FilterOp, RemoteQueryOp, SeqScanOp, UnionAllOp
from repro.sql import parse_statements


def _plan(server, database, sql):
    """A fresh (uncached) plan, safe for tests to mutate."""
    statement = parse_statements(sql)[0]
    return server.optimizer_for(database).plan_select(statement)


def test_clean_local_plan_verifies(backend):
    database = backend.database("shop")
    planned = _plan(backend, database, "SELECT cid, cname FROM customer WHERE cid = 7")
    assert verify_plan(planned, database=database) == []


def test_clean_join_plan_verifies(backend):
    database = backend.database("shop")
    planned = _plan(
        backend,
        database,
        "SELECT c.cname, o.total FROM customer c JOIN orders o ON c.cid = o.o_cid "
        "WHERE c.segment = 'gold'",
    )
    assert verify_plan(planned, database=database) == []


def test_clean_aggregate_plan_verifies(backend):
    database = backend.database("shop")
    planned = _plan(
        backend,
        database,
        "SELECT segment, COUNT(*) AS n FROM customer GROUP BY segment ORDER BY n DESC",
    )
    assert verify_plan(planned, database=database) == []


def test_choose_plan_verifies_clean(cache):
    database = cache.database
    planned = _plan(
        cache.server, database, "SELECT cid, cname FROM customer WHERE cid <= @cid"
    )
    assert any(
        isinstance(op, UnionAllOp) and op.choose_plan for op in planned.root.walk()
    ), "expected a dynamic ChoosePlan for the parameterized query"
    assert verify_plan(planned, database=database, params={"cid": 50}) == []


def test_remote_query_plan_verifies_clean(cache):
    database = cache.database
    # Orders is not cached: the whole statement ships to the backend.
    planned = _plan(cache.server, database, "SELECT oid, total FROM orders WHERE oid = 3")
    assert any(isinstance(op, RemoteQueryOp) for op in planned.root.walk())
    assert verify_plan(planned, database=database) == []


def test_unbound_required_parameter_reported(backend):
    database = backend.database("shop")
    planned = _plan(backend, database, "SELECT cid FROM customer WHERE cid = @cid")
    assert planned.required_parameters == frozenset({"cid"})
    diagnostics = verify_plan(planned, database=database, params={})
    assert [d.rule for d in diagnostics] == ["plan-params"]
    # With the binding supplied there is nothing to report.
    assert verify_plan(planned, database=database, params={"cid": 1}) == []


def test_check_plan_raises_analysis_error(backend):
    database = backend.database("shop")
    bad = SeqScanOp(database.catalog.tables["customer"].schema, "no_such_table")
    with pytest.raises(AnalysisError) as excinfo:
        check_plan(bad, database=database)
    assert excinfo.value.rule == "catalog"


def _filter_of(planned):
    for op in planned.root.walk():
        if isinstance(op, FilterOp):
            return op
    raise AssertionError("expected a FilterOp in the plan")


def test_broken_batch_kernel_reported(backend):
    database = backend.database("shop")
    planned = _plan(
        backend, database, "SELECT cname FROM customer WHERE segment = 'gold'"
    )
    assert verify_plan(planned, database=database) == []
    # Mutate the compiled predicate's batch form to violate the length
    # contract (a non-empty vector for an empty chunk).
    _filter_of(planned).predicate.batch = lambda rows, ctx: [True]
    diagnostics = verify_plan(planned, database=database)
    assert [d.rule for d in diagnostics] == ["batch-kernel"]


def test_raising_batch_kernel_reported(backend):
    database = backend.database("shop")
    planned = _plan(
        backend, database, "SELECT cname FROM customer WHERE segment = 'gold'"
    )

    def explode(rows, ctx):
        raise RuntimeError("broken kernel")

    _filter_of(planned).predicate.batch = explode
    diagnostics = verify_plan(planned, database=database)
    assert [d.rule for d in diagnostics] == ["batch-kernel"]
    assert "broken kernel" in diagnostics[0].message


def test_servers_default_checked_from_environment(monkeypatch):
    monkeypatch.setenv("REPRO_CHECKED_PLANS", "0")
    assert Server("plain").checked_plans is False
    monkeypatch.setenv("REPRO_CHECKED_PLANS", "1")
    assert Server("checked").checked_plans is True
    # Explicit argument wins over the environment.
    assert Server("forced-off", checked_plans=False).checked_plans is False


def test_cache_servers_always_checked(cache):
    assert cache.server.checked_plans is True


def test_checked_execution_counts_verified_plans(cache):
    before = cache.server.metrics.counter("analysis.plans_checked").value
    cache.execute("SELECT cid FROM Cust1000 WHERE cid = 12")
    after = cache.server.metrics.counter("analysis.plans_checked").value
    assert after > before
