"""DBAPI facade: Connection/Cursor semantics over every target kind."""

from __future__ import annotations

import pytest

from repro.client import Connection, Cursor, connect
from repro.errors import ClientError, TransactionError


@pytest.fixture
def connection(backend):
    return connect(backend, database="shop")


def test_connect_returns_connection(backend):
    connection = connect(backend, database="shop")
    assert isinstance(connection, Connection)
    assert connection.database == "shop"
    assert not connection.closed


def test_cursor_fetchall(connection):
    cursor = connection.cursor()
    assert isinstance(cursor, Cursor)
    cursor.execute("SELECT cid, cname FROM customer WHERE cid <= 3 ORDER BY cid")
    rows = cursor.fetchall()
    assert [row[0] for row in rows] == [1, 2, 3]
    # The cursor is exhausted afterwards.
    assert cursor.fetchall() == []
    assert cursor.fetchone() is None


def test_cursor_fetchone_walks_rows(connection):
    cursor = connection.cursor()
    cursor.execute("SELECT cid FROM customer WHERE cid <= 2 ORDER BY cid")
    assert cursor.fetchone() == (1,)
    assert cursor.fetchone() == (2,)
    assert cursor.fetchone() is None


def test_cursor_fetchmany_and_arraysize(connection):
    cursor = connection.cursor()
    cursor.execute("SELECT cid FROM customer WHERE cid <= 5 ORDER BY cid")
    assert cursor.fetchmany(2) == [(1,), (2,)]
    # Default size is arraysize (1).
    assert cursor.fetchmany() == [(3,)]
    cursor.arraysize = 2
    assert cursor.fetchmany() == [(4,), (5,)]
    assert cursor.fetchmany() == []


def test_cursor_iteration(connection):
    cursor = connection.cursor()
    cursor.execute("SELECT cid FROM customer WHERE cid <= 4 ORDER BY cid")
    assert [row[0] for row in cursor] == [1, 2, 3, 4]


def test_cursor_description(connection):
    cursor = connection.cursor()
    cursor.execute("SELECT cid, cname FROM customer WHERE cid = 1")
    names = [entry[0] for entry in cursor.description]
    assert names == ["cid", "cname"]
    for entry in cursor.description:
        assert len(entry) == 7


def test_rowcount_lifecycle(connection):
    cursor = connection.cursor()
    assert cursor.rowcount == -1
    cursor.execute("UPDATE customer SET segment = 'gold' WHERE cid <= 5")
    assert cursor.rowcount == 5


def test_execute_returns_cursor_for_chaining(connection):
    row = (
        connection.cursor()
        .execute("SELECT cname FROM customer WHERE cid = @cid", {"cid": 7})
        .fetchone()
    )
    assert row == ("cust7",)


def test_mappings(connection):
    cursor = connection.cursor()
    cursor.execute("SELECT cid, cname FROM customer WHERE cid <= 2 ORDER BY cid")
    assert cursor.mappings() == [
        {"cid": 1, "cname": "cust1"},
        {"cid": 2, "cname": "cust2"},
    ]


def test_executemany(connection):
    cursor = connection.cursor()
    cursor.executemany(
        "UPDATE customer SET segment = @seg WHERE cid = @cid",
        [{"seg": "a", "cid": 1}, {"seg": "b", "cid": 2}],
    )
    check = connection.cursor()
    check.execute("SELECT segment FROM customer WHERE cid <= 2 ORDER BY cid")
    assert check.fetchall() == [("a",), ("b",)]


def test_commit_persists_and_rollback_undoes(connection, backend):
    connection.begin()
    connection.cursor().execute("UPDATE customer SET cname = 'X' WHERE cid = 1")
    connection.commit()
    assert (
        backend.execute(
            "SELECT cname FROM customer WHERE cid = 1", database="shop"
        ).scalar
        == "X"
    )

    connection.begin()
    connection.cursor().execute("UPDATE customer SET cname = 'Y' WHERE cid = 1")
    connection.rollback()
    assert (
        backend.execute(
            "SELECT cname FROM customer WHERE cid = 1", database="shop"
        ).scalar
        == "X"
    )


def test_commit_without_transaction_is_noop(connection):
    connection.commit()  # DBAPI autocommit-compatible: no error
    connection.rollback()


def test_close_rolls_back_open_transaction(backend):
    connection = connect(backend, database="shop")
    connection.begin()
    connection.cursor().execute("UPDATE customer SET cname = 'gone' WHERE cid = 1")
    connection.close()
    # The latch was released and the change undone: other sessions can
    # read the original value without blocking.
    assert (
        backend.execute(
            "SELECT cname FROM customer WHERE cid = 1", database="shop"
        ).scalar
        == "cust1"
    )


def test_closed_connection_rejects_use(connection):
    connection.close()
    with pytest.raises(ClientError):
        connection.cursor()
    with pytest.raises(ClientError):
        connection.execute("SELECT 1 AS one")


def test_closed_cursor_rejects_execute(connection):
    cursor = connection.cursor()
    cursor.close()
    with pytest.raises(ClientError):
        cursor.execute("SELECT 1 AS one")


def test_cursor_before_execute_rejects_fetch(connection):
    cursor = connection.cursor()
    with pytest.raises(ClientError):
        cursor.fetchall()
    assert cursor.description is None


def test_context_managers(backend):
    with connect(backend, database="shop") as connection:
        with connection.cursor() as cursor:
            cursor.execute("SELECT cid FROM customer WHERE cid = 1")
            assert cursor.fetchone() == (1,)
        assert cursor.closed
    assert connection.closed


def test_double_begin_rejected_through_client(connection):
    connection.begin()
    with pytest.raises(TransactionError):
        connection.begin()
    connection.rollback()


def test_deprecated_execute_shim_returns_result(connection):
    result = connection.execute("SELECT cid FROM customer WHERE cid = 1")
    assert result.rows == [(1,)]


def test_connection_against_cache_server(cache):
    """The same facade speaks to a CacheServer (no database kwarg)."""
    connection = connect(cache)
    cursor = connection.cursor()
    cursor.execute("SELECT cname FROM Cust1000 WHERE cid = @cid", {"cid": 5})
    assert cursor.fetchone() == ("cust5",)
    assert connection.healthy()


def test_healthy_tracks_server_availability(backend):
    connection = connect(backend, database="shop")
    assert connection.healthy()
    backend.crash()
    assert not connection.healthy()
    backend.restart()
    assert connection.healthy()


def test_result_is_iterable(connection):
    """Satellite: raw Result supports iteration, len() and mappings()."""
    result = connection.execute(
        "SELECT cid, cname FROM customer WHERE cid <= 2 ORDER BY cid"
    )
    assert len(result) == 2
    assert [row[0] for row in result] == [1, 2]
    assert result.mappings() == [
        {"cid": 1, "cname": "cust1"},
        {"cid": 2, "cname": "cust2"},
    ]
