"""Operational maintenance: WAL checkpointing and periodic stats refresh."""


from repro import MTCacheDeployment

from tests.conftest import make_shop_backend


class TestWalCheckpoint:
    def test_checkpoint_truncates_distributed_prefix(self):
        backend = make_shop_backend(customers=30, orders=30)
        deployment = MTCacheDeployment(backend, "shop")
        cache = deployment.add_cache_server("c1")
        cache.create_cached_view(
            "CREATE CACHED VIEW v AS SELECT cid, cname FROM customer"
        )
        for cid in range(1, 11):
            backend.execute(
                f"UPDATE customer SET cname = 'x{cid}' WHERE cid = {cid}",
                database="shop",
            )
        deployment.sync()
        wal = backend.database("shop").wal
        before = len(wal)
        discarded = deployment.checkpoint_wal()
        assert discarded > 0
        assert len(wal) < before

    def test_replication_continues_after_checkpoint(self):
        backend = make_shop_backend(customers=30, orders=30)
        deployment = MTCacheDeployment(backend, "shop")
        cache = deployment.add_cache_server("c1")
        cache.create_cached_view(
            "CREATE CACHED VIEW v AS SELECT cid, cname FROM customer"
        )
        backend.execute("UPDATE customer SET cname = 'a' WHERE cid = 1", database="shop")
        deployment.sync()
        deployment.checkpoint_wal()
        backend.execute("UPDATE customer SET cname = 'b' WHERE cid = 2", database="shop")
        deployment.sync()
        assert cache.execute("SELECT cname FROM v WHERE cid = 2").scalar == "b"

    def test_checkpoint_never_discards_undistributed(self):
        backend = make_shop_backend(customers=30, orders=30)
        deployment = MTCacheDeployment(backend, "shop")
        cache = deployment.add_cache_server("c1")
        cache.create_cached_view(
            "CREATE CACHED VIEW v AS SELECT cid, cname FROM customer"
        )
        deployment.sync()
        # Change committed but the log reader has NOT polled yet.
        backend.execute("UPDATE customer SET cname = 'kept' WHERE cid = 3", database="shop")
        deployment.checkpoint_wal()
        deployment.sync()  # must still see the change
        assert cache.execute("SELECT cname FROM v WHERE cid = 3").scalar == "kept"


class TestStatsAutoRefresh:
    def test_periodic_refresh_during_tick(self):
        backend = make_shop_backend(customers=100, orders=100)
        deployment = MTCacheDeployment(
            backend, "shop", stats_refresh_interval=5.0
        )
        cache = deployment.add_cache_server("c1")
        assert cache.database.stats_for("customer").row_count == 100

        backend.execute("DELETE FROM customer WHERE cid > 40", database="shop")
        deployment.tick(1.0)
        # Interval not elapsed yet: stats unchanged.
        assert cache.database.stats_for("customer").row_count == 100
        deployment.tick(6.0)
        assert cache.database.stats_for("customer").row_count == 40

    def test_no_refresh_when_disabled(self):
        backend = make_shop_backend(customers=100, orders=100)
        deployment = MTCacheDeployment(backend, "shop")
        cache = deployment.add_cache_server("c1")
        backend.execute("DELETE FROM customer WHERE cid > 40", database="shop")
        deployment.tick(100.0)
        assert cache.database.stats_for("customer").row_count == 100
