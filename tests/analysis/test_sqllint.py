"""Workload SQL lint: the real corpus is clean, seeded defects are not."""

from __future__ import annotations

import pytest

from repro.analysis.sqllint import SqlLinter, lint_workload
from repro.mtcache.scripts import generate_grant_script, generate_shadow_script
from repro.tpcw.config import TPCWConfig
from repro.tpcw.setup import CACHED_VIEW_DDL, DATABASE_NAME, build_backend, enable_caching


@pytest.fixture(scope="module")
def tpcw():
    backend, config = build_backend(TPCWConfig(num_items=20, num_ebs=4))
    deployment, caches = enable_caching(backend, ["cache1"], config)
    deployment.sync()
    return backend, caches[0]


# -- The clean corpus produces zero diagnostics ----------------------------


def test_tpcw_backend_procedures_lint_clean(tpcw):
    backend, _ = tpcw
    assert lint_workload(backend.databases[DATABASE_NAME]) == []


def test_tpcw_cache_procedures_lint_clean(tpcw):
    _, cache = tpcw
    assert lint_workload(cache.database) == []


def test_cached_view_ddl_lints_clean(tpcw):
    backend, _ = tpcw
    linter = SqlLinter(backend.databases[DATABASE_NAME].catalog)
    assert linter.lint_sql(";".join(CACHED_VIEW_DDL), "cached-view-ddl") == []


def test_generated_deployment_scripts_lint_clean(tpcw):
    """The shadow and grant scripts run against an initially empty shadow
    database: they must lint with no base catalog, overlay only."""
    backend, _ = tpcw
    catalog = backend.databases[DATABASE_NAME].catalog
    linter = SqlLinter(None)
    assert linter.lint_sql(generate_shadow_script(catalog), "shadow-script") == []
    assert linter.lint_sql(generate_grant_script(catalog), "grant-script") == []


def test_shop_fixture_lints_clean(cache):
    assert lint_workload(cache.database) == []


# -- Seeded defects, one rule each -----------------------------------------


def _lint(cache, sql):
    return SqlLinter(cache.database.catalog).lint_sql(sql, "test")


def _rules(diagnostics):
    return [d.rule for d in diagnostics]


def test_unknown_table(cache):
    diagnostics = _lint(cache, "SELECT x FROM no_such_table")
    assert "unknown-table" in _rules(diagnostics)


def test_unknown_column(cache):
    diagnostics = _lint(cache, "SELECT no_such_column FROM customer")
    assert _rules(diagnostics) == ["unknown-column"]


def test_unknown_qualified_column(cache):
    diagnostics = _lint(cache, "SELECT c.nope FROM customer c")
    assert _rules(diagnostics) == ["unknown-column"]


def test_one_unknown_table_does_not_cascade(cache):
    """An unknown table is one diagnostic, not one per column reference."""
    diagnostics = _lint(cache, "SELECT a, b, c FROM no_such_table WHERE d = 1")
    assert _rules(diagnostics) == ["unknown-table"]


def test_ambiguous_column(cache):
    diagnostics = _lint(
        cache, "SELECT cid FROM customer c JOIN Cust1000 k ON c.cid = k.cid"
    )
    assert "ambiguous-column" in _rules(diagnostics)


def test_order_by_may_use_select_alias(cache):
    diagnostics = _lint(
        cache,
        "SELECT segment, COUNT(*) AS n FROM customer GROUP BY segment ORDER BY n DESC",
    )
    assert diagnostics == []


def test_undeclared_parameter(cache):
    diagnostics = _lint(cache, "SELECT cid FROM customer WHERE cid = @nope")
    assert _rules(diagnostics) == ["undeclared-parameter"]


def test_declared_parameters_accepted(cache):
    script = """
        CREATE PROCEDURE p1 @cid INT AS
        BEGIN
            DECLARE @limit INT = 10
            SELECT cname FROM customer WHERE cid = @cid AND cid < @limit
        END
    """
    assert _lint(cache, script) == []


def test_insert_arity(cache):
    diagnostics = _lint(cache, "INSERT INTO customer (cid, cname) VALUES (1, 'a', 'extra')")
    assert "insert-arity" in _rules(diagnostics)


def test_insert_select_arity(cache):
    diagnostics = _lint(
        cache, "INSERT INTO customer (cid, cname) SELECT cid FROM customer"
    )
    assert "insert-arity" in _rules(diagnostics)


def test_insert_unknown_column(cache):
    diagnostics = _lint(cache, "INSERT INTO customer (cid, nope) VALUES (1, 'a')")
    assert "unknown-column" in _rules(diagnostics)


def test_insert_type_mismatch(cache):
    diagnostics = _lint(cache, "INSERT INTO customer (cid, cname) VALUES ('text', 'a')")
    assert "type-mismatch" in _rules(diagnostics)


def test_comparison_type_mismatch(cache):
    diagnostics = _lint(cache, "SELECT cid FROM customer WHERE cname > 5")
    assert "type-mismatch" in _rules(diagnostics)


def test_numeric_widening_is_not_a_mismatch(cache):
    assert _lint(cache, "SELECT cid FROM customer WHERE cid < 10.5") == []


def test_update_against_cached_article(cache):
    diagnostics = _lint(cache, "UPDATE Cust1000 SET cname = 'x' WHERE cid = 1")
    assert _rules(diagnostics) == ["dml-target"]
    assert "cached article" in diagnostics[0].message


def test_delete_against_cached_article(cache):
    diagnostics = _lint(cache, "DELETE FROM Cust1000 WHERE cid = 1")
    assert _rules(diagnostics) == ["dml-target"]


def test_update_unknown_column(cache):
    diagnostics = _lint(cache, "UPDATE customer SET nope = 'x' WHERE cid = 1")
    assert "unknown-column" in _rules(diagnostics)


def test_update_type_mismatch(cache):
    diagnostics = _lint(cache, "UPDATE customer SET cid = 'text' WHERE cid = 1")
    assert "type-mismatch" in _rules(diagnostics)


def test_exec_unknown_argument(cache):
    script = """
        CREATE PROCEDURE p2 @cid INT AS
        BEGIN
            SELECT cname FROM customer WHERE cid = @cid
        END;
        EXEC p2 @nope = 1
    """
    diagnostics = _lint(cache, script)
    assert "exec-args" in _rules(diagnostics)


def test_exec_missing_required_argument(cache):
    script = """
        CREATE PROCEDURE p3 @cid INT AS
        BEGIN
            SELECT cname FROM customer WHERE cid = @cid
        END;
        EXEC p3
    """
    diagnostics = _lint(cache, script)
    assert "exec-args" in _rules(diagnostics)


def test_exec_with_default_is_clean(cache):
    script = """
        CREATE PROCEDURE p4 @cid INT = 1 AS
        BEGIN
            SELECT cname FROM customer WHERE cid = @cid
        END;
        EXEC p4
    """
    assert _lint(cache, script) == []


def test_grant_on_unknown_object(cache):
    diagnostics = _lint(cache, "GRANT SELECT ON no_such_object TO app")
    assert _rules(diagnostics) == ["unknown-object"]


def test_create_index_on_unknown_table(cache):
    diagnostics = _lint(cache, "CREATE INDEX ix_x ON no_such_table (a)")
    assert _rules(diagnostics) == ["unknown-object"]


def test_create_index_on_unknown_column(cache):
    diagnostics = _lint(cache, "CREATE INDEX ix_x ON customer (nope)")
    assert _rules(diagnostics) == ["unknown-column"]


def test_subqueries_are_bound(cache):
    diagnostics = _lint(
        cache,
        "SELECT cname FROM customer WHERE cid IN (SELECT nope FROM orders)",
    )
    assert "unknown-column" in _rules(diagnostics)


def test_derived_table_columns_resolve(cache):
    sql = (
        "SELECT t.n FROM "
        "(SELECT segment, COUNT(*) AS n FROM customer GROUP BY segment) t"
    )
    assert _lint(cache, sql) == []


def test_overlay_create_table_then_index(cache):
    """Script-local DDL satisfies later references, as at execution time."""
    script = """
        CREATE TABLE t_new (a INT PRIMARY KEY, b VARCHAR(10));
        CREATE INDEX ix_t_new_b ON t_new (b);
        INSERT INTO t_new (a, b) VALUES (1, 'x')
    """
    assert _lint(cache, script) == []


def test_unparsable_script_reports_parse(cache):
    diagnostics = _lint(cache, "SELEC cid FORM customer")
    assert _rules(diagnostics) == ["parse"]
