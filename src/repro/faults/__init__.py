"""Deterministic fault injection for the distributed stack.

The paper's availability argument — a mid-tier cache can fail without
taking the application down — is only testable if failures can be made to
happen on demand, at exact points, reproducibly. :class:`FaultInjector`
provides that: seeded, driven entirely by call counts and *virtual* time
(never the wall clock), and a strict no-op when nothing is scheduled, so
a run with an attached-but-empty injector is byte-identical to a run
without one.
"""

from repro.faults.injector import FaultInjector, FaultRule

__all__ = ["FaultInjector", "FaultRule"]
