"""Ablation — replication polling interval: latency vs overhead.

The propagation agents "wake up periodically, check for changes and, if
there are any, apply them" (§2.2). The polling interval is the latency
knob: shorter intervals cut commit-to-apply delay but wake the machinery
more often; longer intervals batch more commands per wakeup. This sweep
quantifies the trade-off on the DES.
"""


from repro.simulation import DESConfig, simulate_cluster

from benchmarks.conftest import emit

INTERVALS = (0.05, 0.25, 1.0, 3.0)


def test_bench_poll_interval_sweep(cal_cached, benchmark, capsys):
    results = {}
    for interval in INTERVALS:
        results[interval] = simulate_cluster(
            cal_cached,
            DESConfig(
                users=60,
                mix_name="Ordering",
                servers=3,
                duration=60,
                warmup=10,
                logreader_interval=interval,
                agent_interval=interval,
            ),
        )
    lines = [f"{'interval':>9s} {'repl latency':>13s} {'samples':>8s}"]
    for interval, result in results.items():
        lines.append(
            f"{interval:9.2f} {result.replication_latency:13.3f} "
            f"{result.replication_samples:8d}"
        )
    emit(capsys, "Ablation: replication polling interval (Ordering, light load)", lines)

    latencies = [results[interval].replication_latency for interval in INTERVALS]
    # Monotone: longer polling -> higher propagation latency.
    assert all(a < b for a, b in zip(latencies, latencies[1:]))
    # The two-stage pipeline bounds latency by roughly 2x the interval
    # (plus queueing): check the order of magnitude at both ends.
    assert latencies[0] < 0.3
    assert latencies[-1] > 2.0

    benchmark.pedantic(
        lambda: simulate_cluster(
            cal_cached,
            DESConfig(users=30, mix_name="Ordering", servers=2, duration=30),
        ),
        rounds=1,
        iterations=1,
    )
