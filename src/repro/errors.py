"""Exception hierarchy for the repro engine.

Every error raised on a deliberate code path derives from :class:`ReproError`
so callers can catch engine failures without swallowing programming errors.
The hierarchy mirrors the major subsystems: SQL frontend, catalog, execution,
transactions, replication and distributed queries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro database engine.

    ``transient`` marks failures that may succeed on retry (an unreachable
    link, a crashed server mid-restart) as opposed to deterministic ones
    (constraint violations, parse errors). The resilience layer's retry
    policies and the failover router key off this flag via
    :func:`is_transient`.
    """

    transient = False


class SqlError(ReproError):
    """Base class for errors in the SQL frontend (lexing, parsing, binding)."""


class LexError(SqlError):
    """Raised when the lexer encounters an invalid token.

    Carries the 1-based ``line`` and ``column`` of the offending character.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(SqlError):
    """Raised when the parser cannot derive a statement from the token stream."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class BindError(SqlError):
    """Raised when names in a statement cannot be resolved against the catalog."""


class TypeCheckError(SqlError):
    """Raised when an expression is not well typed (e.g. ``'abc' + 1``)."""


class CatalogError(ReproError):
    """Raised for catalog violations: duplicate or missing objects."""


class PermissionError_(ReproError):
    """Raised when the session principal lacks permission on an object.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class ConstraintError(ReproError):
    """Raised when a DML statement violates a declared constraint."""


class ExecutionError(ReproError):
    """Raised for runtime failures while executing a physical plan."""


class TransactionError(ReproError):
    """Raised for invalid transaction state transitions or aborts."""


class OptimizerError(ReproError):
    """Raised when the optimizer cannot produce a plan for a valid query."""


class ReplicationError(ReproError):
    """Raised for replication configuration or propagation failures."""


class DistributedError(ReproError):
    """Raised for linked-server and distributed-transaction failures."""


class PreparedStatementError(DistributedError):
    """Raised when a prepared statement handle is unknown on the target
    server (e.g. dropped or never created). Links recover by transparently
    re-preparing the statement text."""


class LinkUnavailableError(DistributedError):
    """Raised when a linked-server call cannot reach its target.

    Transient: the fault injector raises it *before* the remote call runs,
    and real outages clear when the link recovers, so retrying cannot
    double-apply remote effects.
    """

    transient = True


class ServerUnavailableError(DistributedError):
    """Raised when a crashed (or not-yet-restarted) server is called.

    Raised at the entry points (``execute``/``prepare_sql``/
    ``execute_prepared``) before any work happens, so callers may safely
    retry or reroute the whole statement. Transient by definition: the
    server may come back.
    """

    transient = True


class CircuitOpenError(DistributedError):
    """Raised when a circuit breaker rejects a call without attempting it.

    Deliberately *not* transient: the breaker exists to stop retry storms
    against a down target, so retry policies fail fast on it. The failover
    router treats it as a reroute signal instead.
    """


class OverloadError(ReproError):
    """Raised when admission control sheds a request instead of queuing it.

    Transient by design: the overload clears as load drains, so callers
    may retry (the retry *budget* keeps shed-triggered retries from
    amplifying the very overload being shed). Raised before any statement
    effects — at the admission gate — so a shed statement can safely run
    elsewhere (a scatter slice degrading to the backend) or re-run later.
    """

    transient = True


class DeadlineExceededError(ReproError):
    """Raised when a statement's end-to-end deadline budget is exhausted.

    Deliberately *not* transient: the budget is gone, so retrying under
    the same deadline cannot help — retry policies and failover routers
    fail fast and surface the miss to the caller, who owns the deadline.
    """


class NetworkError(ReproError):
    """Base class for wire-protocol and transport failures (``repro.net``)."""


class ConnectionLostError(NetworkError):
    """Raised when the TCP connection to a wire server drops mid-call.

    Transient: the client re-dials on the next call, so retry policies
    may re-send the request. The wire protocol only marks *reads* as
    safe to retry this way — a dropped response after a write may have
    applied; callers who need exactly-once writes go through the DTC.
    """

    transient = True


class ProtocolError(NetworkError):
    """Raised on malformed or unexpected wire frames (framing violations,
    unknown opcodes, oversized frames). Deliberately *not* transient:
    a peer speaking garbage will keep speaking garbage."""


class HandshakeError(NetworkError):
    """Raised when the wire handshake is rejected: protocol version
    mismatch, or a database the server does not serve. Not transient —
    reconnecting with the same HELLO cannot succeed."""


class RemoteError(ReproError):
    """A server-side error reconstructed from a wire error frame whose
    class could not be rebuilt locally (custom constructor signature,
    unknown name). Carries the original class name in ``kind`` and the
    original ``transient`` bit as an instance attribute, so retry and
    failover logic behave identically across the wire."""

    def __init__(self, kind: str, message: str, transient: bool = False):
        super().__init__(f"[{kind}] {message}")
        self.kind = kind
        self.transient = transient


class ClientError(ReproError):
    """Raised for client-API misuse (``repro.client``): operations on a
    closed connection or cursor, fetches before any execute."""


class DsnError(ClientError):
    """Raised when a connection DSN string cannot be parsed or names an
    unknown in-process target. The message pinpoints the offending part
    (scheme, host, port, database, query parameter)."""


class PoolTimeoutError(ClientError):
    """Raised when a pool checkout cannot get a connection in time.

    Transient: the pool may free up; retrying (or shedding load) is the
    correct response.
    """

    transient = True


def is_transient(exc: BaseException) -> bool:
    """True when ``exc`` is a retry-safe transient failure."""
    return bool(getattr(exc, "transient", False))


class FreshnessError(ReproError):
    """Raised when a query's freshness requirement cannot be met locally
    and remote fallback is disabled."""


class AnalysisError(ReproError):
    """A structured static-analysis diagnostic (``repro.analysis``).

    Doubles as a value and an exception: the analysis passes collect
    instances into diagnostic lists, and the checked-execution hook raises
    the first error-severity instance when a freshly optimized plan
    violates a structural invariant.
    """

    def __init__(
        self,
        rule: str,
        message: str,
        severity: str = "error",
        location: str = "",
    ):
        where = f" at {location}" if location else ""
        super().__init__(f"[{rule}] {message}{where}")
        self.rule = rule
        self.message = message
        self.severity = severity
        self.location = location

    @property
    def is_error(self) -> bool:
        return self.severity == "error"
