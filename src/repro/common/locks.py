"""Lock primitives for the whole repository.

Every lock in the engine is created here. That single chokepoint is what
makes the locking hierarchy auditable: the ``selflint`` rule
``raw-threading-lock`` forbids calling ``threading.Lock``/``RLock``
directly anywhere else in the package, so grepping this module (and
:mod:`repro.engine.locks`, which composes these primitives into the
database latch and table lock manager) shows every synchronization
point in the system.

The primitives:

* :func:`mutex` / :func:`condition` — thin factories over the stdlib
  primitives, for leaf-level state protection (metric values, cache
  entries, WAL appends, pool bookkeeping).
* :class:`RWLock` — a writer-preferring reader/writer lock with
  per-thread exclusive reentrancy. Readers share; a waiting writer
  blocks new readers so a steady read stream cannot starve DDL or an
  explicit transaction.

Timeouts are wall-clock (they bound how long a *real* thread waits);
simulated time never appears here.

When the lockdep-style witness is active (``REPRO_LOCK_WITNESS=1``, see
:mod:`repro.common.witness`), the factories hand out duck-typed wrappers
that record every acquisition against the modeled lock hierarchy; the
creation site of each lock names its class. The wrappers are declared as
the stdlib types (a cast) so annotations downstream stay unchanged.
"""

from __future__ import annotations

import threading
from typing import Optional, cast

from repro.common import witness as _witness


def _witnessed(inner, site: str) -> "_witness.WitnessedLock":
    cls = _witness.lock_class(site, _witness.level_for_site(site))
    return _witness.WitnessedLock(inner, cls)


def mutex() -> threading.Lock:
    """A plain mutual-exclusion lock (the only sanctioned way to get one)."""
    inner = threading.Lock()
    if _witness.active_witness() is None:
        return inner
    return cast(threading.Lock, _witnessed(inner, _witness.caller_site()))


def rmutex() -> threading.RLock:
    """A reentrant mutual-exclusion lock."""
    inner = threading.RLock()
    if _witness.active_witness() is None:
        return inner
    return cast(threading.RLock, _witnessed(inner, _witness.caller_site()))


def condition(lock: Optional[threading.Lock] = None) -> threading.Condition:
    """A condition variable (over ``lock``, or a fresh mutex).

    With the witness active the underlying mutex is witnessed; the
    stdlib ``Condition`` falls back to plain ``acquire``/``release`` on
    a duck-typed lock, so waits keep the held-lock stack accurate.
    """
    return threading.Condition(lock if lock is not None else mutex())


class RWLock:
    """A writer-preferring reader/writer lock.

    * ``acquire_shared`` admits any number of concurrent readers, but
      blocks while a writer holds the lock **or is waiting for it** —
      writer preference, so writers cannot starve under a continuous
      stream of readers.
    * ``acquire_exclusive`` waits for all readers to drain and is
      **reentrant per thread**: the owning thread may re-acquire (DDL
      executed inside an explicit transaction, nested statement
      dispatch), and a thread that owns the lock exclusively passes
      straight through ``acquire_shared``.
    """

    def __init__(self) -> None:
        # The internal condition is deliberately *unwitnessed* (raw
        # construction is sanctioned in this chokepoint module): it only
        # guards this lock's own counters and is held exactly while the
        # RWLock acquisition itself is recorded — witnessing it would
        # read as a leaf lock held while a latch-level class is taken.
        self._cond = threading.Condition(threading.Lock())
        self._readers = 0
        self._writer: Optional[int] = None  # owning thread ident
        self._writer_depth = 0
        self._writers_waiting = 0
        site = _witness.caller_site()
        self._witness_class: Optional[_witness.LockClass] = _witness.lock_class(
            site, _witness.level_for_site(site)
        )

    def _note_acquired(self) -> None:
        witness = _witness.active_witness()
        if witness is not None and self._witness_class is not None:
            witness.on_acquire(self, self._witness_class)

    def _note_released(self) -> None:
        witness = _witness.active_witness()
        if witness is not None and self._witness_class is not None:
            witness.on_release(self)

    # -- shared (readers) ------------------------------------------------

    def acquire_shared(self, timeout: Optional[float] = None) -> bool:
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:  # exclusive owner reads freely
                while self._writer is not None or self._writers_waiting:
                    if not self._cond.wait(timeout):
                        return False
                self._readers += 1
        self._note_acquired()
        return True

    def release_shared(self) -> None:
        with self._cond:
            if self._writer != threading.get_ident():
                # (the owner fast path is a matching no-op)
                if self._readers <= 0:
                    raise RuntimeError("release_shared without a matching acquire")
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()
        self._note_released()

    # -- exclusive (writers) ---------------------------------------------

    def acquire_exclusive(self, timeout: Optional[float] = None) -> bool:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
            else:
                self._writers_waiting += 1
                try:
                    while self._writer is not None or self._readers:
                        if not self._cond.wait(timeout):
                            return False
                finally:
                    self._writers_waiting -= 1
                self._writer = me
                self._writer_depth = 1
        self._note_acquired()
        return True

    def release_exclusive(self) -> None:
        with self._cond:
            if self._writer != threading.get_ident():
                raise RuntimeError("release_exclusive by a non-owning thread")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()
        self._note_released()

    # -- introspection ----------------------------------------------------

    def owns_exclusive(self) -> bool:
        """True when the calling thread holds the lock exclusively."""
        return self._writer == threading.get_ident()

    @property
    def readers(self) -> int:
        return self._readers

    # -- context managers --------------------------------------------------

    class _Shared:
        __slots__ = ("_lock",)

        def __init__(self, lock: "RWLock"):
            self._lock = lock

        def __enter__(self) -> "RWLock":
            self._lock.acquire_shared()
            return self._lock

        def __exit__(self, *exc) -> None:
            self._lock.release_shared()

    class _Exclusive:
        __slots__ = ("_lock",)

        def __init__(self, lock: "RWLock"):
            self._lock = lock

        def __enter__(self) -> "RWLock":
            self._lock.acquire_exclusive()
            return self._lock

        def __exit__(self, *exc) -> None:
            self._lock.release_exclusive()

    def shared(self) -> "RWLock._Shared":
        return RWLock._Shared(self)

    def exclusive(self) -> "RWLock._Exclusive":
        return RWLock._Exclusive(self)

    def __repr__(self) -> str:
        return (
            f"<RWLock readers={self._readers} writer={self._writer} "
            f"waiting={self._writers_waiting}>"
        )
