"""Static lock-order analyzer over the repo AST + a call graph.

Walks every module under the package root and extracts:

* **lock creation sites** — attributes assigned from the
  :mod:`repro.common.locks` chokepoint factories (``mutex``, ``rmutex``,
  ``condition``, ``RWLock``), from :class:`~repro.engine.locks.DatabaseLatch`
  / :class:`~repro.engine.locks.TableLockManager`, or (flagged) from raw
  ``threading`` primitives;
* **acquisition regions** — ``with lock:``, ``with rw.shared():`` /
  ``.exclusive():``, ``with manager.locking(...):``, and bare
  ``acquire_*``/``release_*`` pairs (an unmatched acquire holds to the
  end of the function — the explicit-transaction pattern);
* **a call graph** — conservative resolution of ``self.method()``,
  same-module functions, explicitly imported functions, ``Class.method``
  and locals assigned from known constructors. Unresolvable calls are
  *dropped*: the analyzer under-approximates, so a missed edge is a
  missed finding, never a false alarm.

Function summaries (locks acquired, blocking operations performed) close
transitively over the call graph, then every acquisition made while a
lock is held becomes an edge in the global lock-acquisition graph, which
is checked against the modeled hierarchy
(:mod:`repro.analysis.concurrency.model`):

======================== ==============================================
rule                     finding
======================== ==============================================
``lock-order-inversion`` an edge that climbs the hierarchy (a lower
                         level held while a higher one is acquired)
``same-class-nesting``   two instances of one unordered class nested
``lock-cycle``           a cycle among same-level classes
``non-chokepoint-lock``  acquisition of a raw ``threading`` primitive
``blocking-under-latch`` I/O, ``sleep`` or a link round trip while an
                         engine latch or table lock is held (the two
                         sanctioned cache->backend forwarding sites in
                         ``engine/server.py`` report as notes)
======================== ==============================================
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.concurrency.model import (
    LEVEL_LATCH,
    LEVEL_TABLE,
    allowed_edge,
    find_cycle,
    level_for_site,
)
from repro.analysis.selflint import _python_files
from repro.errors import AnalysisError

#: Functions sanctioned to perform link round trips while holding engine
#: locks: the by-design one-directional cache -> backend forwarding of
#: DML and procedure calls (the remote tier's locks sit strictly below
#: the caller's in the cross-server nesting model). Reported as notes.
SANCTIONED_BLOCKING = frozenset(
    {
        "repro/engine/server.py::Server._forward_dml",
        "repro/engine/server.py::Server._execute_procedure_call",
    }
)

_FACTORY_LOCKS = {"mutex", "rmutex", "condition"}
_RAW_LOCK_CALLS = {"threading.Lock", "threading.RLock", "threading.Condition"}
_LINK_METHODS = {"execute_remote_sql", "execute_statement_text", "execute_rows"}
_BLOCKING_ROOTS = {"socket", "subprocess", "requests", "urllib"}

#: The lock chokepoints themselves: the raw primitives *inside* these
#: modules are the chokepoint's own implementation (RWLock's condition,
#: the witness's registry lock) — everywhere else raw acquisition is a
#: non-chokepoint-lock finding.
_CHOKEPOINT_MODULES = frozenset(
    {"repro/common/locks.py", "repro/common/witness.py"}
)


@dataclass(frozen=True)
class LockSpec:
    """One static lock class."""

    key: str  # graph key: "latch", "table", or "<path>::<owner>.<attr>"
    level: int
    ordered: bool = False
    raw: bool = False  # a raw threading primitive (non-chokepoint)
    manager: bool = False  # a TableLockManager attribute


@dataclass
class _ClassInfo:
    name: str
    path: str
    bases: List[str] = field(default_factory=list)
    methods: Set[str] = field(default_factory=set)
    lock_attrs: Dict[str, LockSpec] = field(default_factory=dict)


@dataclass
class _ModuleInfo:
    path: str
    tree: ast.Module
    classes: Dict[str, _ClassInfo] = field(default_factory=dict)
    functions: Set[str] = field(default_factory=set)
    #: imported name -> (module dotted path, original symbol or None)
    imports: Dict[str, Tuple[str, Optional[str]]] = field(default_factory=dict)


@dataclass
class _Summary:
    qualname: str
    path: str
    acquires: Set[LockSpec] = field(default_factory=set)
    blocking: List[Tuple[str, str]] = field(default_factory=list)  # (desc, site)
    calls: Set[str] = field(default_factory=set)
    #: direct edges: (held spec, acquired spec, site)
    edges: List[Tuple[LockSpec, LockSpec, str]] = field(default_factory=list)
    #: calls made while holding: (held specs, callee qualname, site)
    under_lock: List[Tuple[Tuple[LockSpec, ...], str, str]] = field(default_factory=list)
    #: blocking ops performed while an engine lock is held: (held, desc, site)
    blocking_under: List[Tuple[LockSpec, str, str]] = field(default_factory=list)


@dataclass
class LockOrderReport:
    """The analyzer's output: diagnostics plus the modeled graph."""

    diagnostics: List[AnalysisError]
    #: (from key, to key) -> example sites
    edges: Dict[Tuple[str, str], List[str]]
    #: key -> (level, ordered)
    classes: Dict[str, Tuple[int, bool]]

    @property
    def errors(self) -> List[AnalysisError]:
        return [diagnostic for diagnostic in self.diagnostics if diagnostic.is_error]


def _dotted(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def _module_to_path(dotted: str, modules: Dict[str, _ModuleInfo]) -> Optional[str]:
    if not dotted.startswith("repro"):
        return None
    parts = dotted.split(".")
    flat = "/".join(parts) + ".py"
    if flat in modules:
        return flat
    package = "/".join(parts) + "/__init__.py"
    if package in modules:
        return package
    return None


def _collect_imports(tree: ast.Module) -> Dict[str, Tuple[str, Optional[str]]]:
    imports: Dict[str, Tuple[str, Optional[str]]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports[alias.asname or alias.name.split(".")[0]] = (alias.name, None)
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                imports[alias.asname or alias.name] = (node.module, alias.name)
    return imports


def _classify_creation(
    call: ast.Call, path: str, imports: Dict[str, Tuple[str, Optional[str]]]
) -> Optional[Tuple[str, bool, bool]]:
    """What lock does this constructor call mint?

    Returns ``(kind, raw, reentrant)`` where kind is ``factory`` /
    ``rwlock`` / ``latch`` / ``manager``, or None for non-lock calls.
    A reentrant lock's self-nesting (``rmutex`` re-acquired through a
    method of the same object) is sanctioned, like ordered classes.
    """
    dotted = _dotted(call.func)
    if dotted is None:
        return None
    tail = dotted.split(".")[-1]
    if dotted in _RAW_LOCK_CALLS:
        return ("factory", True, tail != "Lock")
    if tail in _FACTORY_LOCKS:
        origin = imports.get(tail)
        if dotted in _FACTORY_LOCKS and (
            origin is None or origin[0].startswith("repro")
        ):
            return ("factory", False, tail == "rmutex")
        if dotted.startswith(("locks.", "repro.")):
            return ("factory", False, tail == "rmutex")
        return None
    if tail == "RWLock":
        return ("rwlock", False, False)
    if tail == "DatabaseLatch":
        return ("latch", False, False)
    if tail == "TableLockManager":
        return ("manager", False, False)
    if tail in {"Lock", "RLock", "Condition"}:
        origin = imports.get(tail)
        if origin is not None and origin[0] == "threading":
            return ("factory", True, tail != "Lock")
    return None


def _spec_for_creation(
    kind: str, raw: bool, reentrant: bool, path: str, owner: str, attr: str
) -> LockSpec:
    if kind == "latch":
        return LockSpec(key="latch", level=LEVEL_LATCH)
    if kind == "manager":
        return LockSpec(key=f"{path}::{owner}.{attr}", level=LEVEL_TABLE, manager=True)
    if raw and path in _CHOKEPOINT_MODULES:
        raw = False  # the chokepoint's own internals are the exemption
    return LockSpec(
        key=f"{path}::{owner}.{attr}",
        level=level_for_site(path),
        ordered=reentrant,
        raw=raw,
    )


_TABLE_SPEC = LockSpec(key="table", level=LEVEL_TABLE, ordered=True)
_LATCH_SPEC = LockSpec(key="latch", level=LEVEL_LATCH)


def _collect_module(path: str, tree: ast.Module) -> _ModuleInfo:
    info = _ModuleInfo(path=path, tree=tree, imports=_collect_imports(tree))
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.functions.add(node.name)
        elif isinstance(node, ast.ClassDef):
            cls = _ClassInfo(name=node.name, path=path)
            cls.bases = [base for base in (_dotted(b) for b in node.bases) if base]
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    cls.methods.add(item.name)
                    for stmt in ast.walk(item):
                        if not isinstance(stmt, ast.Assign):
                            continue
                        if not isinstance(stmt.value, ast.Call):
                            continue
                        created = _classify_creation(stmt.value, path, info.imports)
                        if created is None:
                            continue
                        kind, raw, reentrant = created
                        for target in stmt.targets:
                            if (
                                isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                            ):
                                cls.lock_attrs[target.attr] = _spec_for_creation(
                                    kind, raw, reentrant, path, node.name, target.attr
                                )
            info.classes[node.name] = cls
    return info


class _Analyzer:
    def __init__(self, modules: Dict[str, _ModuleInfo]):
        self.modules = modules
        self.summaries: Dict[str, _Summary] = {}
        # attr name -> spec, for unambiguous cross-object references like
        # ``database.lock_manager`` (dropped when two classes disagree).
        self.global_attrs: Dict[str, Optional[LockSpec]] = {}
        for module in modules.values():
            for cls in module.classes.values():
                for attr, spec in cls.lock_attrs.items():
                    if attr in self.global_attrs:
                        existing = self.global_attrs[attr]
                        if existing is None or existing.key != spec.key:
                            self.global_attrs[attr] = None
                    else:
                        self.global_attrs[attr] = spec

    # -- call resolution ---------------------------------------------------

    def _resolve_method(
        self, module: _ModuleInfo, class_name: str, method: str, seen: Optional[Set[str]] = None
    ) -> Optional[str]:
        seen = seen or set()
        marker = f"{module.path}::{class_name}"
        if marker in seen:
            return None
        seen.add(marker)
        cls = module.classes.get(class_name)
        if cls is None:
            origin = module.imports.get(class_name)
            if origin is None:
                return None
            target_path = _module_to_path(origin[0], self.modules)
            if target_path is None:
                return None
            return self._resolve_method(
                self.modules[target_path], origin[1] or class_name, method, seen
            )
        if method in cls.methods:
            return f"{module.path}::{class_name}.{method}"
        for base in cls.bases:
            resolved = self._resolve_method(module, base.split(".")[-1], method, seen)
            if resolved is not None:
                return resolved
        return None

    def _resolve_call(
        self,
        call: ast.Call,
        module: _ModuleInfo,
        current_class: Optional[str],
        local_classes: Dict[str, Tuple[str, str]],
    ) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in module.functions:
                return f"{module.path}::{name}"
            if name in module.classes:
                return self._resolve_method(module, name, "__init__")
            origin = module.imports.get(name)
            if origin is not None and origin[1] is not None:
                target_path = _module_to_path(origin[0], self.modules)
                if target_path is not None:
                    target = self.modules[target_path]
                    if origin[1] in target.functions:
                        return f"{target_path}::{origin[1]}"
                    if origin[1] in target.classes:
                        return self._resolve_method(target, origin[1], "__init__")
            return None
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name):
                if base.id == "self" and current_class is not None:
                    return self._resolve_method(module, current_class, func.attr)
                if base.id in module.classes or base.id in module.imports:
                    return self._resolve_method(module, base.id, func.attr)
                local = local_classes.get(base.id)
                if local is not None:
                    target_path, class_name = local
                    return self._resolve_method(
                        self.modules[target_path], class_name, func.attr
                    )
        return None

    # -- lock expression resolution ----------------------------------------

    def _resolve_lock(
        self,
        node: ast.AST,
        module: _ModuleInfo,
        current_class: Optional[str],
        local_locks: Dict[str, LockSpec],
    ) -> Optional[LockSpec]:
        if isinstance(node, ast.Name):
            return local_locks.get(node.id)
        if isinstance(node, ast.Attribute):
            if node.attr == "latch":
                return _LATCH_SPEC
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and current_class is not None
            ):
                cls = module.classes.get(current_class)
                if cls is not None and node.attr in cls.lock_attrs:
                    return cls.lock_attrs[node.attr]
            spec = self.global_attrs.get(node.attr)
            if spec is not None:
                return spec
            return None
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr == "lock_for":
                return _TABLE_SPEC
        return None

    # -- blocking-call classification --------------------------------------

    def _blocking_call(
        self, call: ast.Call, module: _ModuleInfo
    ) -> Optional[str]:
        dotted = _dotted(call.func)
        if dotted is not None:
            if dotted == "time.sleep":
                return "time.sleep()"
            if dotted == "sleep":
                origin = module.imports.get("sleep")
                if origin is not None and origin[0] == "time":
                    return "time.sleep()"
            if dotted == "open":
                return "open()"
            if dotted.split(".")[0] in _BLOCKING_ROOTS:
                return f"{dotted}()"
        if isinstance(call.func, ast.Attribute):
            if call.func.attr in _LINK_METHODS:
                return f"link round trip .{call.func.attr}()"
            base = _dotted(call.func.value)
            if base is not None:
                tail = base.split(".")[-1]
                if tail == "link" or tail.endswith("_link"):
                    return f"link round trip {base}.{call.func.attr}()"
        return None

    # -- function body walk ------------------------------------------------

    def summarize_function(
        self,
        module: _ModuleInfo,
        node: ast.AST,
        qualname: str,
        current_class: Optional[str],
    ) -> _Summary:
        summary = _Summary(qualname=qualname, path=module.path)
        sanctioned = qualname in SANCTIONED_BLOCKING
        held: List[LockSpec] = []
        open_acquires: List[LockSpec] = []
        local_locks: Dict[str, LockSpec] = {}
        local_classes: Dict[str, Tuple[str, str]] = {}

        def site(item: ast.AST) -> str:
            return f"{module.path}:{getattr(item, 'lineno', 0)}"

        def note_acquire(spec: LockSpec, at: ast.AST) -> None:
            summary.acquires.add(spec)
            for holder in held:
                summary.edges.append((holder, spec, site(at)))

        def scan_calls(expr: ast.AST) -> None:
            for call in ast.walk(expr):
                if not isinstance(call, ast.Call):
                    continue
                blocking = self._blocking_call(call, module)
                if blocking is not None and not sanctioned:
                    summary.blocking.append((blocking, site(call)))
                if blocking is not None:
                    for holder in held:
                        if holder.level in (LEVEL_LATCH, LEVEL_TABLE):
                            summary.blocking_under.append(
                                (holder, blocking, site(call))
                            )
                callee = self._resolve_call(call, module, current_class, local_classes)
                if callee is not None:
                    summary.calls.add(callee)
                    if held:
                        summary.under_lock.append((tuple(held), callee, site(call)))

        def handle_assign(stmt: ast.Assign) -> None:
            if len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name):
                name = stmt.targets[0].id
                spec = self._resolve_lock(
                    stmt.value, module, current_class, local_locks
                )
                if spec is not None:
                    local_locks[name] = spec
                if isinstance(stmt.value, ast.Call):
                    func = stmt.value.func
                    if isinstance(func, ast.Name):
                        if func.id in module.classes:
                            local_classes[name] = (module.path, func.id)
                        else:
                            origin = module.imports.get(func.id)
                            if origin is not None and origin[1] is not None:
                                target = _module_to_path(origin[0], self.modules)
                                if (
                                    target is not None
                                    and origin[1] in self.modules[target].classes
                                ):
                                    local_classes[name] = (target, origin[1])
            scan_calls(stmt.value)

        def handle_bare_call(stmt: ast.Expr) -> bool:
            """Bare acquire/release statements; True when consumed."""
            call = stmt.value
            if not (isinstance(call, ast.Call) and isinstance(call.func, ast.Attribute)):
                return False
            method = call.func.attr
            if method in ("acquire_shared", "acquire_exclusive", "acquire"):
                spec = self._resolve_lock(
                    call.func.value, module, current_class, local_locks
                )
                if spec is None:
                    return False
                note_acquire(spec, stmt)
                held.append(spec)
                open_acquires.append(spec)
                return True
            if method in ("release_shared", "release_exclusive", "release"):
                spec = self._resolve_lock(
                    call.func.value, module, current_class, local_locks
                )
                if spec is None:
                    return False
                for index in range(len(held) - 1, -1, -1):
                    if held[index].key == spec.key and held[index] in open_acquires:
                        open_acquires.remove(held[index])
                        del held[index]
                        break
                return True
            return False

        def walk_block(statements: List[ast.stmt]) -> None:
            for stmt in statements:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    continue  # nested definitions are summarized separately
                if isinstance(stmt, ast.With):
                    entered: List[LockSpec] = []
                    for item in stmt.items:
                        spec = self._region_spec(
                            item.context_expr, module, current_class, local_locks
                        )
                        if spec is not None:
                            note_acquire(spec, item.context_expr)
                            held.append(spec)
                            entered.append(spec)
                    walk_block(stmt.body)
                    for spec in reversed(entered):
                        held.remove(spec)
                    continue
                if isinstance(stmt, ast.Assign):
                    handle_assign(stmt)
                    continue
                if isinstance(stmt, ast.Expr):
                    if handle_bare_call(stmt):
                        continue
                    scan_calls(stmt.value)
                    continue
                if isinstance(stmt, ast.If):
                    scan_calls(stmt.test)
                    walk_block(stmt.body)
                    walk_block(stmt.orelse)
                    continue
                if isinstance(stmt, (ast.While,)):
                    scan_calls(stmt.test)
                    walk_block(stmt.body)
                    walk_block(stmt.orelse)
                    continue
                if isinstance(stmt, ast.For):
                    scan_calls(stmt.iter)
                    walk_block(stmt.body)
                    walk_block(stmt.orelse)
                    continue
                if isinstance(stmt, ast.Try):
                    walk_block(stmt.body)
                    for handler in stmt.handlers:
                        walk_block(handler.body)
                    walk_block(stmt.orelse)
                    walk_block(stmt.finalbody)
                    continue
                scan_calls(stmt)

        walk_block(getattr(node, "body", []))
        return summary

    def _region_spec(
        self,
        expr: ast.AST,
        module: _ModuleInfo,
        current_class: Optional[str],
        local_locks: Dict[str, LockSpec],
    ) -> Optional[LockSpec]:
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
            method = expr.func.attr
            if method in ("shared", "exclusive"):
                return self._resolve_lock(
                    expr.func.value, module, current_class, local_locks
                )
            if method == "locking":
                base = self._resolve_lock(
                    expr.func.value, module, current_class, local_locks
                )
                if base is not None and base.manager:
                    return _TABLE_SPEC
                dotted = _dotted(expr.func.value)
                if dotted is not None and dotted.split(".")[-1] == "lock_manager":
                    return _TABLE_SPEC
            return None
        return self._resolve_lock(expr, module, current_class, local_locks)

    # -- whole-package analysis --------------------------------------------

    def build_summaries(self) -> None:
        for module in self.modules.values():
            for node in module.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{module.path}::{node.name}"
                    self.summaries[qualname] = self.summarize_function(
                        module, node, qualname, None
                    )
                elif isinstance(node, ast.ClassDef):
                    for item in node.body:
                        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                            qualname = f"{module.path}::{node.name}.{item.name}"
                            self.summaries[qualname] = self.summarize_function(
                                module, item, qualname, node.name
                            )

    def close_transitively(
        self,
    ) -> Tuple[Dict[str, Set[LockSpec]], Dict[str, List[Tuple[str, str]]]]:
        """Fixpoint of (locks acquired, blocking ops) over the call graph."""
        acquires: Dict[str, Set[LockSpec]] = {
            name: set(summary.acquires) for name, summary in self.summaries.items()
        }
        blocking: Dict[str, List[Tuple[str, str]]] = {
            name: list(summary.blocking) for name, summary in self.summaries.items()
        }
        changed = True
        while changed:
            changed = False
            for name, summary in self.summaries.items():
                for callee in summary.calls:
                    if callee == name or callee not in self.summaries:
                        continue
                    before = len(acquires[name])
                    acquires[name] |= acquires[callee]
                    if len(acquires[name]) != before:
                        changed = True
                    known = {entry for entry in blocking[name]}
                    for entry in blocking[callee]:
                        if entry not in known:
                            blocking[name].append(entry)
                            changed = True
        return acquires, blocking


def iter_package_modules(root: Optional[str] = None) -> Iterator[Tuple[str, str]]:
    """Yield ``(normalized path, source)`` for every module under root."""
    if root is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
    for full_path, rel_path in _python_files(root):
        with open(full_path, "r", encoding="utf-8") as handle:
            yield rel_path.replace(os.sep, "/"), handle.read()


def analyze_lock_order(root: Optional[str] = None) -> LockOrderReport:
    """Run the static lock-order analysis over a package tree."""
    modules: Dict[str, _ModuleInfo] = {}
    diagnostics: List[AnalysisError] = []
    for path, source in iter_package_modules(root):
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            diagnostics.append(
                AnalysisError(
                    "parse",
                    f"module does not parse: {exc.msg}",
                    location=f"{path}:{exc.lineno}",
                )
            )
            continue
        modules[path] = _collect_module(path, tree)

    analyzer = _Analyzer(modules)
    analyzer.build_summaries()
    transitive_acquires, transitive_blocking = analyzer.close_transitively()

    classes: Dict[str, Tuple[int, bool]] = {}
    edges: Dict[Tuple[str, str], List[str]] = {}

    def note_class(spec: LockSpec) -> None:
        classes.setdefault(spec.key, (spec.level, spec.ordered))

    def note_edge(held: LockSpec, acquired: LockSpec, at: str) -> None:
        note_class(held)
        note_class(acquired)
        sites = edges.setdefault((held.key, acquired.key), [])
        if len(sites) < 3:
            sites.append(at)

    for summary in analyzer.summaries.values():
        for held, acquired, at in summary.edges:
            note_edge(held, acquired, at)
        for held_specs, callee, at in summary.under_lock:
            for acquired in transitive_acquires.get(callee, set()):
                for held in held_specs:
                    note_edge(held, acquired, at)
        for spec in summary.acquires:
            note_class(spec)
            if spec.raw:
                diagnostics.append(
                    AnalysisError(
                        "non-chokepoint-lock",
                        f"{summary.qualname} acquires a raw threading primitive "
                        f"({spec.key}); mint it through repro.common.locks so "
                        "the witness and the hierarchy see it",
                        location=summary.path,
                    )
                )

    # -- edge legality against the modeled hierarchy -----------------------
    for (held_key, acquired_key), sites in sorted(edges.items()):
        held_level, _ = classes[held_key]
        acquired_level, acquired_ordered = classes[acquired_key]
        same = held_key == acquired_key
        if allowed_edge(held_level, acquired_level, same, acquired_ordered):
            continue
        rule = "same-class-nesting" if same else "lock-order-inversion"
        detail = (
            "a second instance of an unordered class"
            if same
            else f"level {acquired_level} acquired under level {held_level}"
        )
        diagnostics.append(
            AnalysisError(
                rule,
                f"{held_key} -> {acquired_key}: {detail}",
                location=sites[0],
            )
        )

    # -- cycles over the acquisition graph ---------------------------------
    ordered_keys = {key for key, (_, ordered) in classes.items() if ordered}
    cycle = find_cycle(edges.keys(), ordered_classes=ordered_keys)
    if cycle is not None:
        diagnostics.append(
            AnalysisError(
                "lock-cycle",
                "potential deadlock: acquisition cycle "
                + " -> ".join(cycle),
                location=edges.get((cycle[0], cycle[1]), ["<graph>"])[0],
            )
        )

    # -- blocking while an engine latch / table lock is held ---------------
    for summary in analyzer.summaries.values():
        severity = "note" if summary.qualname in SANCTIONED_BLOCKING else "error"
        for held, desc, at in summary.blocking_under:
            diagnostics.append(
                AnalysisError(
                    "blocking-under-latch",
                    f"{summary.qualname} performs {desc} while holding "
                    f"{held.key}"
                    + (
                        " (sanctioned cache->backend forwarding)"
                        if severity == "note"
                        else "; every waiter on that lock stalls behind the I/O"
                    ),
                    severity=severity,
                    location=at,
                )
            )
        for held_specs, callee, at in summary.under_lock:
            if not any(h.level in (LEVEL_LATCH, LEVEL_TABLE) for h in held_specs):
                continue
            for desc, origin in transitive_blocking.get(callee, []):
                engine_held = next(
                    h for h in held_specs if h.level in (LEVEL_LATCH, LEVEL_TABLE)
                )
                diagnostics.append(
                    AnalysisError(
                        "blocking-under-latch",
                        f"{summary.qualname} holds {engine_held.key} across a "
                        f"call to {callee}, which performs {desc} at {origin}",
                        location=at,
                    )
                )

    return LockOrderReport(diagnostics=diagnostics, edges=edges, classes=classes)
