"""MTCache reproduction: transparent mid-tier database caching.

A pure-Python reproduction of *MTCache: Transparent Mid-Tier Database
Caching in SQL Server* (Larson, Goldstein, Zhou - SIGMOD 2003), including
the relational engine substrate, transactional replication, distributed
queries, the MTCache optimizer extensions (DataTransfer, dynamic plans)
and the TPC-W evaluation.

Quickstart::

    from repro import Server, MTCacheDeployment

    backend = Server("backend")
    db = backend.create_database("shop")
    backend.execute("CREATE TABLE customer (cid INT PRIMARY KEY, cname VARCHAR(40))")
    ...
    deployment = MTCacheDeployment(backend, "shop")
    cache = deployment.add_cache_server("cache1")
    cache.create_cached_view(
        "CREATE CACHED VIEW cust1000 AS SELECT cid, cname FROM customer WHERE cid <= 1000"
    )
    result = cache.execute("SELECT cname FROM customer WHERE cid = @cid", params={"cid": 7})
"""

from repro.client import Connection, ConnectionPool, Cursor, connect
from repro.common.clock import SimulatedClock
from repro.engine import Database, Result, Server, Session
from repro.faults import FaultInjector
from repro.mtcache import CacheServer, MTCacheDeployment
from repro.optimizer import CostModel, Optimizer
from repro.resilience import CircuitBreaker, FailoverRouter, RetryPolicy

__version__ = "1.0.0"

__all__ = [
    "Connection",
    "ConnectionPool",
    "Cursor",
    "connect",
    "SimulatedClock",
    "Database",
    "Result",
    "Server",
    "Session",
    "FaultInjector",
    "CacheServer",
    "MTCacheDeployment",
    "CostModel",
    "Optimizer",
    "CircuitBreaker",
    "FailoverRouter",
    "RetryPolicy",
    "__version__",
]
