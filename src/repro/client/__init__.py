"""The unified client API (DBAPI-2.0 flavoured).

This package is the one sanctioned way for application code to talk to
the engine. Historically there were three overlapping entrypoints —
``Server.execute`` with a hand-made :class:`~repro.engine.session.Session`,
``OdbcConnection.execute``, and the resilience router's ``execute`` —
each with a slightly different signature. They all still work (as thin
delegating shims), but new code goes through:

    connection = connect(server_or_cache, database="tpcw")
    cursor = connection.cursor()
    cursor.execute("SELECT cname FROM customer WHERE cid = @cid", {"cid": 7})
    for row in cursor:
        ...
    connection.commit()

and under load, through a bounded :class:`ConnectionPool` whose checkout
health-checks each connection via the engine's ``healthy()`` probes.

The selflint rule ``session-construction`` enforces the funnel: outside
this package and ``repro.engine`` itself, nothing constructs a raw
``Session`` — connections own their sessions.
"""

from repro.client.connection import Connection, Cursor, connect
from repro.client.pool import ConnectionPool
from repro.client.shard_router import ShardRouter

__all__ = ["Connection", "ConnectionPool", "Cursor", "ShardRouter", "connect"]
