"""Obs — always-on observability must be cheap.

The observability subsystem (``repro.obs``) keeps its *metrics* pillar on
in every configuration: registry-backed work counters and the statement
latency histogram. Trace spans are also on by default but can be switched
off per server (``server.tracer.enabled = False``) when every last
microsecond matters.

This bench runs the same statement loops against three otherwise
identical servers:

* ``observability=False`` — plain dataclass counters, no tracer (baseline);
* metrics only — ``observability=True`` with the tracer disabled;
* full — metrics plus batch/statement trace spans.

Two loops bracket the engine's statement cost range: a single-row point
query (the adversarial case — per-statement fixed costs dominate) and a
~100-row range scan (a representative SELECT, where the same fixed costs
amortize over real operator work). The <5% design target applies to the
representative loop; the point-query number is emitted for honesty. The
asserted bounds are deliberately loose because CI machines are noisy.
"""

import time

from benchmarks.conftest import emit
from repro.engine import Server

ROWS = 500
ITERATIONS = 1200
ROUNDS = 5
LOOPS = {
    "point query": ("SELECT cname FROM customer WHERE cid = @cid", lambda i: (i % ROWS) + 1),
    "range scan": ("SELECT cname FROM customer WHERE cid <= @cid", lambda i: 100),
}


def _build_server(name: str, observability: bool) -> Server:
    server = Server(name, observability=observability)
    server.create_database("shop")
    server.execute(
        "CREATE TABLE customer (cid INT PRIMARY KEY, cname VARCHAR(40) NOT NULL)"
    )
    shop = server.database("shop")
    shop.bulk_load("customer", [(i, f"cust{i}") for i in range(1, ROWS + 1)])
    shop.analyze_all()
    return server


def _statement_loop(server: Server, loop: str) -> float:
    """Seconds for one round of statements (plan cache warm)."""
    sql, param = LOOPS[loop]
    start = time.perf_counter()
    for i in range(ITERATIONS):
        server.execute(sql, params={"cid": param(i)})
    return time.perf_counter() - start


def _measure(server: Server, loop: str) -> float:
    _statement_loop(server, loop)  # warm parse/plan caches before timing
    return min(_statement_loop(server, loop) for _ in range(ROUNDS))


def test_bench_obs_overhead(benchmark, capsys):
    baseline = _build_server("obs_off", observability=False)
    metrics_only = _build_server("obs_metrics", observability=True)
    metrics_only.tracer.enabled = False
    full = _build_server("obs_full", observability=True)

    lines = []
    overheads = {}
    for loop in LOOPS:
        base_time = _measure(baseline, loop)
        metrics_time = _measure(metrics_only, loop)
        full_time = _measure(full, loop)
        metrics_overhead = metrics_time / base_time - 1.0
        full_overhead = full_time / base_time - 1.0
        overheads[loop] = metrics_overhead
        lines.append(
            f"{loop:12s} baseline {base_time * 1e6 / ITERATIONS:7.1f} us/stmt"
            f"   metrics-only {metrics_overhead:+6.1%}"
            f"   +tracing {full_overhead:+6.1%}"
        )
    emit(capsys, "Obs: always-on observability overhead (engine micro loops)", lines)

    # Both configurations computed the same answers and counted the same
    # work — the registry facade must not change semantics.
    assert metrics_only.total_work.rows_returned == baseline.total_work.rows_returned
    # The observed servers actually recorded observability data.
    assert metrics_only.metrics.histogram("engine.statement_seconds").count > 0
    # Representative statement: designed for <5%, asserted at 15% for CI
    # noise. Point query (adversarial fixed-cost case, ~2 us absolute
    # delta so the percentage is noisy): gross-regression guard only.
    assert overheads["range scan"] < 0.15, (
        f"always-on metrics overhead {overheads['range scan']:.1%} exceeds bound"
    )
    assert overheads["point query"] < 0.50, (
        f"point-query metrics overhead {overheads['point query']:.1%} exceeds bound"
    )

    benchmark(lambda: metrics_only.execute(
        "SELECT cname FROM customer WHERE cid = @cid", params={"cid": 1}
    ))
