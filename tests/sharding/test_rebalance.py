"""Rebalancing: add-shard splits, boundary moves, tick-driven execution."""

from __future__ import annotations

import pytest

from repro.client.connection import connect
from repro.sharding import ShardedDeployment
from repro.tpcw import TPCWConfig

pytestmark = pytest.mark.shard

CONFIG = dict(num_items=100, num_ebs=4, seed=13)


def _fresh(shards=2):
    return ShardedDeployment(config=TPCWConfig(**CONFIG), shards=shards)


def _probe(sharded, router, items=(1, 25, 50, 75, 100)):
    backend = connect(sharded.backend, database=sharded.database_name)
    for item in items:
        expected = backend.execute("EXEC getBook @i_id = @i_id", {"i_id": item}).rows
        actual = router.execute("EXEC getBook @i_id = @i_id", {"i_id": item}).rows
        assert actual == expected, f"item {item} diverged"
    expected = backend.execute(
        "EXEC doSubjectSearch @subject = @subject", {"subject": "HISTORY"}
    ).rows
    actual = router.execute(
        "EXEC doSubjectSearch @subject = @subject", {"subject": "HISTORY"}
    ).rows
    assert actual == expected


def test_add_shard_splits_widest_and_stays_correct():
    sharded = _fresh(shards=2)
    router = sharded.router()
    _probe(sharded, router)
    donor = sharded.partitioner.widest_shard()
    donor_before = sharded.partitioner.slice(donor)
    sharded.add_shard("shard2")
    assert set(sharded.partitioner.shards) == {"shard0", "shard1", "shard2"}
    donor_after = sharded.partitioner.slice(donor)
    given = sharded.partitioner.slice("shard2")
    # The donor's old range is exactly tiled by (kept, given).
    assert donor_after[0] == donor_before[0]
    assert donor_after[1] + 1 == given[0]
    assert given[1] == donor_before[1]
    sharded.sync()
    _probe(sharded, router)
    # The new shard serves its keys locally through the SAME router
    # (built before the shard existed).
    hit = sharded.metrics.counter("shard.hits", labels={"shard": "shard2"})
    before = hit.value
    router.execute("EXEC getBook @i_id = @i_id", {"i_id": given[0]})
    assert hit.value == before + 1


def test_replication_reaches_rebalanced_slice():
    sharded = _fresh(shards=2)
    sharded.add_shard("shard2")
    router = sharded.router()
    low, _ = sharded.partitioner.slice("shard2")
    backend = connect(sharded.backend, database=sharded.database_name)
    backend.execute(f"UPDATE item SET i_stock = 999 WHERE i_id = {low}")
    backend.commit()
    sharded.sync()
    rows = router.execute("EXEC getStock @i_id = @i_id", {"i_id": low}).rows
    assert rows == [(999,)]


def test_boundary_move_shifts_rows_and_stays_correct():
    sharded = _fresh(shards=2)
    router = sharded.router()
    left, right = sharded.partitioner.shards
    left_low, left_high = sharded.partitioner.slice(left)
    _, right_high = sharded.partitioner.slice(right)
    cut = left_high + 10  # grow the left shard by ten keys
    moved = sharded.move_boundary(left, right, cut)
    assert moved > 0
    assert sharded.partitioner.slice(left) == (left_low, cut)
    assert sharded.partitioner.slice(right) == (cut + 1, right_high)
    sharded.sync()
    _probe(sharded, router)
    # Shrinking back also works (the other retarget ordering).
    moved_back = sharded.move_boundary(left, right, left_high)
    assert moved_back > 0
    sharded.sync()
    _probe(sharded, router)


def test_move_boundary_validates_adjacency_and_cut():
    sharded = _fresh(shards=3)
    first, second, third = sharded.partitioner.shards
    with pytest.raises(ValueError, match="not adjacent"):
        sharded.move_boundary(first, third, 50)
    low, high = sharded.partitioner.slice(first)
    with pytest.raises(ValueError, match="outside"):
        sharded.move_boundary(first, second, low - 1)


def test_rebalancer_runs_at_most_one_move_per_tick():
    sharded = _fresh(shards=2)
    now = sharded.clock.now()
    sharded.rebalancer.schedule_add_shard("shard2", at=now)
    sharded.rebalancer.schedule_add_shard("shard3", at=now)
    assert sharded.rebalancer.pending == 2
    counters = sharded.tick(0.01)
    assert counters["rebalance_moves"] == 1
    assert sharded.rebalancer.pending == 1
    assert len(sharded.shards) == 3
    sharded.tick(0.01)
    assert sharded.rebalancer.pending == 0
    assert len(sharded.shards) == 4
    assert sharded.rebalancer.moves_executed == 2
    sharded.sync()
    _probe(sharded, sharded.router())


def test_rebalancer_drops_failing_move_without_wedging():
    sharded = _fresh(shards=2)
    now = sharded.clock.now()
    sharded.rebalancer.schedule_boundary_move("shard0", "nonexistent", 10, at=now)
    sharded.rebalancer.schedule_add_shard("shard2", at=now)
    assert sharded.tick(0.01)["rebalance_moves"] == 0
    assert isinstance(sharded.rebalancer.last_error, ValueError)
    # The queue is not wedged: the next tick runs the good move.
    assert sharded.tick(0.01)["rebalance_moves"] == 1
    assert "shard2" in sharded.shards


def test_future_moves_wait_for_their_time():
    sharded = _fresh(shards=2)
    sharded.rebalancer.schedule_add_shard("shard2", at=sharded.clock.now() + 60.0)
    assert sharded.tick(0.01)["rebalance_moves"] == 0
    assert "shard2" not in sharded.shards
    assert sharded.tick(120.0)["rebalance_moves"] == 1
    assert "shard2" in sharded.shards
