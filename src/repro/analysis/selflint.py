"""Repo-specific AST lint pack (analysis pass 3).

Four rules, enforced with the stdlib ``ast`` module over the package's
own source (``python -m repro analyze --self``):

* ``wall-clock`` — nothing under ``repro/simulation`` may read the real
  clock (``time.time``/``perf_counter``/``monotonic``/``time_ns``,
  ``datetime.now``/``utcnow``, ``date.today``). Simulated time must come
  from the injected :class:`~repro.simulation.clock.SimulatedClock`, or
  runs stop being deterministic and freshness tests get flaky.
* ``bare-except`` — no bare ``except:`` in ``repro/engine`` or
  ``repro/replication``; swallowing ``KeyboardInterrupt`` there has hung
  replication workers before.
* ``metric-name-literal`` — every ``.counter(...)`` / ``.gauge(...)`` /
  ``.histogram(...)`` call outside ``repro/obs`` must pass the metric
  name as a string literal, so the full metric namespace is greppable.
* ``operator-children`` — a class deriving from a ``*Op`` operator base
  whose ``__init__`` takes ``child``/``children``/``left``/``right``/
  ``inputs`` must forward each of them into ``super().__init__(...)``;
  otherwise the plan walker (and the plan verifier) silently skips a
  subtree.
* ``resilience-determinism`` — ``repro/faults`` and ``repro/resilience``
  may neither read the wall clock (chaos schedules and retry backoff run
  on the injected SimulatedClock, or fault runs stop being reproducible)
  nor use bare ``except:`` (which would swallow the very faults being
  injected).
* ``session-construction`` — only ``repro/client``, ``repro/engine`` and
  ``repro/net`` may construct a raw ``Session``. Everything else goes
  through the client API (``connect()``/``Connection``), which owns
  session lifecycle; hand-made sessions bypass transaction cleanup and
  the pool's rollback-on-release guarantee. The network front end is in
  the allowlist because it is the server-side session owner: HELLO
  creates the session, disconnect cleanup rolls it back.
* ``raw-threading-lock`` — ``threading.Lock``/``RLock``/``Condition``
  may only be constructed in ``repro/common/locks.py`` and
  ``repro/engine/locks.py``. Concurrency primitives funnel through that
  chokepoint so the locking hierarchy (database latch above table locks)
  stays auditable and ad-hoc locks cannot introduce new deadlock edges.
* ``shard-ownership`` — no ``hash(...) % n`` placement arithmetic outside
  ``repro/sharding``. Python's builtin ``hash`` is salted per process, so
  ad-hoc modulo placement disagrees across runs (and with the ring);
  ownership decisions go through ``repro.sharding.stable_hash`` /
  ``HashRing`` / ``RangePartitioner``.
* ``compile-at-build-time`` — operator execution bodies (``execute``,
  ``execute_batches``, ``__next__``, ``next_batch``) may not call
  ``compile_scalar``/``compile_predicate`` or construct an
  ``ExpressionCompiler``. Expressions compile once when the plan is
  built and the closures are cached with it; compiling inside the row
  or batch loop silently reintroduces per-execution (or per-row) parse
  cost that the plan cache exists to eliminate.
* ``net-raw-socket`` — raw transport construction (``socket.socket``,
  ``socket.create_connection``/``create_server``,
  ``asyncio.start_server``/``open_connection``) is confined to
  ``repro/net``. Every other layer reaches the network through
  ``repro.client.connect()`` with a ``tcp://`` DSN, so framing, error
  taxonomy, deadline propagation and byte accounting cannot be bypassed
  by an ad-hoc socket.
* ``overload-bounded`` — the overload-protection core
  (``repro/resilience/overload.py`` and
  ``repro/resilience/deadline.py``) must stay O(1)-state and
  non-blocking: no ``.append(...)`` calls (an admission controller that
  grows a list under overload is itself an unbounded queue), no
  ``Queue()``/``deque()`` construction without an explicit bound, and
  no ``time.sleep`` (backpressure is expressed through the virtual
  clock and rejection, never by blocking the caller's thread).
"""

from __future__ import annotations

import ast
import os
from typing import Iterator, List, Optional, Tuple

from repro.errors import AnalysisError

#: Attribute chains that read the real clock.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.perf_counter",
        "time.monotonic",
        "time.time_ns",
        "time.perf_counter_ns",
        "time.monotonic_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "date.today",
        "datetime.date.today",
    }
)

_METRIC_METHODS = frozenset({"counter", "gauge", "histogram"})

_CHILD_PARAM_NAMES = frozenset({"child", "children", "left", "right", "inputs"})


def _dotted_name(node: ast.AST) -> Optional[str]:
    """Render an ``a.b.c`` attribute/name chain, or None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _in_subtree(path: str, *parts: str) -> bool:
    normalized = path.replace(os.sep, "/")
    return any(f"repro/{part}/" in normalized or normalized.endswith(f"repro/{part}") for part in parts)


def _check_wall_clock(tree: ast.AST, path: str) -> Iterator[AnalysisError]:
    if not _in_subtree(path, "simulation"):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted_name(node.func)
        if dotted in _WALL_CLOCK_CALLS:
            yield AnalysisError(
                "wall-clock",
                f"call to {dotted}() in repro.simulation; use the injected "
                "SimulatedClock so runs stay deterministic",
                location=f"{path}:{node.lineno}",
            )


def _check_bare_except(tree: ast.AST, path: str) -> Iterator[AnalysisError]:
    if not _in_subtree(path, "engine", "replication"):
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield AnalysisError(
                "bare-except",
                "bare 'except:' swallows KeyboardInterrupt/SystemExit; "
                "catch Exception or something narrower",
                location=f"{path}:{node.lineno}",
            )


def _check_metric_names(tree: ast.AST, path: str) -> Iterator[AnalysisError]:
    if _in_subtree(path, "obs"):
        return  # the registry itself builds names dynamically
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in _METRIC_METHODS):
            continue
        name_arg: Optional[ast.expr] = None
        if node.args:
            name_arg = node.args[0]
        else:
            for keyword in node.keywords:
                if keyword.arg == "name":
                    name_arg = keyword.value
                    break
        if name_arg is None:
            continue  # not a metric-registry call shape
        if not (isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str)):
            yield AnalysisError(
                "metric-name-literal",
                f".{func.attr}() metric name must be a string literal so the "
                "metric namespace stays greppable",
                location=f"{path}:{node.lineno}",
            )


def _init_method(class_node: ast.ClassDef) -> Optional[ast.FunctionDef]:
    for item in class_node.body:
        if isinstance(item, ast.FunctionDef) and item.name == "__init__":
            return item
    return None


def _super_init_calls(func: ast.FunctionDef) -> List[ast.Call]:
    calls = []
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "__init__"
            and isinstance(node.func.value, ast.Call)
            and isinstance(node.func.value.func, ast.Name)
            and node.func.value.func.id == "super"
        ):
            calls.append(node)
    return calls


def _bare_names(node: ast.AST) -> Iterator[str]:
    """Names passed as values (not attribute bases like ``child.schema``).

    ``super().__init__(child.schema, [child])`` forwards ``child``;
    ``super().__init__(child.schema)`` only reads its schema and does not.
    """
    if isinstance(node, ast.Name):
        yield node.id
    elif isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        for element in node.elts:
            yield from _bare_names(element)
    elif isinstance(node, ast.Starred):
        yield from _bare_names(node.value)
    elif isinstance(node, ast.Call):  # e.g. list(children), tuple(inputs)
        for argument in node.args:
            yield from _bare_names(argument)
    elif isinstance(node, ast.BinOp):  # e.g. [left] + [right]
        yield from _bare_names(node.left)
        yield from _bare_names(node.right)
    elif isinstance(node, (ast.IfExp,)):
        yield from _bare_names(node.body)
        yield from _bare_names(node.orelse)


def _check_operator_children(tree: ast.AST, path: str) -> Iterator[AnalysisError]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        base_names = [b for b in (_dotted_name(base) for base in node.bases) if b]
        last_parts = [name.split(".")[-1] for name in base_names]
        if not any(part.endswith(("Op", "Operator")) for part in last_parts):
            continue
        init = _init_method(node)
        if init is None:
            continue
        params = {arg.arg for arg in init.args.args} | {
            arg.arg for arg in init.args.kwonlyargs
        }
        child_params = params & _CHILD_PARAM_NAMES
        if not child_params:
            continue
        super_calls = _super_init_calls(init)
        if not super_calls:
            yield AnalysisError(
                "operator-children",
                f"operator {node.name} takes {sorted(child_params)} but never "
                "calls super().__init__(), so the plan walker skips its subtree",
                location=f"{path}:{node.lineno}",
            )
            continue
        forwarded = set()
        for call in super_calls:
            for argument in list(call.args) + [kw.value for kw in call.keywords]:
                forwarded.update(_bare_names(argument))
        for missing in sorted(child_params - forwarded):
            yield AnalysisError(
                "operator-children",
                f"operator {node.name} does not forward {missing!r} into "
                "super().__init__(); unregistered children are invisible to "
                "plan walks and the verifier",
                location=f"{path}:{node.lineno}",
            )


def _check_resilience_determinism(tree: ast.AST, path: str) -> Iterator[AnalysisError]:
    if not _in_subtree(path, "faults", "resilience"):
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            dotted = _dotted_name(node.func)
            if dotted in _WALL_CLOCK_CALLS:
                yield AnalysisError(
                    "resilience-determinism",
                    f"call to {dotted}() in the fault/resilience layer; chaos "
                    "schedules and retry backoff must run on the injected "
                    "SimulatedClock so fault runs stay reproducible",
                    location=f"{path}:{node.lineno}",
                )
        elif isinstance(node, ast.ExceptHandler) and node.type is None:
            yield AnalysisError(
                "resilience-determinism",
                "bare 'except:' in the fault/resilience layer can swallow the "
                "very faults being injected; catch specific errors",
                location=f"{path}:{node.lineno}",
            )


def _check_session_construction(tree: ast.AST, path: str) -> Iterator[AnalysisError]:
    if _in_subtree(path, "client", "engine", "net"):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted_name(node.func)
        if dotted is not None and dotted.split(".")[-1] == "Session":
            yield AnalysisError(
                "session-construction",
                "raw Session construction outside repro.client/repro.engine; "
                "go through repro.client.connect() — connections own their "
                "sessions (transaction cleanup, pool rollback-on-release)",
                location=f"{path}:{node.lineno}",
            )


#: Files allowed to construct threading primitives directly: the lock
#: factories, the engine hierarchy built on them, and the witness (whose
#: own registry lock must be raw — instrumenting it would recurse).
_LOCK_CHOKEPOINTS = (
    "repro/common/locks.py",
    "repro/common/witness.py",
    "repro/engine/locks.py",
)

_RAW_LOCK_CALLS = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "threading.Barrier",
    }
)

_RAW_LOCK_NAMES = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore", "Barrier"}
)


def _check_raw_threading_lock(tree: ast.AST, path: str) -> Iterator[AnalysisError]:
    normalized = path.replace(os.sep, "/")
    if normalized.endswith(_LOCK_CHOKEPOINTS):
        return
    imported_locks = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "threading":
            for alias in node.names:
                if alias.name in _RAW_LOCK_NAMES:
                    imported_locks.add(alias.asname or alias.name)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted_name(node.func)
        if dotted in _RAW_LOCK_CALLS or dotted in imported_locks:
            yield AnalysisError(
                "raw-threading-lock",
                f"direct {dotted}() construction; use repro.common.locks "
                "(mutex/rmutex/condition/RWLock) so every lock sits inside "
                "the audited locking hierarchy",
                location=f"{path}:{node.lineno}",
            )


#: Method names that form an operator's execution body.
_EXECUTION_METHODS = frozenset({"execute", "execute_batches", "__next__", "next_batch"})

#: Call targets that compile expressions (forbidden inside execution bodies).
_COMPILE_CALLS = frozenset({"compile_scalar", "compile_predicate", "ExpressionCompiler"})


def _check_compile_at_build_time(tree: ast.AST, path: str) -> Iterator[AnalysisError]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        base_names = [b for b in (_dotted_name(base) for base in node.bases) if b]
        last_parts = [name.split(".")[-1] for name in base_names]
        if not any(part.endswith(("Op", "Operator")) for part in last_parts):
            continue
        for item in node.body:
            if not isinstance(item, ast.FunctionDef) or item.name not in _EXECUTION_METHODS:
                continue
            for call in ast.walk(item):
                if not isinstance(call, ast.Call):
                    continue
                dotted = _dotted_name(call.func)
                if dotted is not None and dotted.split(".")[-1] in _COMPILE_CALLS:
                    yield AnalysisError(
                        "compile-at-build-time",
                        f"{node.name}.{item.name} calls {dotted}() at execution "
                        "time; expressions compile once at plan build and the "
                        "closures are cached with the plan",
                        location=f"{path}:{call.lineno}",
                    )


def _check_shard_ownership(tree: ast.AST, path: str) -> Iterator[AnalysisError]:
    if _in_subtree(path, "sharding"):
        return  # the one place allowed to turn hashes into placements
    for node in ast.walk(tree):
        if not isinstance(node, ast.BinOp) or not isinstance(node.op, ast.Mod):
            continue
        left = node.left
        if (
            isinstance(left, ast.Call)
            and isinstance(left.func, ast.Name)
            and left.func.id == "hash"
        ):
            yield AnalysisError(
                "shard-ownership",
                "hash(...) % n outside repro.sharding; the builtin hash is "
                "salted per process, so modulo placement disagrees across runs "
                "— use repro.sharding.stable_hash / HashRing instead",
                location=f"{path}:{node.lineno}",
            )


#: Dotted call targets that construct a raw transport (sockets, asyncio
#: streams). Confined to ``repro/net`` by the ``net-raw-socket`` rule.
_RAW_SOCKET_CALLS = frozenset(
    {
        "socket.socket",
        "socket.create_connection",
        "socket.create_server",
        "socket.socketpair",
        "asyncio.start_server",
        "asyncio.open_connection",
        "asyncio.start_unix_server",
        "asyncio.open_unix_connection",
    }
)

#: Names that, imported from socket/asyncio, construct a raw transport.
_RAW_SOCKET_NAMES = frozenset(
    {
        "create_connection",
        "create_server",
        "socketpair",
        "start_server",
        "open_connection",
        "start_unix_server",
        "open_unix_connection",
    }
)


def _check_net_raw_socket(tree: ast.AST, path: str) -> Iterator[AnalysisError]:
    if _in_subtree(path, "net"):
        return  # the one layer allowed to touch transports directly
    imported = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module in ("socket", "asyncio"):
            for alias in node.names:
                if alias.name in _RAW_SOCKET_NAMES or alias.name == "socket":
                    imported.add(alias.asname or alias.name)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted_name(node.func)
        if dotted in _RAW_SOCKET_CALLS or dotted in imported:
            yield AnalysisError(
                "net-raw-socket",
                f"raw transport construction ({dotted}) outside repro.net; "
                "dial through repro.client.connect('tcp://...') so framing, "
                "error taxonomy and deadline propagation stay on the one "
                "audited path",
                location=f"{path}:{node.lineno}",
            )


#: Files forming the overload-protection core, which must not itself be
#: able to queue unboundedly or block (the ``overload-bounded`` rule).
_OVERLOAD_CORE = (
    "repro/resilience/overload.py",
    "repro/resilience/deadline.py",
)

#: Queue-like constructors that take their bound as an argument.
_QUEUE_CONSTRUCTORS = frozenset({"Queue", "LifoQueue", "PriorityQueue", "deque"})


def _check_overload_bounded(tree: ast.AST, path: str) -> Iterator[AnalysisError]:
    normalized = path.replace(os.sep, "/")
    if not normalized.endswith(_OVERLOAD_CORE):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "append":
            yield AnalysisError(
                "overload-bounded",
                ".append() in the overload core; an admission controller "
                "that accumulates entries under overload is itself an "
                "unbounded queue — keep state scalar (token debt, counters)",
                location=f"{path}:{node.lineno}",
            )
            continue
        dotted = _dotted_name(func)
        if dotted is None:
            continue
        leaf = dotted.split(".")[-1]
        if leaf in _QUEUE_CONSTRUCTORS:
            bounded = bool(node.args) or any(
                keyword.arg in ("maxsize", "maxlen") for keyword in node.keywords
            )
            if not bounded:
                yield AnalysisError(
                    "overload-bounded",
                    f"unbounded {leaf}() in the overload core; pass an "
                    "explicit maxsize/maxlen — the whole point of this layer "
                    "is that queues stay bounded",
                    location=f"{path}:{node.lineno}",
                )
        elif dotted in ("time.sleep", "sleep"):
            yield AnalysisError(
                "overload-bounded",
                "time.sleep in the overload core; backpressure is expressed "
                "via the virtual clock and fast rejection, never by blocking "
                "the caller's thread",
                location=f"{path}:{node.lineno}",
            )


_ALL_CHECKS = (
    _check_wall_clock,
    _check_bare_except,
    _check_metric_names,
    _check_operator_children,
    _check_resilience_determinism,
    _check_session_construction,
    _check_raw_threading_lock,
    _check_shard_ownership,
    _check_compile_at_build_time,
    _check_net_raw_socket,
    _check_overload_bounded,
)


def lint_source(source: str, path: str) -> List[AnalysisError]:
    """Run every rule against one module's source text.

    ``path`` is used both for rule scoping (several rules only apply under
    specific subpackages) and for diagnostic locations; tests pass virtual
    paths like ``"repro/simulation/fake.py"``.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            AnalysisError(
                "parse", f"module does not parse: {exc.msg}", location=f"{path}:{exc.lineno}"
            )
        ]
    diagnostics: List[AnalysisError] = []
    for check in _ALL_CHECKS:
        diagnostics.extend(check(tree, path))
    return diagnostics


def _python_files(root: str) -> Iterator[Tuple[str, str]]:
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                full = os.path.join(dirpath, filename)
                yield full, os.path.relpath(full, os.path.dirname(root))


def lint_package(root: Optional[str] = None) -> List[AnalysisError]:
    """Lint every module under ``root`` (default: the installed repro package)."""
    if root is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
    diagnostics: List[AnalysisError] = []
    for full_path, rel_path in _python_files(root):
        with open(full_path, "r", encoding="utf-8") as handle:
            source = handle.read()
        diagnostics.extend(lint_source(source, rel_path))
    return diagnostics
