"""Unit tests for the lockdep-style runtime witness."""

from __future__ import annotations

import threading

from repro.common import witness as witness_module
from repro.common.witness import (
    LEVEL_LATCH,
    LEVEL_LEAF,
    LEVEL_OUTER,
    LEVEL_TABLE,
    Witness,
    WitnessedLock,
    level_for_site,
    lock_class,
)


def make_lock(name: str, level: int, witness: Witness, ordered: bool = False):
    return WitnessedLock(
        threading.Lock(), lock_class(name, level, ordered=ordered), witness=witness
    )


class TestLevelClassification:
    def test_engine_paths_are_leaf(self):
        assert level_for_site("repro/engine/transactions.py:74") == LEVEL_LEAF
        assert level_for_site("repro/storage/wal.py:62") == LEVEL_LEAF

    def test_outer_subpackages_are_outer(self):
        assert level_for_site("repro/client/pool.py:30") == LEVEL_OUTER
        assert level_for_site("repro/sharding/ring.py:130") == LEVEL_OUTER
        assert level_for_site("repro/tpcw/driver.py:211") == LEVEL_OUTER

    def test_unknown_paths_are_outer(self):
        assert level_for_site("tests/common/test_witness.py:10") == LEVEL_OUTER

    def test_absolute_paths_normalize(self):
        assert level_for_site("/opt/x/src/repro/engine/locks.py:65") == LEVEL_LEAF


class TestWitnessedLock:
    def test_context_manager_records_acquisition(self):
        witness = Witness()
        lock = make_lock("a", LEVEL_OUTER, witness)
        with lock:
            assert lock.locked()
        snapshot = witness.snapshot()
        assert snapshot["acquisitions"] == 1
        assert snapshot["violations"] == []

    def test_descending_edges_are_recorded_and_legal(self):
        witness = Witness()
        outer = make_lock("outer", LEVEL_OUTER, witness)
        leaf = make_lock("leaf", LEVEL_LEAF, witness)
        with outer:
            with leaf:
                pass
        snapshot = witness.snapshot()
        assert {(e["from"], e["to"]) for e in snapshot["edges"]} == {("outer", "leaf")}
        assert snapshot["violations"] == []

    def test_inversion_is_flagged(self):
        witness = Witness()
        latch = make_lock("latch", LEVEL_LATCH, witness)
        leaf = make_lock("leaf", LEVEL_LEAF, witness)
        with leaf:
            with latch:
                pass
        violations = witness.snapshot()["violations"]
        assert len(violations) == 1
        assert violations[0]["rule"] == "lock-order-inversion"
        assert violations[0]["held"] == "leaf"
        assert violations[0]["acquired"] == "latch"

    def test_inversion_deduplicates(self):
        witness = Witness()
        latch = make_lock("latch", LEVEL_LATCH, witness)
        leaf = make_lock("leaf", LEVEL_LEAF, witness)
        for _ in range(3):
            with leaf:
                with latch:
                    pass
        assert len(witness.snapshot()["violations"]) == 1

    def test_same_instance_reacquire_is_reentrant_not_nesting(self):
        witness = Witness()
        inner = threading.RLock()
        lock = WitnessedLock(inner, lock_class("r", LEVEL_OUTER), witness=witness)
        with lock:
            with lock:
                pass
        snapshot = witness.snapshot()
        assert snapshot["violations"] == []
        assert snapshot["edges"] == []

    def test_two_instances_of_unordered_class_flagged(self):
        witness = Witness()
        cls = lock_class("pool", LEVEL_OUTER)
        first = WitnessedLock(threading.Lock(), cls, witness=witness)
        second = WitnessedLock(threading.Lock(), cls, witness=witness)
        with first:
            with second:
                pass
        violations = witness.snapshot()["violations"]
        assert [v["rule"] for v in violations] == ["same-class-nesting"]

    def test_ordered_class_sanctions_same_class_nesting(self):
        witness = Witness()
        cls = lock_class("table", LEVEL_TABLE, ordered=True)
        first = WitnessedLock(threading.Lock(), cls, witness=witness)
        second = WitnessedLock(threading.Lock(), cls, witness=witness)
        with first:
            with second:
                pass
        assert witness.snapshot()["violations"] == []

    def test_held_stack_is_per_thread(self):
        witness = Witness()
        latch = make_lock("latch", LEVEL_LATCH, witness)
        leaf = make_lock("leaf", LEVEL_LEAF, witness)
        failures = []

        def other_thread():
            # This thread holds nothing; taking the latch here must not
            # see the main thread's held leaf.
            with latch:
                pass

        with leaf:
            worker = threading.Thread(target=other_thread)
            worker.start()
            worker.join()
        if witness.snapshot()["violations"]:
            failures.append(witness.snapshot()["violations"])
        assert not failures

    def test_condition_wait_keeps_stack_accurate(self):
        # threading.Condition over a WitnessedLock: wait() releases and
        # reacquires through acquire()/release(), so the held stack must
        # drop the lock during the wait and regain it after.
        witness = Witness()
        lock = make_lock("cond", LEVEL_OUTER, witness)
        condition = threading.Condition(lock)
        ready = threading.Event()

        def waker():
            ready.wait(5)
            with condition:
                condition.notify()

        worker = threading.Thread(target=waker)
        worker.start()
        with condition:
            ready.set()
            condition.wait(5)
        worker.join()
        assert witness.snapshot()["violations"] == []


class TestNestingDepth:
    def test_nesting_moves_class_to_deeper_level(self):
        witness = Witness()
        latch = make_lock("latch", LEVEL_LATCH, witness)
        remote = make_lock("latch", LEVEL_LATCH, witness)
        with latch:
            with witness.nesting():
                with remote:
                    pass
        snapshot = witness.snapshot()
        edges = {(e["from"], e["to"]) for e in snapshot["edges"]}
        assert edges == {("latch", "latch@1")}
        assert snapshot["violations"] == []
        assert snapshot["classes"]["latch@1"]["level"] > snapshot["classes"]["latch"]["level"]

    def test_same_level_without_nesting_flags(self):
        witness = Witness()
        cls = lock_class("latch", LEVEL_LATCH)
        local = WitnessedLock(threading.Lock(), cls, witness=witness)
        remote = WitnessedLock(threading.Lock(), cls, witness=witness)
        with local:
            with remote:
                pass
        assert [v["rule"] for v in witness.snapshot()["violations"]] == [
            "same-class-nesting"
        ]


class TestFactoryIntegration:
    def test_mutex_is_witnessed_when_active(self, monkeypatch):
        from repro.common.locks import mutex

        fresh = Witness()
        monkeypatch.setattr(witness_module, "_active", fresh)
        lock = mutex()
        assert isinstance(lock, WitnessedLock)
        with lock:
            pass
        assert fresh.snapshot()["acquisitions"] == 1

    def test_mutex_is_raw_when_inactive(self, monkeypatch):
        from repro.common.locks import mutex

        monkeypatch.setattr(witness_module, "_active", None)
        monkeypatch.delenv("REPRO_LOCK_WITNESS", raising=False)
        assert not isinstance(mutex(), WitnessedLock)

    def test_rwlock_reports_to_witness(self, monkeypatch):
        from repro.common.locks import RWLock

        fresh = Witness()
        monkeypatch.setattr(witness_module, "_active", fresh)
        lock = RWLock()
        with lock.shared():
            pass
        with lock.exclusive():
            # Reentrant exclusive: same instance, so no new acquisition,
            # no edge, no same-class-nesting.
            with lock.exclusive():
                pass
        snapshot = fresh.snapshot()
        assert snapshot["acquisitions"] == 2
        assert snapshot["violations"] == []
