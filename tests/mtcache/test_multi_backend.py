"""One cache server fed by multiple backend servers (paper §3)."""

import pytest

from repro import MTCacheDeployment, Server
from repro.common.clock import SimulatedClock
from repro.errors import ReplicationError


def build_backend(name, database, table_sql, rows, clock):
    server = Server(name, clock=clock)
    server.create_database(database)
    server.execute(table_sql, database=database)
    db = server.database(database)
    table_name = table_sql.split()[2]
    db.bulk_load(table_name, rows)
    db.analyze_all()
    return server


@pytest.fixture
def multi_env():
    clock = SimulatedClock()
    sales = build_backend(
        "sales_backend",
        "sales",
        "CREATE TABLE invoice (iid INT PRIMARY KEY, amount FLOAT)",
        [(i, i * 10.0) for i in range(1, 51)],
        clock,
    )
    catalog = build_backend(
        "catalog_backend",
        "catalog",
        "CREATE TABLE product (pid INT PRIMARY KEY, name VARCHAR(30))",
        [(i, f"prod{i}") for i in range(1, 31)],
        clock,
    )
    sales_deployment = MTCacheDeployment(sales, "sales")
    catalog_deployment = MTCacheDeployment(catalog, "catalog")

    shared = Server("shared_cache", clock=clock)
    sales_cache = sales_deployment.attach_cache_server(shared)
    catalog_cache = catalog_deployment.attach_cache_server(shared)
    sales_cache.create_cached_view(
        "CREATE CACHED VIEW cv_invoice AS SELECT iid, amount FROM invoice"
    )
    catalog_cache.create_cached_view(
        "CREATE CACHED VIEW cv_product AS SELECT pid, name FROM product"
    )
    return (
        sales,
        catalog,
        shared,
        sales_deployment,
        catalog_deployment,
        sales_cache,
        catalog_cache,
    )


class TestMultiBackendCache:
    def test_two_shadow_databases_on_one_server(self, multi_env):
        _, _, shared, *_ = multi_env
        assert set(shared.databases) == {"sales", "catalog"}

    def test_each_shadow_points_at_its_own_backend(self, multi_env):
        *_, sales_cache, catalog_cache = multi_env
        sales_link = sales_cache.database.backend_server
        catalog_link = catalog_cache.database.backend_server
        assert sales_link != catalog_link  # distinct linked servers

    def test_queries_route_within_each_database(self, multi_env):
        *_, sales_cache, catalog_cache = multi_env
        assert sales_cache.execute("SELECT COUNT(*) FROM invoice").scalar == 50
        assert catalog_cache.execute("SELECT COUNT(*) FROM product").scalar == 30

    def test_replication_streams_stay_separate(self, multi_env):
        (
            sales,
            catalog,
            _,
            sales_deployment,
            catalog_deployment,
            sales_cache,
            catalog_cache,
        ) = multi_env
        sales.execute("UPDATE invoice SET amount = 0 WHERE iid = 1", database="sales")
        catalog.execute(
            "UPDATE product SET name = 'renamed' WHERE pid = 1", database="catalog"
        )
        sales_deployment.sync()
        catalog_deployment.sync()
        assert (
            sales_cache.execute("SELECT amount FROM cv_invoice WHERE iid = 1").scalar
            == 0.0
        )
        assert (
            catalog_cache.execute("SELECT name FROM cv_product WHERE pid = 1").scalar
            == "renamed"
        )

    def test_updates_forward_to_the_right_backend(self, multi_env):
        sales, catalog, *_ , sales_cache, catalog_cache = multi_env
        sales_cache.execute("UPDATE invoice SET amount = 77.0 WHERE iid = 2")
        assert (
            sales.execute("SELECT amount FROM invoice WHERE iid = 2", database="sales").scalar
            == 77.0
        )
        # The other backend is untouched.
        assert (
            catalog.execute("SELECT COUNT(*) FROM product", database="catalog").scalar
            == 30
        )

    def test_mismatched_clock_rejected(self, multi_env):
        sales, *_ = multi_env
        deployment = MTCacheDeployment(sales, "sales")
        rogue = Server("rogue")  # its own clock
        with pytest.raises(ReplicationError, match="clock"):
            deployment.attach_cache_server(rogue)
