"""The TPC-W load drivers: emulated browsers in virtual and real time.

:class:`LoadDriver` plays the role of the benchmark's remote browser
emulators (§6.1) in *virtual* time: a set of user sessions, each cycling
through think time (fixed at one second in the paper) and a next
interaction drawn from the workload mix, with the driver advancing the
deployment clock and ticking replication — deterministic and fast.

:class:`ThreadedLoadDriver` runs the same interactions from real worker
threads over a bounded :class:`~repro.client.ConnectionPool`, measuring
*wall-clock* throughput. Each worker checks a connection out per
interaction and sleeps real think time between interactions, so this is
the mode that actually exercises the engine's latches, table locks and
thread-safe caches. A ticker thread keeps the deployment's virtual clock
tracking wall time (``clock.advance_to(start + elapsed)``) and drives
replication, so cached deployments stay fresh while the workers run.

The *performance* experiments use :mod:`repro.simulation`, which adds CPU
queueing on simulated machines.
"""

from __future__ import annotations

import heapq
import random
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.locks import mutex
from repro.errors import DeadlineExceededError, OverloadError
from repro.tpcw.application import TPCWApplication
from repro.tpcw.workload import WorkloadMix


@dataclass
class DriverStats:
    """What a driver run observed."""

    interactions: int = 0
    db_calls: int = 0
    errors: int = 0
    virtual_seconds: float = 0.0
    # Wall-clock run length; zero for the virtual-time LoadDriver.
    wall_seconds: float = 0.0
    by_interaction: Dict[str, int] = field(default_factory=dict)
    # Failover activity observed on the connection (zero for plain
    # connections; populated when driving through a FailoverRouter).
    failovers: int = 0
    failbacks: int = 0
    # Overload activity (PR 9): interactions rejected fast by admission
    # control (OverloadError) and statements whose end-to-end deadline
    # expired (DeadlineExceededError). Both are *visible* failures — they
    # are counted separately from ``errors`` so goodput math is direct.
    shed: int = 0
    deadline_misses: int = 0
    # First few error tracebacks (threaded driver), for diagnosis.
    error_samples: List[str] = field(default_factory=list)

    @property
    def wips(self) -> float:
        """Interactions per virtual second (think-time bound, since the
        functional engine executes in zero virtual time)."""
        if self.virtual_seconds <= 0:
            return 0.0
        return self.interactions / self.virtual_seconds

    @property
    def throughput(self) -> float:
        """Interactions per wall-clock second (threaded driver only)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.interactions / self.wall_seconds

    def merge(self, other: "DriverStats") -> None:
        """Fold another worker's counters into this one."""
        self.interactions += other.interactions
        self.db_calls += other.db_calls
        self.errors += other.errors
        self.shed += other.shed
        self.deadline_misses += other.deadline_misses
        self.error_samples = (self.error_samples + other.error_samples)[:5]
        for name, count in other.by_interaction.items():
            self.by_interaction[name] = self.by_interaction.get(name, 0) + count


class LoadDriver:
    """Drives TPC-W traffic against a connection in virtual time."""

    def __init__(
        self,
        application: TPCWApplication,
        mix: WorkloadMix,
        users: int = 10,
        think_time: float = 1.0,
        deployment=None,
        seed: int = 17,
    ):
        self.application = application
        self.mix = mix
        self.users = users
        self.think_time = think_time
        self.deployment = deployment
        self.rng = random.Random(seed)

    def _target_server(self):
        """The engine Server the application's connection reaches.

        Connections may point at a plain :class:`~repro.engine.Server` or
        at a :class:`~repro.mtcache.cache_server.CacheServer` facade.
        """
        server = getattr(self.application.connection, "server", None)
        inner = getattr(server, "server", None)
        return inner if inner is not None else server

    def run(self, duration: float) -> DriverStats:
        """Run for ``duration`` virtual seconds; returns statistics."""
        stats = DriverStats()
        sessions = [self.application.new_session() for _ in range(self.users)]
        # (next_fire_time, user_index) — staggered starts over one think time.
        events = [
            (self.rng.uniform(0, self.think_time), user)
            for user in range(self.users)
        ]
        heapq.heapify(events)
        clock = self.deployment.clock if self.deployment is not None else None
        start = clock.now() if clock is not None else 0.0
        now = 0.0
        calls_before = self.application.db_calls

        target = self._target_server()
        observed = target is not None and getattr(target, "observability", False)
        registry = target.metrics if observed else None
        tracer = target.tracer if observed else None

        while events:
            now, user = heapq.heappop(events)
            if now > duration:
                break
            if clock is not None:
                clock.advance_to(start + now)
                self.deployment.tick()
            interaction = self.mix.sample(self.rng)
            span = (
                tracer.span(f"tpcw.{interaction}", user=user)
                if tracer is not None
                else None
            )
            try:
                if span is not None:
                    with span:
                        self.application.run(interaction, sessions[user])
                else:
                    self.application.run(interaction, sessions[user])
                stats.interactions += 1
                stats.by_interaction[interaction] = (
                    stats.by_interaction.get(interaction, 0) + 1
                )
                if registry is not None:
                    registry.counter(
                        "tpcw.interactions", labels={"interaction": interaction}
                    ).inc()
            except OverloadError:
                stats.shed += 1
            except DeadlineExceededError:
                stats.deadline_misses += 1
            except Exception:
                stats.errors += 1
                if registry is not None:
                    registry.counter("tpcw.errors").inc()
            heapq.heappush(events, (now + self.think_time, user))

        stats.virtual_seconds = min(now, duration)
        stats.db_calls = self.application.db_calls - calls_before
        connection = self.application.connection
        stats.failovers = getattr(connection, "failovers", 0)
        stats.failbacks = getattr(connection, "failbacks", 0)
        if self.deployment is not None:
            self.deployment.sync()
        return stats


class ThreadedLoadDriver:
    """Drives TPC-W traffic from real threads over a connection pool.

    Each of ``workers`` threads is one emulated browser: it owns a
    deterministic RNG, a :class:`~repro.tpcw.application.TPCWApplication`
    and a user session, checks a pooled connection out for each
    interaction (health-checked by the pool), and sleeps ``think_time``
    *wall-clock* seconds between interactions. Because the engine work is
    short and the think time real, workers overlap their sleeps — which
    is exactly where threaded throughput comes from.

    When a ``deployment`` is given, a ticker thread advances its virtual
    clock to track elapsed wall time and calls ``deployment.tick()`` so
    replication keeps flowing to the caches during the run. Clock
    advancement and ticking happen under one mutex so the deployment sees
    a consistent timeline.
    """

    def __init__(
        self,
        pool,
        config,
        mix: WorkloadMix,
        workers: int = 4,
        think_time: float = 0.05,
        deployment=None,
        seed: int = 17,
        tick_interval: float = 0.01,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, not {workers}")
        self.pool = pool
        self.config = config
        self.mix = mix
        self.workers = workers
        self.think_time = think_time
        self.deployment = deployment
        self.seed = seed
        self.tick_interval = tick_interval
        self._tick_mutex = mutex()

    # -- worker / ticker bodies -------------------------------------------

    def _worker(self, index: int, stop_at: float, out: List[Optional[DriverStats]]) -> None:
        rng = random.Random(self.seed * 7919 + index)
        application = TPCWApplication(None, self.config, rng)
        session = application.new_session()
        local = DriverStats()
        while time.perf_counter() < stop_at:
            interaction = self.mix.sample(rng)
            try:
                with self.pool.connection() as connection:
                    application.connection = connection
                    try:
                        application.run(interaction, session)
                    finally:
                        application.connection = None
                local.interactions += 1
                local.by_interaction[interaction] = (
                    local.by_interaction.get(interaction, 0) + 1
                )
            except OverloadError:
                # Admission control shed the interaction before any work
                # — a fast, deliberate rejection, not a failure of the
                # system. Back off a think time and try again.
                local.shed += 1
            except DeadlineExceededError:
                local.deadline_misses += 1
            except Exception:
                local.errors += 1
                if len(local.error_samples) < 5:
                    local.error_samples.append(traceback.format_exc())
            time.sleep(self.think_time)
        local.db_calls = application.db_calls
        out[index] = local

    def _tick(self, virtual_start: float, wall_start: float) -> None:
        with self._tick_mutex:
            self.deployment.clock.advance_to(
                virtual_start + (time.perf_counter() - wall_start)
            )
            self.deployment.tick()

    def _ticker(self, stop: threading.Event, virtual_start: float, wall_start: float) -> None:
        while not stop.wait(self.tick_interval):
            self._tick(virtual_start, wall_start)

    # -- entry point -------------------------------------------------------

    def run(self, duration: float) -> DriverStats:
        """Run for ``duration`` wall-clock seconds; returns merged stats."""
        wall_start = time.perf_counter()
        stop_at = wall_start + duration
        out: List[Optional[DriverStats]] = [None] * self.workers
        threads = [
            threading.Thread(
                target=self._worker, args=(index, stop_at, out), daemon=True
            )
            for index in range(self.workers)
        ]
        stop_ticker = threading.Event()
        ticker = None
        if self.deployment is not None:
            virtual_start = self.deployment.clock.now()
            ticker = threading.Thread(
                target=self._ticker,
                args=(stop_ticker, virtual_start, wall_start),
                daemon=True,
            )
            ticker.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if ticker is not None:
            stop_ticker.set()
            ticker.join()
        stats = DriverStats()
        for local in out:
            if local is not None:
                stats.merge(local)
        stats.wall_seconds = time.perf_counter() - wall_start
        if self.deployment is not None:
            self._tick(virtual_start, wall_start)
            self.deployment.sync()
        return stats


def main(argv=None) -> int:
    """``python -m repro.tpcw.driver``: threaded TPC-W against a cache."""
    import argparse

    from repro.client import ConnectionPool, connect
    from repro.tpcw.config import TPCWConfig
    from repro.tpcw.setup import build_backend, enable_caching
    from repro.tpcw.workload import MIXES

    parser = argparse.ArgumentParser(
        prog="python -m repro.tpcw.driver",
        description="Multi-threaded TPC-W load against a cache-enabled deployment",
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--duration", type=float, default=2.0, help="wall-clock seconds")
    parser.add_argument("--think-time", type=float, default=0.05)
    parser.add_argument("--mix", choices=sorted(MIXES), default="Shopping")
    parser.add_argument("--items", type=int, default=100)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument(
        "--dsn",
        default=None,
        help="drive an already-running server by DSN (e.g. the tcp:// line "
        "printed by 'python -m repro serve') instead of building an "
        "in-process deployment",
    )
    args = parser.parse_args(argv)

    if args.dsn is not None:
        # Remote mode: the server process owns backend, caches and the
        # replication ticker; every worker just dials the DSN. Same
        # driver, same pool — only the transport changed.
        config = TPCWConfig(num_items=args.items, num_ebs=20)
        deployment = None
        pool = ConnectionPool(lambda: connect(args.dsn), size=args.workers)
    else:
        from repro.net import register_inproc

        backend, config = build_backend(TPCWConfig(num_items=args.items, num_ebs=20))
        deployment, caches = enable_caching(backend, ["cache1"], config)
        register_inproc("tpcw/cache0", caches[0].server, database="tpcw")
        pool = ConnectionPool(
            lambda: connect("inproc://tpcw/cache0"), size=args.workers
        )
    driver = ThreadedLoadDriver(
        pool,
        config,
        MIXES[args.mix],
        workers=args.workers,
        think_time=args.think_time,
        deployment=deployment,
        seed=args.seed,
    )
    stats = driver.run(args.duration)
    pool.close()
    print(
        f"workers: {args.workers}  interactions: {stats.interactions}  "
        f"errors: {stats.errors}  shed: {stats.shed}  db calls: {stats.db_calls}"
    )
    print(
        f"wall seconds: {stats.wall_seconds:.2f}  "
        f"throughput: {stats.throughput:.1f} interactions/s"
    )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
