"""Recursive-descent parser for the T-SQL subset.

Grammar highlights:

* ``SELECT [TOP n] [DISTINCT] items FROM refs [WHERE] [GROUP BY] [HAVING]
  [ORDER BY] [WITH FRESHNESS n SECONDS]``
* explicit ``INNER/LEFT/CROSS JOIN ... ON`` plus comma cross joins
* ``INSERT/UPDATE/DELETE``, ``CREATE TABLE/INDEX/VIEW/PROCEDURE``,
  ``EXEC``, transactions, ``DECLARE/SET/IF/WHILE/RETURN/PRINT``
* ``@name`` parameters anywhere an expression is allowed
* four-part names (``server.db.schema.object``) for linked servers
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.common.types import (
    BIGINT,
    BOOLEAN,
    CHAR,
    DATE,
    DATETIME,
    FLOAT,
    INT,
    NUMERIC,
    SqlType,
    TypeKind,
    VARCHAR,
)
from repro.errors import ParseError
from repro.sql import ast
from repro.sql.lexer import Token, TokenType, tokenize


class Parser:
    """A single-pass recursive-descent parser over a token list."""

    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def _check_keyword(self, *words: str) -> bool:
        return self._peek().is_keyword(*words)

    def _match_keyword(self, *words: str) -> Optional[Token]:
        if self._check_keyword(*words):
            return self._advance()
        return None

    def _expect_keyword(self, *words: str) -> Token:
        token = self._match_keyword(*words)
        if token is None:
            actual = self._peek()
            raise ParseError(
                f"expected {' or '.join(words)}, found {actual.value!r}",
                actual.line,
                actual.column,
            )
        return token

    def _match(self, token_type: TokenType, value: Optional[str] = None) -> Optional[Token]:
        token = self._peek()
        if token.type is token_type and (value is None or token.value == value):
            return self._advance()
        return None

    def _expect(self, token_type: TokenType, value: Optional[str] = None) -> Token:
        token = self._match(token_type, value)
        if token is None:
            actual = self._peek()
            expected = value or token_type.value
            raise ParseError(
                f"expected {expected!r}, found {actual.value!r}",
                actual.line,
                actual.column,
            )
        return token

    def _identifier(self) -> str:
        token = self._peek()
        # Permit non-reserved use of some keywords as identifiers (e.g. a
        # column named "date" or aggregate names used as column names).
        if token.type is TokenType.IDENT:
            return self._advance().value
        if token.type is TokenType.KEYWORD and token.value in _SOFT_KEYWORDS:
            return self._advance().value.lower()
        raise ParseError(f"expected identifier, found {token.value!r}", token.line, token.column)

    # -- entry points -------------------------------------------------------

    def parse_statements(self) -> List[ast.Statement]:
        """Parse a batch: zero or more statements separated by semicolons."""
        statements: List[ast.Statement] = []
        while not self._at_end():
            while self._match(TokenType.SEMICOLON):
                pass
            if self._at_end():
                break
            statements.append(self.parse_statement())
            while self._match(TokenType.SEMICOLON):
                pass
        return statements

    def parse_statement(self) -> ast.Statement:
        """Parse exactly one statement."""
        token = self._peek()
        if token.is_keyword("EXPLAIN"):
            self._advance()
            costs = False
            if self._peek().type is TokenType.IDENT and self._peek().value.upper() == "COSTS":
                self._advance()
                costs = True
            inner = self.parse_statement()
            if not isinstance(inner, ast.Select):
                raise ParseError("EXPLAIN supports SELECT statements", token.line, token.column)
            return ast.Explain(inner, costs)
        if token.is_keyword("SELECT"):
            return self._parse_select_or_union()
        if token.is_keyword("INSERT"):
            return self._parse_insert()
        if token.is_keyword("UPDATE"):
            return self._parse_update()
        if token.is_keyword("DELETE"):
            return self._parse_delete()
        if token.is_keyword("CREATE"):
            return self._parse_create()
        if token.is_keyword("DROP"):
            return self._parse_drop()
        if token.is_keyword("EXEC", "EXECUTE"):
            return self._parse_execute()
        if token.is_keyword("DECLARE"):
            return self._parse_declare()
        if token.is_keyword("SET"):
            return self._parse_set()
        if token.is_keyword("IF"):
            return self._parse_if()
        if token.is_keyword("WHILE"):
            return self._parse_while()
        if token.is_keyword("RETURN"):
            self._advance()
            if self._starts_expression():
                return ast.ReturnStatement(self._parse_expression())
            return ast.ReturnStatement()
        if token.is_keyword("PRINT"):
            self._advance()
            return ast.PrintStatement(self._parse_expression())
        if token.is_keyword("BEGIN"):
            if self._peek(1).is_keyword("TRANSACTION", "TRAN"):
                self._advance()
                self._advance()
                return ast.BeginTransaction()
            raise ParseError("BEGIN blocks are only valid inside procedures", token.line, token.column)
        if token.is_keyword("COMMIT"):
            self._advance()
            self._match_keyword("TRANSACTION", "TRAN")
            return ast.CommitTransaction()
        if token.is_keyword("ROLLBACK"):
            self._advance()
            self._match_keyword("TRANSACTION", "TRAN")
            return ast.RollbackTransaction()
        if token.is_keyword("GRANT"):
            return self._parse_grant()
        raise ParseError(f"unexpected token {token.value!r}", token.line, token.column)

    def _at_end(self) -> bool:
        return self._peek().type is TokenType.EOF

    def _starts_expression(self) -> bool:
        token = self._peek()
        return token.type in (
            TokenType.NUMBER,
            TokenType.STRING,
            TokenType.PARAMETER,
            TokenType.IDENT,
            TokenType.LPAREN,
        ) or token.is_keyword("NULL", "NOT", "CASE", "EXISTS", "COUNT", "SUM", "AVG", "MIN", "MAX")

    # -- SELECT -------------------------------------------------------------

    def _parse_select_or_union(self) -> ast.Statement:
        first = self._parse_select()
        if not self._check_keyword("UNION"):
            return first
        branches = [first]
        while self._match_keyword("UNION"):
            self._expect_keyword("ALL")
            branches.append(self._parse_select())
        return ast.UnionAll(tuple(branches))

    def _parse_select(self) -> ast.Select:
        self._expect_keyword("SELECT")
        top = None
        if self._match_keyword("TOP"):
            if self._match(TokenType.LPAREN):
                top = self._parse_expression()
                self._expect(TokenType.RPAREN)
            else:
                top = self._parse_primary()
        distinct = False
        if self._match_keyword("DISTINCT"):
            distinct = True
        elif self._match_keyword("ALL"):
            pass
        items = [self._parse_select_item()]
        while self._match(TokenType.COMMA):
            items.append(self._parse_select_item())

        from_clause = None
        if self._match_keyword("FROM"):
            from_clause = self._parse_table_refs()
        where = None
        if self._match_keyword("WHERE"):
            where = self._parse_expression()
        group_by: Tuple[ast.Expression, ...] = ()
        if self._match_keyword("GROUP"):
            self._expect_keyword("BY")
            exprs = [self._parse_expression()]
            while self._match(TokenType.COMMA):
                exprs.append(self._parse_expression())
            group_by = tuple(exprs)
        having = None
        if self._match_keyword("HAVING"):
            having = self._parse_expression()
        order_by: Tuple[ast.OrderItem, ...] = ()
        if self._match_keyword("ORDER"):
            self._expect_keyword("BY")
            entries = [self._parse_order_item()]
            while self._match(TokenType.COMMA):
                entries.append(self._parse_order_item())
            order_by = tuple(entries)
        freshness = None
        if self._check_keyword("WITH") and self._peek(1).is_keyword("FRESHNESS"):
            self._advance()
            self._advance()
            amount_token = self._expect(TokenType.NUMBER)
            amount = float(amount_token.value)
            unit = self._expect_keyword("SECONDS", "MINUTES")
            if unit.value == "MINUTES":
                amount *= 60.0
            freshness = ast.FreshnessSpec(max_staleness_seconds=amount)
        return ast.Select(
            items=tuple(items),
            from_clause=from_clause,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            top=top,
            distinct=distinct,
            freshness=freshness,
        )

    def _parse_select_item(self) -> ast.SelectItem:
        token = self._peek()
        if token.type is TokenType.STAR:
            self._advance()
            return ast.SelectItem(ast.Star())
        # alias.* form
        if (
            token.type is TokenType.IDENT
            and self._peek(1).type is TokenType.DOT
            and self._peek(2).type is TokenType.STAR
        ):
            qualifier = self._advance().value
            self._advance()
            self._advance()
            return ast.SelectItem(ast.Star(qualifier=qualifier))
        # T-SQL assignment: SELECT @x = expr
        if token.type is TokenType.PARAMETER and self._peek(1).type is TokenType.OPERATOR and self._peek(1).value == "=":
            target = self._advance().value
            self._advance()  # =
            expression = self._parse_expression()
            return ast.SelectItem(expression, target_parameter=target)
        expression = self._parse_expression()
        alias = None
        if self._match_keyword("AS"):
            alias = self._identifier()
        elif self._peek().type is TokenType.IDENT:
            alias = self._advance().value
        return ast.SelectItem(expression, alias=alias)

    def _parse_order_item(self) -> ast.OrderItem:
        expression = self._parse_expression()
        descending = False
        if self._match_keyword("DESC"):
            descending = True
        else:
            self._match_keyword("ASC")
        return ast.OrderItem(expression, descending)

    def _parse_table_refs(self) -> ast.TableRef:
        ref = self._parse_joined_table()
        while self._match(TokenType.COMMA):
            right = self._parse_joined_table()
            ref = ast.JoinRef("CROSS", ref, right)
        return ref

    def _parse_joined_table(self) -> ast.TableRef:
        left = self._parse_primary_table()
        while True:
            kind = None
            if self._match_keyword("INNER"):
                kind = "INNER"
                self._expect_keyword("JOIN")
            elif self._match_keyword("LEFT"):
                self._match_keyword("OUTER")
                kind = "LEFT"
                self._expect_keyword("JOIN")
            elif self._match_keyword("CROSS"):
                kind = "CROSS"
                self._expect_keyword("JOIN")
            elif self._match_keyword("JOIN"):
                kind = "INNER"
            if kind is None:
                return left
            right = self._parse_primary_table()
            condition = None
            if kind != "CROSS":
                self._expect_keyword("ON")
                condition = self._parse_expression()
            left = ast.JoinRef(kind, left, right, condition)

    def _parse_primary_table(self) -> ast.TableRef:
        if self._match(TokenType.LPAREN):
            select = self._parse_select()
            self._expect(TokenType.RPAREN)
            self._match_keyword("AS")
            alias = self._identifier()
            return ast.DerivedTable(select, alias)
        parts = [self._identifier()]
        while self._match(TokenType.DOT):
            parts.append(self._identifier())
        if len(parts) > 4:
            token = self._peek()
            raise ParseError("names may have at most four parts", token.line, token.column)
        alias = None
        if self._match_keyword("AS"):
            alias = self._identifier()
        elif self._peek().type is TokenType.IDENT:
            alias = self._advance().value
        return ast.TableName(tuple(parts), alias)

    # -- DML ----------------------------------------------------------------

    def _parse_insert(self) -> ast.Insert:
        self._expect_keyword("INSERT")
        self._match_keyword("INTO")
        table = self._parse_plain_table_name()
        columns: Tuple[str, ...] = ()
        if self._peek().type is TokenType.LPAREN and not self._peek(1).is_keyword("SELECT"):
            self._advance()
            names = [self._identifier()]
            while self._match(TokenType.COMMA):
                names.append(self._identifier())
            self._expect(TokenType.RPAREN)
            columns = tuple(names)
        if self._match_keyword("VALUES"):
            rows = [self._parse_value_row()]
            while self._match(TokenType.COMMA):
                rows.append(self._parse_value_row())
            return ast.Insert(table, columns, rows=tuple(rows))
        if self._check_keyword("SELECT"):
            select = self._parse_select()
            return ast.Insert(table, columns, select=select)
        if self._match(TokenType.LPAREN):
            select = self._parse_select()
            self._expect(TokenType.RPAREN)
            return ast.Insert(table, columns, select=select)
        token = self._peek()
        raise ParseError("expected VALUES or SELECT in INSERT", token.line, token.column)

    def _parse_value_row(self) -> Tuple[ast.Expression, ...]:
        self._expect(TokenType.LPAREN)
        values = [self._parse_expression()]
        while self._match(TokenType.COMMA):
            values.append(self._parse_expression())
        self._expect(TokenType.RPAREN)
        return tuple(values)

    def _parse_update(self) -> ast.Update:
        self._expect_keyword("UPDATE")
        table = self._parse_plain_table_name()
        self._expect_keyword("SET")
        assignments = [self._parse_assignment()]
        while self._match(TokenType.COMMA):
            assignments.append(self._parse_assignment())
        where = None
        if self._match_keyword("WHERE"):
            where = self._parse_expression()
        return ast.Update(table, tuple(assignments), where)

    def _parse_assignment(self) -> Tuple[str, ast.Expression]:
        name = self._identifier()
        self._expect(TokenType.OPERATOR, "=")
        return (name, self._parse_expression())

    def _parse_delete(self) -> ast.Delete:
        self._expect_keyword("DELETE")
        self._match_keyword("FROM")
        table = self._parse_plain_table_name()
        where = None
        if self._match_keyword("WHERE"):
            where = self._parse_expression()
        return ast.Delete(table, where)

    def _parse_plain_table_name(self) -> ast.TableName:
        parts = [self._identifier()]
        while self._match(TokenType.DOT):
            parts.append(self._identifier())
        return ast.TableName(tuple(parts))

    # -- DDL ----------------------------------------------------------------

    def _parse_create(self) -> ast.Statement:
        self._expect_keyword("CREATE")
        if self._match_keyword("TABLE"):
            return self._parse_create_table()
        unique = bool(self._match_keyword("UNIQUE"))
        clustered = bool(self._match_keyword("CLUSTERED"))
        if self._match_keyword("INDEX"):
            return self._parse_create_index(unique, clustered)
        materialized = bool(self._match_keyword("MATERIALIZED"))
        cached = bool(self._match_keyword("CACHED"))
        if self._match_keyword("VIEW"):
            name = self._identifier()
            self._expect_keyword("AS")
            select = self._parse_select()
            return ast.CreateView(name, select, materialized=materialized or cached, cached=cached)
        if self._match_keyword("PROCEDURE", "PROC"):
            return self._parse_create_procedure()
        token = self._peek()
        raise ParseError(f"unsupported CREATE {token.value!r}", token.line, token.column)

    def _parse_create_table(self) -> ast.CreateTable:
        name = self._identifier()
        self._expect(TokenType.LPAREN)
        columns: List[ast.ColumnDef] = []
        primary_key: Tuple[str, ...] = ()
        foreign_keys: List[ast.ForeignKeyDef] = []
        while True:
            if self._check_keyword("PRIMARY"):
                self._advance()
                self._expect_keyword("KEY")
                self._expect(TokenType.LPAREN)
                names = [self._identifier()]
                while self._match(TokenType.COMMA):
                    names.append(self._identifier())
                self._expect(TokenType.RPAREN)
                primary_key = tuple(names)
            elif self._check_keyword("FOREIGN"):
                self._advance()
                self._expect_keyword("KEY")
                self._expect(TokenType.LPAREN)
                cols = [self._identifier()]
                while self._match(TokenType.COMMA):
                    cols.append(self._identifier())
                self._expect(TokenType.RPAREN)
                self._expect_keyword("REFERENCES")
                ref_table = self._identifier()
                ref_cols: List[str] = []
                if self._match(TokenType.LPAREN):
                    ref_cols.append(self._identifier())
                    while self._match(TokenType.COMMA):
                        ref_cols.append(self._identifier())
                    self._expect(TokenType.RPAREN)
                foreign_keys.append(
                    ast.ForeignKeyDef(tuple(cols), ref_table, tuple(ref_cols))
                )
            else:
                columns.append(self._parse_column_def())
            if not self._match(TokenType.COMMA):
                break
        self._expect(TokenType.RPAREN)
        return ast.CreateTable(name, tuple(columns), primary_key, tuple(foreign_keys))

    def _parse_column_def(self) -> ast.ColumnDef:
        name = self._identifier()
        sql_type = self._parse_type()
        nullable = True
        primary_key = False
        default = None
        while True:
            if self._check_keyword("NOT") and self._peek(1).is_keyword("NULL"):
                self._advance()
                self._advance()
                nullable = False
            elif self._match_keyword("NULL"):
                nullable = True
            elif self._check_keyword("PRIMARY"):
                self._advance()
                self._expect_keyword("KEY")
                primary_key = True
                nullable = False
            elif self._match_keyword("DEFAULT"):
                default = self._parse_primary()
            else:
                return ast.ColumnDef(name, sql_type, nullable, primary_key, default)

    def _parse_type(self) -> SqlType:
        token = self._peek()
        if not token.is_keyword(
            "INT", "INTEGER", "BIGINT", "FLOAT", "REAL", "NUMERIC", "DECIMAL",
            "VARCHAR", "CHAR", "DATE", "DATETIME", "BIT",
        ):
            raise ParseError(f"expected type name, found {token.value!r}", token.line, token.column)
        self._advance()
        word = token.value
        if word in ("INT", "INTEGER"):
            return INT
        if word == "BIGINT":
            return BIGINT
        if word in ("FLOAT", "REAL"):
            return FLOAT
        if word in ("NUMERIC", "DECIMAL"):
            precision = scale = None
            if self._match(TokenType.LPAREN):
                precision = int(self._expect(TokenType.NUMBER).value)
                if self._match(TokenType.COMMA):
                    scale = int(self._expect(TokenType.NUMBER).value)
                self._expect(TokenType.RPAREN)
            return SqlType(TypeKind.NUMERIC, precision=precision or 15, scale=scale or 2)
        if word == "VARCHAR":
            length = None
            if self._match(TokenType.LPAREN):
                length = int(self._expect(TokenType.NUMBER).value)
                self._expect(TokenType.RPAREN)
            return VARCHAR(length)
        if word == "CHAR":
            length = 1
            if self._match(TokenType.LPAREN):
                length = int(self._expect(TokenType.NUMBER).value)
                self._expect(TokenType.RPAREN)
            return CHAR(length)
        if word == "DATE":
            return DATE
        if word == "DATETIME":
            return DATETIME
        return BOOLEAN

    def _parse_create_index(self, unique: bool, clustered: bool) -> ast.CreateIndex:
        name = self._identifier()
        self._expect_keyword("ON")
        table = self._identifier()
        self._expect(TokenType.LPAREN)
        columns = [self._identifier()]
        while self._match(TokenType.COMMA):
            columns.append(self._identifier())
        self._expect(TokenType.RPAREN)
        return ast.CreateIndex(name, table, tuple(columns), unique, clustered)

    def _parse_create_procedure(self) -> ast.CreateProcedure:
        name = self._identifier()
        params: List[ast.ProcedureParam] = []
        if self._peek().type is TokenType.PARAMETER:
            params.append(self._parse_procedure_param())
            while self._match(TokenType.COMMA):
                params.append(self._parse_procedure_param())
        self._expect_keyword("AS")
        body = self._parse_block()
        return ast.CreateProcedure(name, tuple(params), tuple(body))

    def _parse_procedure_param(self) -> ast.ProcedureParam:
        token = self._expect(TokenType.PARAMETER)
        sql_type = self._parse_type()
        default = None
        if self._match(TokenType.OPERATOR, "="):
            default = self._parse_primary()
        return ast.ProcedureParam(token.value, sql_type, default)

    def _parse_block(self) -> List[ast.Statement]:
        """Parse BEGIN stmt... END, or a single statement."""
        if self._match_keyword("BEGIN"):
            body: List[ast.Statement] = []
            while not self._check_keyword("END"):
                if self._at_end():
                    token = self._peek()
                    raise ParseError("unterminated BEGIN block", token.line, token.column)
                while self._match(TokenType.SEMICOLON):
                    pass
                if self._check_keyword("END"):
                    break
                body.append(self.parse_statement())
                while self._match(TokenType.SEMICOLON):
                    pass
            self._expect_keyword("END")
            return body
        return [self.parse_statement()]

    def _parse_drop(self) -> ast.DropObject:
        self._expect_keyword("DROP")
        kind_token = self._expect_keyword("TABLE", "INDEX", "VIEW", "PROCEDURE", "PROC")
        kind = "PROCEDURE" if kind_token.value == "PROC" else kind_token.value
        name = self._identifier()
        return ast.DropObject(kind, name)

    def _parse_grant(self) -> ast.Grant:
        self._expect_keyword("GRANT")
        permission = self._expect_keyword("SELECT", "INSERT", "UPDATE", "DELETE", "EXEC", "EXECUTE").value
        self._expect_keyword("ON")
        object_name = self._identifier()
        self._expect_keyword("TO")
        principal = self._identifier()
        return ast.Grant(permission, object_name, principal)

    # -- procedural ----------------------------------------------------------

    def _parse_execute(self) -> ast.Execute:
        self._expect_keyword("EXEC", "EXECUTE")
        parts = [self._identifier()]
        while self._match(TokenType.DOT):
            parts.append(self._identifier())
        arguments: List[Tuple[Optional[str], ast.Expression]] = []
        if self._starts_expression() or self._peek().type is TokenType.PARAMETER:
            arguments.append(self._parse_exec_argument())
            while self._match(TokenType.COMMA):
                arguments.append(self._parse_exec_argument())
        return ast.Execute(tuple(parts), tuple(arguments))

    def _parse_exec_argument(self) -> Tuple[Optional[str], ast.Expression]:
        if (
            self._peek().type is TokenType.PARAMETER
            and self._peek(1).type is TokenType.OPERATOR
            and self._peek(1).value == "="
        ):
            name = self._advance().value
            self._advance()
            return (name, self._parse_expression())
        return (None, self._parse_expression())

    def _parse_declare(self) -> ast.Declare:
        self._expect_keyword("DECLARE")
        token = self._expect(TokenType.PARAMETER)
        sql_type = self._parse_type()
        initial = None
        if self._match(TokenType.OPERATOR, "="):
            initial = self._parse_expression()
        return ast.Declare(token.value, sql_type, initial)

    def _parse_set(self) -> ast.SetVariable:
        self._expect_keyword("SET")
        token = self._expect(TokenType.PARAMETER)
        self._expect(TokenType.OPERATOR, "=")
        return ast.SetVariable(token.value, self._parse_expression())

    def _parse_if(self) -> ast.IfStatement:
        self._expect_keyword("IF")
        condition = self._parse_expression()
        then_body = self._parse_block()
        else_body: List[ast.Statement] = []
        if self._match_keyword("ELSE"):
            else_body = self._parse_block()
        return ast.IfStatement(condition, tuple(then_body), tuple(else_body))

    def _parse_while(self) -> ast.WhileStatement:
        self._expect_keyword("WHILE")
        condition = self._parse_expression()
        body = self._parse_block()
        return ast.WhileStatement(condition, tuple(body))

    # -- expressions ----------------------------------------------------------

    def _parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self._match_keyword("OR"):
            right = self._parse_and()
            left = ast.BinaryOp("OR", left, right)
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self._match_keyword("AND"):
            right = self._parse_not()
            left = ast.BinaryOp("AND", left, right)
        return left

    def _parse_not(self) -> ast.Expression:
        if self._match_keyword("NOT"):
            return ast.UnaryOp("NOT", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Expression:
        left = self._parse_additive()
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in ("=", "<>", "<", "<=", ">", ">="):
            op = self._advance().value
            right = self._parse_additive()
            return ast.BinaryOp(op, left, right)
        negated = False
        if self._check_keyword("NOT") and self._peek(1).is_keyword("IN", "BETWEEN", "LIKE"):
            self._advance()
            negated = True
        if self._match_keyword("IS"):
            is_negated = bool(self._match_keyword("NOT"))
            self._expect_keyword("NULL")
            return ast.IsNull(left, negated=is_negated)
        if self._match_keyword("IN"):
            self._expect(TokenType.LPAREN)
            if self._check_keyword("SELECT"):
                subquery = self._parse_select()
                self._expect(TokenType.RPAREN)
                return ast.InSubquery(left, subquery, negated)
            items = [self._parse_expression()]
            while self._match(TokenType.COMMA):
                items.append(self._parse_expression())
            self._expect(TokenType.RPAREN)
            return ast.InList(left, tuple(items), negated)
        if self._match_keyword("BETWEEN"):
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return ast.Between(left, low, high, negated)
        if self._match_keyword("LIKE"):
            pattern = self._parse_additive()
            return ast.Like(left, pattern, negated)
        if negated:
            raise ParseError("dangling NOT", token.line, token.column)
        return left

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.value in ("+", "-"):
                op = self._advance().value
                right = self._parse_multiplicative()
                left = ast.BinaryOp(op, left, right)
            else:
                return left

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.type is TokenType.STAR:
                self._advance()
                left = ast.BinaryOp("*", left, self._parse_unary())
            elif token.type is TokenType.OPERATOR and token.value in ("/", "%"):
                op = self._advance().value
                left = ast.BinaryOp(op, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> ast.Expression:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value == "-":
            self._advance()
            operand = self._parse_unary()
            if isinstance(operand, ast.Literal) and isinstance(operand.value, (int, float)):
                return ast.Literal(-operand.value)
            return ast.UnaryOp("-", operand)
        if token.type is TokenType.OPERATOR and token.value == "+":
            self._advance()
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expression:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return ast.Literal(float(text))
            return ast.Literal(int(text))
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.value)
        if token.is_keyword("NULL"):
            self._advance()
            return ast.Literal(None)
        if token.type is TokenType.PARAMETER:
            self._advance()
            return ast.Parameter(token.value)
        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.is_keyword("EXISTS"):
            self._advance()
            self._expect(TokenType.LPAREN)
            subquery = self._parse_select()
            self._expect(TokenType.RPAREN)
            return ast.Exists(subquery)
        if token.is_keyword("COUNT", "SUM", "AVG", "MIN", "MAX"):
            self._advance()
            return self._parse_func_call(token.value)
        if token.type is TokenType.LPAREN:
            self._advance()
            if self._check_keyword("SELECT"):
                subquery = self._parse_select()
                self._expect(TokenType.RPAREN)
                return ast.ScalarSubquery(subquery)
            expression = self._parse_expression()
            self._expect(TokenType.RPAREN)
            return expression
        if token.type is TokenType.IDENT or token.value in _SOFT_KEYWORDS:
            name = self._identifier()
            if self._peek().type is TokenType.LPAREN:
                return self._parse_func_call(name.upper())
            if self._match(TokenType.DOT):
                column = self._identifier()
                return ast.ColumnRef(column, qualifier=name)
            return ast.ColumnRef(name)
        raise ParseError(f"unexpected token {token.value!r} in expression", token.line, token.column)

    def _parse_func_call(self, name: str) -> ast.FuncCall:
        self._expect(TokenType.LPAREN)
        distinct = bool(self._match_keyword("DISTINCT"))
        args: List[ast.Expression] = []
        if self._peek().type is TokenType.STAR:
            self._advance()
            args.append(ast.Star())
        elif self._peek().type is not TokenType.RPAREN:
            args.append(self._parse_expression())
            while self._match(TokenType.COMMA):
                args.append(self._parse_expression())
        self._expect(TokenType.RPAREN)
        return ast.FuncCall(name, tuple(args), distinct)

    def _parse_case(self) -> ast.CaseWhen:
        self._expect_keyword("CASE")
        whens: List[Tuple[ast.Expression, ast.Expression]] = []
        while self._match_keyword("WHEN"):
            condition = self._parse_expression()
            self._expect_keyword("THEN")
            result = self._parse_expression()
            whens.append((condition, result))
        else_result = None
        if self._match_keyword("ELSE"):
            else_result = self._parse_expression()
        self._expect_keyword("END")
        if not whens:
            token = self._peek()
            raise ParseError("CASE requires at least one WHEN", token.line, token.column)
        return ast.CaseWhen(tuple(whens), else_result)


#: Keywords that may also appear as identifiers (column/table names).
_SOFT_KEYWORDS = frozenset(
    {"DATE", "DATETIME", "KEY", "COUNT", "SUM", "AVG", "MIN", "MAX", "TOP", "ALL", "BIT"}
)


def parse(text: str) -> ast.Statement:
    """Parse a single statement from SQL text."""
    parser = Parser(text)
    statement = parser.parse_statement()
    while parser._match(TokenType.SEMICOLON):
        pass
    if not parser._at_end():
        token = parser._peek()
        raise ParseError(f"unexpected trailing input {token.value!r}", token.line, token.column)
    return statement


def parse_statements(text: str) -> List[ast.Statement]:
    """Parse a batch of statements from SQL text."""
    return Parser(text).parse_statements()


def parse_expression(text: str) -> ast.Expression:
    """Parse a standalone expression (used in tests and view predicates)."""
    parser = Parser(text)
    expression = parser._parse_expression()
    if not parser._at_end():
        token = parser._peek()
        raise ParseError(f"unexpected trailing input {token.value!r}", token.line, token.column)
    return expression
