"""Regression tests: pooled wire connections and close() ownership.

A Connection handed out by :class:`ConnectionPool` owns exactly one
socket.  Closing it must never disturb a sibling checkout, closing it
twice must be a no-op, and a cursor that already fetched its result
keeps serving buffered rows after the connection goes away.
"""

from __future__ import annotations

import pytest

from repro.client import ConnectionPool, connect
from repro.errors import ClientError


class TestPooledWireClose:
    def test_closing_one_checkout_spares_the_sibling(self, wire_server):
        _, server = wire_server
        pool = ConnectionPool(lambda: connect(server.dsn), size=2)
        try:
            first = pool.acquire()
            second = pool.acquire()
            # Close the first checkout's socket outright (not a release).
            first.close()
            # The sibling's socket must be untouched: same dial, live query.
            generation_before = second.target.generation
            rows = second.execute("SELECT cid FROM customer WHERE cid = 1").rows
            assert rows == [(1,)]
            assert second.target.generation == generation_before  # no redial
            pool.release(second)
        finally:
            pool.close()

    def test_double_close_is_safe(self, wire_server):
        _, server = wire_server
        connection = connect(server.dsn)
        connection.execute("SELECT cid FROM customer WHERE cid = 1")
        connection.close()
        connection.close()  # second close: silent no-op
        with pytest.raises(ClientError, match="closed"):
            connection.execute("SELECT cid FROM customer WHERE cid = 1")

    def test_close_while_fetching_keeps_buffered_rows(self, wire_server):
        _, server = wire_server
        connection = connect(server.dsn)
        cursor = connection.cursor()
        cursor.execute("SELECT cid FROM customer ORDER BY cid")
        first = cursor.fetchone()
        connection.close()
        # The result set was fully reassembled client-side before close:
        # iteration continues from the buffer.
        assert first == (1,)
        assert cursor.fetchone() == (2,)
        remaining = cursor.fetchall()
        assert len(remaining) == 198
        # But new statements on the closed connection must fail loudly.
        with pytest.raises(ClientError, match="closed"):
            connection.execute("SELECT 1 AS one")

    def test_pool_close_tears_down_every_wire_connection(self, wire_server):
        _, server = wire_server
        dialed = []

        def factory():
            conn = connect(server.dsn)
            dialed.append(conn)
            return conn

        pool = ConnectionPool(factory, size=2)
        with pool.connection() as first:
            first.execute("SELECT cid FROM customer WHERE cid = 1")
        with pool.connection() as again:
            again.execute("SELECT cid FROM customer WHERE cid = 2")
        pool.close()
        assert dialed  # the pool actually dialed at least once
        for conn in dialed:
            assert conn.closed
