"""Bench trajectory recording: persist bench numbers to ``BENCH_pr10.json``.

ROADMAP asks for a recorded perf trajectory — numbers committed alongside
the code that produced them, so a later PR can show its speedup against
this one instead of against folklore. The :class:`BenchRecorder` collects
named measurements from bench tests (via the session-scoped
``bench_recorder`` fixture in ``conftest.py``) and, when pytest runs with
``--bench-record``, writes them as one JSON document at the repo root.

The document is environment-stamped (Python version, platform, smoke
flag) because absolute numbers only compare within one environment;
ratios (speedups, savings) travel better and the benches record both.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path
from typing import Any, Dict, Optional

#: The trajectory tag this PR records under, and the default output file.
BENCH_TAG = "pr10"
DEFAULT_RECORD_PATH = Path(__file__).resolve().parents[1] / f"BENCH_{BENCH_TAG}.json"


class BenchRecorder:
    """Collects named bench measurements and writes them as JSON.

    ``path=None`` makes the recorder a collector without a sink: benches
    always record (it is cheap), and the session only writes a file when
    ``--bench-record`` asked for one.
    """

    def __init__(self, path: Optional[Path] = None, smoke: bool = False):
        self.path = Path(path) if path is not None else None
        self.smoke = smoke
        self.benches: Dict[str, Dict[str, Any]] = {}

    def record(self, bench: str, **values: Any) -> None:
        """Merge measurements for one bench (repeat calls accumulate)."""
        self.benches.setdefault(bench, {}).update(values)

    def payload(self) -> Dict[str, Any]:
        return {
            "bench_tag": BENCH_TAG,
            "smoke": self.smoke,
            "python": platform.python_version(),
            "implementation": sys.implementation.name,
            "platform": platform.platform(),
            "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "benches": self.benches,
        }

    def write(self) -> Optional[Path]:
        """Write the document; returns the path, or None when disabled."""
        if self.path is None or not self.benches:
            return None
        self.path.write_text(json.dumps(self.payload(), indent=2, sort_keys=True) + "\n")
        return self.path
