"""Predicate analysis: conjunct splitting, normalization, implication.

View matching needs to reason about select-project view predicates:
given a view defined with predicate ``P_v`` and a query asking for rows
satisfying ``P_q``, the view contains the required rows when ``P_q ⇒ P_v``.
When the implication depends on a run-time parameter the result is a
*guard*: a parameter-only predicate that is sufficient for containment —
exactly what the paper turns into a ChoosePlan branch condition.

Normalization handles simple comparisons ``col op (literal|@param)`` in
either orientation, plus BETWEEN (split into two bounds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Union

from repro.sql import ast

_FLIP = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def split_conjuncts(expression: Optional[ast.Expression]) -> List[ast.Expression]:
    """Flatten a predicate into its top-level AND conjuncts."""
    if expression is None:
        return []
    result: List[ast.Expression] = []
    stack = [expression]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.BinaryOp) and node.op == "AND":
            stack.append(node.left)
            stack.append(node.right)
        elif isinstance(node, ast.Between):
            # BETWEEN splits into two range conjuncts (preserving NOT forms
            # is not needed: negated BETWEEN stays opaque).
            if node.negated:
                result.append(node)
            else:
                stack.append(ast.BinaryOp(">=", node.operand, node.low))
                stack.append(ast.BinaryOp("<=", node.operand, node.high))
        else:
            result.append(node)
    return result


def and_together(conjuncts: List[ast.Expression]) -> Optional[ast.Expression]:
    """Combine conjuncts back into a single AND expression (None if empty)."""
    if not conjuncts:
        return None
    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = ast.BinaryOp("AND", result, conjunct)
    return result


@dataclass(frozen=True)
class SimpleComparison:
    """A normalized comparison ``column op operand``.

    ``operand`` is a :class:`~repro.sql.ast.Literal` or
    :class:`~repro.sql.ast.Parameter`; ``column`` keeps its qualifier so the
    caller can attribute the conjunct to a table alias.
    """

    column: ast.ColumnRef
    op: str
    operand: Union[ast.Literal, ast.Parameter]

    @property
    def is_parameterized(self) -> bool:
        return isinstance(self.operand, ast.Parameter)

    @property
    def constant(self) -> Any:
        if isinstance(self.operand, ast.Literal):
            return self.operand.value
        return None


def normalize_comparison(expression: ast.Expression) -> Optional[SimpleComparison]:
    """Extract a SimpleComparison from a conjunct, or None if not simple."""
    if not isinstance(expression, ast.BinaryOp):
        return None
    if expression.op not in _FLIP:
        return None
    left, right, op = expression.left, expression.right, expression.op
    if isinstance(left, ast.ColumnRef) and isinstance(right, (ast.Literal, ast.Parameter)):
        return SimpleComparison(left, op, right)
    if isinstance(right, ast.ColumnRef) and isinstance(left, (ast.Literal, ast.Parameter)):
        return SimpleComparison(right, _FLIP[op], left)
    return None


def conjunct_tables(expression: ast.Expression) -> set:
    """Return the set of lowercase qualifiers referenced by an expression.

    Unqualified columns produce an empty-string entry; the binder resolves
    those to a unique table before predicate placement.
    """
    qualifiers = set()
    for column in ast.expression_columns(expression):
        qualifiers.add((column.qualifier or "").lower())
    return qualifiers


def references_parameters_only(expression: ast.Expression) -> bool:
    """True when an expression references no columns (a valid guard)."""
    return not ast.expression_columns(expression)


@dataclass
class ImplicationResult:
    """Result of checking ``query_conjuncts ⇒ view_conjunct``.

    * ``implied`` and no guard: containment holds unconditionally.
    * ``implied`` with ``guard``: containment holds whenever the guard
      (a parameter-only predicate) evaluates to true at run time.
    * not ``implied``: the view cannot serve this query (for this conjunct).
    """

    implied: bool
    guard: Optional[ast.Expression] = None


def implies(
    query_comparisons: List[SimpleComparison],
    view_comparison: SimpleComparison,
) -> ImplicationResult:
    """Check whether the query's conjuncts on a column imply a view conjunct.

    Only comparisons on the same column participate. Constants decide
    immediately; parameters produce guards. The guards are *sufficient*
    conditions (conservative for strict inequalities), which preserves
    correctness: a false guard merely routes to the backend.
    """
    column = view_comparison.column.name.lower()
    view_op = view_comparison.op
    view_value = view_comparison.constant

    candidates = [
        comparison
        for comparison in query_comparisons
        if comparison.column.name.lower() == column
    ]
    for comparison in candidates:
        outcome = _single_implication(comparison, view_op, view_value)
        if outcome is not None:
            return outcome
    return ImplicationResult(implied=False)


def _single_implication(
    query: SimpleComparison, view_op: str, view_value: Any
) -> Optional[ImplicationResult]:
    """Check one query comparison against one view conjunct.

    Returns None when this query comparison says nothing about the view
    conjunct (another comparison may still decide it).
    """
    query_op = query.op

    if query.is_parameterized:
        parameter = query.operand
        # query col = @p  ⇒  view col op K   iff   @p op K
        if query_op == "=":
            if view_op in ("=", "<", "<=", ">", ">="):
                return ImplicationResult(True, ast.BinaryOp(view_op, parameter, ast.Literal(view_value)))
            return None
        # Upper-bound query predicates against upper-bound view conjuncts.
        if query_op in ("<", "<=") and view_op in ("<", "<="):
            # col <= @p ⇒ col <= K  iff @p <= K; col < @p ⇒ col < K iff @p <= K
            # col <= @p ⇒ col < K   iff @p < K
            guard_op = "<=" if (view_op == "<=" or query_op == "<") else "<"
            if view_op == "<" and query_op == "<=":
                guard_op = "<"
            return ImplicationResult(True, ast.BinaryOp(guard_op, parameter, ast.Literal(view_value)))
        if query_op in (">", ">=") and view_op in (">", ">="):
            guard_op = ">=" if (view_op == ">=" or query_op == ">") else ">"
            if view_op == ">" and query_op == ">=":
                guard_op = ">"
            return ImplicationResult(True, ast.BinaryOp(guard_op, parameter, ast.Literal(view_value)))
        return None

    constant = query.constant
    if constant is None or view_value is None:
        return None
    try:
        if query_op == "=":
            if _op_holds(constant, view_op, view_value):
                return ImplicationResult(True)
            return ImplicationResult(False)
        if query_op in ("<", "<=") and view_op in ("<", "<="):
            # col <= c ⇒ col <= K iff c <= K ; col <= c ⇒ col < K iff c < K
            boundary_ok = constant < view_value or (
                constant == view_value
                and not (view_op == "<" and query_op == "<=")
            )
            return ImplicationResult(boundary_ok)
        if query_op in (">", ">=") and view_op in (">", ">="):
            boundary_ok = constant > view_value or (
                constant == view_value
                and not (view_op == ">" and query_op == ">=")
            )
            return ImplicationResult(boundary_ok)
    except TypeError:
        return None
    return None


def _op_holds(left: Any, op: str, right: Any) -> bool:
    if op == "=":
        return left == right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    if op == "<>":
        return left != right
    raise ValueError(f"unknown op {op!r}")


def negate(expression: ast.Expression) -> ast.Expression:
    """Return NOT(expression), simplifying plain comparisons."""
    if isinstance(expression, ast.BinaryOp) and expression.op in ("=", "<>", "<", "<=", ">", ">="):
        inverse = {"=": "<>", "<>": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}
        return ast.BinaryOp(inverse[expression.op], expression.left, expression.right)
    return ast.UnaryOp("NOT", expression)
