"""The fourteen web interactions and the three benchmark mixes.

The paper divides the interactions into two activity classes and gives
the class frequencies per mix (§6.1.1):

=========  ======  =====
Workload   Browse  Order
=========  ======  =====
Browsing     95 %    5 %
Shopping     80 %   20 %
Ordering     50 %   50 %
=========  ======  =====

The per-interaction probabilities below follow the TPC-W specification's
mix tables (WIPSb / WIPS / WIPSo), which realize exactly those splits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Browse-class interactions (read-dominated).
BROWSE_INTERACTIONS = [
    "home",
    "new_products",
    "best_sellers",
    "product_detail",
    "search_request",
    "search_results",
]

#: Order-class interactions (update-dominated).
ORDER_INTERACTIONS = [
    "shopping_cart",
    "customer_registration",
    "buy_request",
    "buy_confirm",
    "order_inquiry",
    "order_display",
    "admin_request",
    "admin_confirm",
]

INTERACTIONS = BROWSE_INTERACTIONS + ORDER_INTERACTIONS


@dataclass
class WorkloadMix:
    """A named interaction mix."""

    name: str
    weights: Dict[str, float]

    def __post_init__(self):
        total = sum(self.weights.values())
        self.weights = {key: value / total for key, value in self.weights.items()}
        self._names = list(self.weights)
        self._cumulative: List[float] = []
        running = 0.0
        for name in self._names:
            running += self.weights[name]
            self._cumulative.append(running)

    def sample(self, rng: random.Random) -> str:
        """Draw one interaction according to the mix."""
        point = rng.random()
        for name, bound in zip(self._names, self._cumulative):
            if point <= bound:
                return name
        return self._names[-1]

    def browse_fraction(self) -> float:
        return sum(self.weights[name] for name in BROWSE_INTERACTIONS)

    def order_fraction(self) -> float:
        return sum(self.weights[name] for name in ORDER_INTERACTIONS)


#: TPC-W specification mix tables (percent).
MIXES: Dict[str, WorkloadMix] = {
    "Browsing": WorkloadMix(
        "Browsing",
        {
            "home": 29.00,
            "new_products": 11.00,
            "best_sellers": 11.00,
            "product_detail": 21.00,
            "search_request": 12.00,
            "search_results": 11.00,
            "shopping_cart": 2.00,
            "customer_registration": 0.82,
            "buy_request": 0.75,
            "buy_confirm": 0.69,
            "order_inquiry": 0.30,
            "order_display": 0.25,
            "admin_request": 0.10,
            "admin_confirm": 0.09,
        },
    ),
    "Shopping": WorkloadMix(
        "Shopping",
        {
            "home": 16.00,
            "new_products": 5.00,
            "best_sellers": 5.00,
            "product_detail": 17.00,
            "search_request": 20.00,
            "search_results": 17.00,
            "shopping_cart": 11.60,
            "customer_registration": 3.00,
            "buy_request": 2.60,
            "buy_confirm": 1.20,
            "order_inquiry": 0.75,
            "order_display": 0.66,
            "admin_request": 0.10,
            "admin_confirm": 0.09,
        },
    ),
    "Ordering": WorkloadMix(
        "Ordering",
        {
            "home": 9.12,
            "new_products": 0.46,
            "best_sellers": 0.46,
            "product_detail": 12.35,
            "search_request": 14.53,
            "search_results": 13.08,
            "shopping_cart": 13.53,
            "customer_registration": 12.86,
            "buy_request": 12.73,
            "buy_confirm": 10.18,
            "order_inquiry": 0.25,
            "order_display": 0.22,
            "admin_request": 0.12,
            "admin_confirm": 0.11,
        },
    ),
}


def browse_order_split(mix_name: str) -> Tuple[float, float]:
    """Return the (browse, order) class fractions of a mix."""
    mix = MIXES[mix_name]
    return mix.browse_fraction(), mix.order_fraction()
