"""Statement fast path: SQL-text parse cache and bounded plan cache."""

import pytest

from repro import Server
from repro.common.lru import LRUCache
from repro.errors import ExecutionError


@pytest.fixture
def server():
    s = Server("s")
    s.create_database("db")
    s.execute("CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR(10))")
    s.execute("INSERT INTO t VALUES (1, 'one'), (2, 'two')")
    return s


class TestLRUCache:
    def test_hit_miss_accounting(self):
        cache = LRUCache(4)
        assert cache.get("a") is None
        cache["a"] = 1
        assert cache.get("a") == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(2)
        cache["a"] = 1
        cache["b"] = 2
        cache.get("a")  # refresh a; b becomes the LRU entry
        cache["c"] = 3
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.stats.evictions == 1

    def test_validator_counts_invalidation_not_hit(self):
        cache = LRUCache(4)
        cache["a"] = ("v1", "payload")
        assert cache.get("a", valid=lambda e: e[0] == "v2") is None
        assert cache.stats.invalidations == 1
        assert cache.stats.hits == 0
        assert "a" not in cache

    def test_eviction_callback(self):
        closed = []
        cache = LRUCache(1, on_evict=closed.append)
        cache["a"] = "first"
        cache["b"] = "second"
        assert closed == ["first"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestParseCache:
    def test_repeated_batch_parses_once(self, server):
        sql = "SELECT v FROM t WHERE id = @id"
        before = server.parses
        for i in range(5):
            server.execute(sql, params={"id": 1})
        assert server.parses == before + 1
        assert server.total_work.parse_cache_hits >= 4

    def test_distinct_texts_parse_separately(self, server):
        before = server.parses
        server.execute("SELECT v FROM t WHERE id = 1")
        server.execute("SELECT v FROM t WHERE id = 2")
        assert server.parses == before + 2

    def test_ddl_version_bump_invalidates_parse_cache(self, server):
        sql = "SELECT v FROM t WHERE id = @id"
        server.execute(sql, params={"id": 1})
        before = server.parses
        server.execute("CREATE INDEX ix_t_v ON t (v)")  # bumps the version
        server.execute(sql, params={"id": 1})
        # DDL batch itself plus the re-parse of the now-stale entry.
        assert server.parses == before + 2
        assert server._parse_cache.stats.invalidations >= 1

    def test_fastpath_disabled_parses_every_time(self):
        s = Server("slow", statement_fastpath=False)
        s.create_database("db")
        s.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        s.execute("INSERT INTO t VALUES (1)")
        before = s.parses
        for _ in range(3):
            s.execute("SELECT id FROM t")
        assert s.parses == before + 3
        assert s.total_work.parse_cache_hits == 0

    def test_stats_surface(self, server):
        server.execute("SELECT v FROM t")
        server.execute("SELECT v FROM t")
        stats = server.statement_cache_stats()
        assert stats["parse_cache"]["hits"] >= 1
        assert stats["parses"] >= 1
        assert set(stats) >= {
            "parse_cache",
            "plan_cache",
            "parses",
            "prepared_statements",
            "parse_cache_hits",
            "prepared_executions",
            "round_trips_saved",
        }


class TestPlanCache:
    def test_plan_cache_is_bounded(self):
        s = Server("tiny", plan_cache_size=2)
        s.create_database("db")
        s.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        s.execute("INSERT INTO t VALUES (1)")
        for i in range(5):
            s.execute(f"SELECT id FROM t WHERE id = {i}")
        assert len(s._plan_cache) <= 2
        assert s._plan_cache.stats.evictions >= 3

    def test_ddl_version_bump_invalidates_plan_cache(self, server):
        sql = "SELECT v FROM t WHERE id = @id"
        server.execute(sql, params={"id": 1})
        hits_before = server._plan_cache.stats.hits
        server.execute(sql, params={"id": 2})
        assert server._plan_cache.stats.hits == hits_before + 1
        server.execute("CREATE INDEX ix_t_v2 ON t (v)")
        invalidations_before = server._plan_cache.stats.invalidations
        server.execute(sql, params={"id": 1})
        assert server._plan_cache.stats.invalidations == invalidations_before + 1

    def test_repeated_execution_reuses_plan(self, server):
        sql = "SELECT v FROM t WHERE id = @id"
        server.execute(sql, params={"id": 1})
        entries = len(server._plan_cache)
        server.execute(sql, params={"id": 2})
        assert len(server._plan_cache) == entries


class TestUnionTypeCheck:
    def test_incompatible_branch_types_rejected(self, server):
        server.execute("CREATE TABLE s (id INT PRIMARY KEY, n FLOAT)")
        server.execute("INSERT INTO s VALUES (1, 1.5)")
        with pytest.raises(ExecutionError, match="not type-compatible at column 1"):
            server.execute("SELECT v FROM t UNION ALL SELECT n FROM s")

    def test_numeric_widening_is_compatible(self, server):
        server.execute("CREATE TABLE s (id INT PRIMARY KEY, n FLOAT)")
        server.execute("INSERT INTO s VALUES (7, 1.5)")
        result = server.execute("SELECT id FROM t UNION ALL SELECT n FROM s")
        assert len(result.rows) == 3
