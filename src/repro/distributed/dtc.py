"""A Distributed Transaction Coordinator (DTC) analogue.

SQL Server supports distributed transactions across linked servers through
Microsoft DTC and two-phase commit. This module provides the equivalent
for the repro engine: a coordinator that enlists per-database transactions
and commits them atomically — all participants commit, or all roll back.

The engine's local transactions apply changes eagerly with undo logs, so
*prepare* here validates that every enlisted transaction is still active
(the failure window 2PC protects against), and *commit* finalizes each
participant. Any prepare/commit failure triggers rollback everywhere,
which the undo logs make possible.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import DistributedError, TransactionError
from repro.obs.metrics import global_registry
from repro.obs.tracing import Tracer

# The DTC has no owning server, so its spans and counters go to the
# process-global tracer/registry; spans still nest under whatever server
# span is active when commit() is called (context propagation).
_TRACER = Tracer(service="dtc")


class DistributedTransactionCoordinator:
    """Coordinates one distributed transaction across databases."""

    def __init__(self):
        # Each participant is (database, transaction).
        self._participants: List[Tuple[object, object]] = []
        self._finished = False

    def begin_on(self, database) -> object:
        """Begin a branch transaction on a database and enlist it."""
        transaction = database.transactions.begin()
        self._participants.append((database, transaction))
        return transaction

    def enlist(self, database, transaction) -> None:
        """Enlist an already-running transaction."""
        self._participants.append((database, transaction))

    @property
    def participant_count(self) -> int:
        return len(self._participants)

    def prepare(self) -> bool:
        """Phase one: every participant votes."""
        if self._finished:
            raise DistributedError("transaction already finished")
        with _TRACER.span("2pc.prepare", participants=len(self._participants)):
            for _, transaction in self._participants:
                if not transaction.active:
                    global_registry().counter("dtc.prepare_failures").inc()
                    return False
            return True

    def commit(self) -> None:
        """Phase two: commit everywhere, or roll back everywhere."""
        with _TRACER.span("2pc.commit", participants=len(self._participants)):
            if not self.prepare():
                self.rollback()
                raise DistributedError(
                    "prepare failed; distributed transaction rolled back"
                )
            errors = []
            for database, transaction in self._participants:
                try:
                    database.transactions.commit(transaction)
                except TransactionError as exc:  # pragma: no cover - defensive
                    errors.append(exc)
            self._finished = True
            global_registry().counter("dtc.commits").inc()
            if errors:
                raise DistributedError(f"commit phase reported errors: {errors}")

    def rollback(self) -> None:
        """Abort every still-active participant."""
        if self._finished:
            return
        with _TRACER.span("2pc.rollback", participants=len(self._participants)):
            for database, transaction in self._participants:
                if transaction.active:
                    database.transactions.rollback(transaction)
            self._finished = True
            global_registry().counter("dtc.rollbacks").inc()
