"""The length-prefixed binary wire protocol.

Frame layout (all integers big-endian)::

    +----------------+-----------+------------------------+
    | length (u32)   | op (u8)   | payload (length-1 B)   |
    +----------------+-----------+------------------------+

``length`` counts the opcode byte plus the payload, so an empty-payload
frame has length 1. Frames larger than :data:`MAX_FRAME` are a
:class:`~repro.errors.ProtocolError` on both ends — a bounded frame size
is what keeps a misbehaving peer from ballooning the receiver's memory.

The payload is one *value* in a tagged binary encoding covering the
engine's data model: NULL, booleans, 64-bit and big integers, floats,
strings, bytes, dates, datetimes, lists, tuples, dicts with string keys,
:class:`~repro.common.types.SqlType` and :class:`~repro.common.schema.Schema`
(so result metadata round-trips without a side channel). Every request
and response payload is a dict at the top level.

Conversation (client to the left)::

    HELLO {protocol, database, principal}  -->
                                           <--  WELCOME {protocol, server, database}
    EXECUTE {sql, params, budget, trace}   -->
                                           <--  RESULT {schema, rowcount, ...}
                                           <--  ROWS {rows, last=False} ...
                                           <--  ROWS {rows, last=True}
    PREPARE {sql}                          -->
                                           <--  PREPARED {handle}
    EXECUTE_PREPARED {handle, params, ...} -->
                                           <--  RESULT / ROWS as above
    PING                                   -->
                                           <--  PONG
    BYE                                    -->  (server closes)

Any request may instead be answered by ``ERROR {kind, message,
transient}`` carrying the server-side :class:`~repro.errors.ReproError`
taxonomy — including the ``transient`` bit, so client-side retry
policies and failover routers make the same decisions they would make
in-process. Row streaming rides the engine's batch-execution chunk size
(PR 6): a ``RESULT`` header is followed by row batches of the
requester's ``fetch_rows`` (default: the server's ``batch_rows``), the
wire analogue of :class:`~repro.exec.operators.BatchCursor` draining a
plan chunk-at-a-time.

``budget`` in a request header is the *remaining* end-to-end deadline in
seconds (PR 9): the server re-anchors it on its own clock, so deadline
scopes survive the network hop without the two sides sharing a clock.
``trace`` carries ``(trace_id, span_id)`` of the client's active span;
the server parents its spans under it, stitching one distributed trace.
"""

from __future__ import annotations

import datetime
import struct
from typing import Any, Dict, List, Optional, Tuple

from repro.common.schema import Column, Schema
from repro.common.types import SqlType, TypeKind
from repro.engine.results import Result
from repro.errors import ProtocolError, RemoteError, ReproError

#: Protocol version spoken by this module. The handshake requires an
#: exact match: the protocol is young enough that cross-version
#: negotiation would only hide mistakes.
PROTOCOL_VERSION = 1

#: Upper bound on one frame (opcode + payload), bytes.
MAX_FRAME = 64 * 1024 * 1024

# -- opcodes ----------------------------------------------------------------

OP_HELLO = 0x01
OP_WELCOME = 0x02
OP_EXECUTE = 0x03
OP_PREPARE = 0x04
OP_PREPARED = 0x05
OP_EXECUTE_PREPARED = 0x06
OP_RESULT = 0x07
OP_ROWS = 0x08
OP_ERROR = 0x09
OP_PING = 0x0A
OP_PONG = 0x0B
OP_BYE = 0x0C
OP_CLOSE_PREPARED = 0x0D

OP_NAMES = {
    OP_HELLO: "HELLO",
    OP_WELCOME: "WELCOME",
    OP_EXECUTE: "EXECUTE",
    OP_PREPARE: "PREPARE",
    OP_PREPARED: "PREPARED",
    OP_EXECUTE_PREPARED: "EXECUTE_PREPARED",
    OP_RESULT: "RESULT",
    OP_ROWS: "ROWS",
    OP_ERROR: "ERROR",
    OP_PING: "PING",
    OP_PONG: "PONG",
    OP_BYE: "BYE",
    OP_CLOSE_PREPARED: "CLOSE_PREPARED",
}

# -- value tags -------------------------------------------------------------

_T_NULL = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT64 = 0x03
_T_BIGINT = 0x04  # arbitrary precision, decimal string
_T_FLOAT = 0x05
_T_STR = 0x06
_T_BYTES = 0x07
_T_DATE = 0x08
_T_DATETIME = 0x09
_T_LIST = 0x0A
_T_TUPLE = 0x0B
_T_DICT = 0x0C
_T_SQLTYPE = 0x0D
_T_SCHEMA = 0x0E

_U8 = struct.Struct("!B")
_U32 = struct.Struct("!I")
_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")
_INT64_MIN, _INT64_MAX = -(2**63), 2**63 - 1


def _encode_str(out: bytearray, text: str) -> None:
    raw = text.encode("utf-8")
    out += _U32.pack(len(raw))
    out += raw


def encode_value(out: bytearray, value: Any) -> None:
    """Append the tagged encoding of ``value`` to ``out``."""
    if value is None:
        out += _U8.pack(_T_NULL)
    elif value is True:
        out += _U8.pack(_T_TRUE)
    elif value is False:
        out += _U8.pack(_T_FALSE)
    elif isinstance(value, int):
        if _INT64_MIN <= value <= _INT64_MAX:
            out += _U8.pack(_T_INT64)
            out += _I64.pack(value)
        else:
            out += _U8.pack(_T_BIGINT)
            _encode_str(out, str(value))
    elif isinstance(value, float):
        out += _U8.pack(_T_FLOAT)
        out += _F64.pack(value)
    elif isinstance(value, str):
        out += _U8.pack(_T_STR)
        _encode_str(out, value)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        out += _U8.pack(_T_BYTES)
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, datetime.datetime):  # before date: datetime is a date
        out += _U8.pack(_T_DATETIME)
        _encode_str(out, value.isoformat())
    elif isinstance(value, datetime.date):
        out += _U8.pack(_T_DATE)
        _encode_str(out, value.isoformat())
    elif isinstance(value, tuple):
        out += _U8.pack(_T_TUPLE)
        out += _U32.pack(len(value))
        for item in value:
            encode_value(out, item)
    elif isinstance(value, list):
        out += _U8.pack(_T_LIST)
        out += _U32.pack(len(value))
        for item in value:
            encode_value(out, item)
    elif isinstance(value, dict):
        out += _U8.pack(_T_DICT)
        out += _U32.pack(len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise ProtocolError(f"dict keys on the wire must be strings, not {key!r}")
            _encode_str(out, key)
            encode_value(out, item)
    elif isinstance(value, SqlType):
        out += _U8.pack(_T_SQLTYPE)
        _encode_str(out, value.kind.value)
        for extra in (value.length, value.precision, value.scale):
            encode_value(out, extra)
    elif isinstance(value, Schema):
        out += _U8.pack(_T_SCHEMA)
        out += _U32.pack(len(value.columns))
        for column in value.columns:
            _encode_str(out, column.name)
            encode_value(out, column.qualifier)
            encode_value(out, column.nullable)
            encode_value(out, column.sql_type)
    else:
        raise ProtocolError(f"cannot encode {type(value).__name__} value on the wire")


_KIND_BY_VALUE = {kind.value: kind for kind in TypeKind}


class _Reader:
    """A cursor over one frame's payload bytes."""

    __slots__ = ("data", "pos")

    def __init__(self, data: memoryview):
        self.data = data
        self.pos = 0

    def take(self, count: int) -> memoryview:
        end = self.pos + count
        if end > len(self.data):
            raise ProtocolError(
                f"truncated frame: wanted {count} bytes at offset {self.pos}, "
                f"frame has {len(self.data)}"
            )
        chunk = self.data[self.pos : end]
        self.pos = end
        return chunk

    def u8(self) -> int:
        return _U8.unpack(self.take(1))[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def text(self) -> str:
        return bytes(self.take(self.u32())).decode("utf-8")


def _decode(reader: _Reader) -> Any:
    tag = reader.u8()
    if tag == _T_NULL:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT64:
        return _I64.unpack(reader.take(8))[0]
    if tag == _T_BIGINT:
        return int(reader.text())
    if tag == _T_FLOAT:
        return _F64.unpack(reader.take(8))[0]
    if tag == _T_STR:
        return reader.text()
    if tag == _T_BYTES:
        return bytes(reader.take(reader.u32()))
    if tag == _T_DATE:
        return datetime.date.fromisoformat(reader.text())
    if tag == _T_DATETIME:
        return datetime.datetime.fromisoformat(reader.text())
    if tag in (_T_LIST, _T_TUPLE):
        count = reader.u32()
        items = [_decode(reader) for _ in range(count)]
        return tuple(items) if tag == _T_TUPLE else items
    if tag == _T_DICT:
        count = reader.u32()
        return {reader.text(): _decode(reader) for _ in range(count)}
    if tag == _T_SQLTYPE:
        kind_name = reader.text()
        kind = _KIND_BY_VALUE.get(kind_name)
        if kind is None:
            raise ProtocolError(f"unknown SQL type kind {kind_name!r} on the wire")
        length, precision, scale = _decode(reader), _decode(reader), _decode(reader)
        return SqlType(kind, length=length, precision=precision, scale=scale)
    if tag == _T_SCHEMA:
        count = reader.u32()
        columns = []
        for _ in range(count):
            name = reader.text()
            qualifier = _decode(reader)
            nullable = _decode(reader)
            sql_type = _decode(reader)
            columns.append(
                Column(name=name, sql_type=sql_type, qualifier=qualifier, nullable=nullable)
            )
        return Schema(columns)
    raise ProtocolError(f"unknown value tag 0x{tag:02x} on the wire")


def decode_value(data: bytes) -> Any:
    """Decode one value from ``data`` (must consume it exactly)."""
    reader = _Reader(memoryview(data))
    value = _decode(reader)
    if reader.pos != len(reader.data):
        raise ProtocolError(
            f"trailing garbage in frame: {len(reader.data) - reader.pos} bytes "
            "after the payload value"
        )
    return value


# -- frames -----------------------------------------------------------------


def encode_frame(opcode: int, payload: Optional[Dict[str, Any]] = None) -> bytes:
    """One wire frame: length prefix, opcode, encoded payload."""
    body = bytearray(_U8.pack(opcode))
    if payload is not None:
        encode_value(body, payload)
    if len(body) > MAX_FRAME:
        raise ProtocolError(
            f"frame too large: {len(body)} bytes (max {MAX_FRAME}) for "
            f"{OP_NAMES.get(opcode, opcode)}"
        )
    return _U32.pack(len(body)) + bytes(body)


def decode_body(body: bytes) -> Tuple[int, Optional[Dict[str, Any]]]:
    """Split a frame body (opcode + payload) read off the wire."""
    if not body:
        raise ProtocolError("empty frame body")
    opcode = body[0]
    if len(body) == 1:
        return opcode, None
    return opcode, decode_value(body[1:])


def check_frame_length(length: int) -> int:
    """Validate a just-read length prefix before allocating for it."""
    if length == 0 or length > MAX_FRAME:
        raise ProtocolError(f"invalid frame length {length} (max {MAX_FRAME})")
    return length


# -- results ----------------------------------------------------------------


def result_header(result: Result, in_transaction: bool) -> Dict[str, Any]:
    """The RESULT frame payload for an engine result (rows stream apart).

    Extra result sets (a procedure producing several) travel inline in
    the header; the *final* result set's rows follow as ROWS frames.
    Execution profiles are deliberately not serialized — they hold live
    operator references; wire clients profile server-side via metrics.
    """
    extra = [
        {"schema": schema, "rows": list(rows)}
        for schema, rows in result.resultsets[:-1]
    ]
    return {
        "schema": result.schema,
        "rowcount": result.rowcount,
        "row_total": len(result.rows),
        "messages": list(result.messages),
        "return_value": result.return_value,
        "resultsets_extra": extra,
        "in_transaction": in_transaction,
    }


def build_result(header: Dict[str, Any], rows: List[Tuple]) -> Result:
    """Reassemble a client-side :class:`Result` from header + rows."""
    result = Result(
        rows=rows,
        schema=header.get("schema"),
        rowcount=header.get("rowcount", 0),
        return_value=header.get("return_value"),
        messages=list(header.get("messages") or []),
    )
    for extra in header.get("resultsets_extra") or []:
        result.resultsets.append((extra["schema"], list(extra["rows"])))
    if result.schema is not None or rows:
        result.resultsets.append((result.schema, rows))
    return result


# -- error frames -----------------------------------------------------------


def error_payload(exc: BaseException) -> Dict[str, Any]:
    """Serialize an exception for an ERROR frame (taxonomy-preserving)."""
    return {
        "kind": type(exc).__name__,
        "message": str(exc),
        "transient": bool(getattr(exc, "transient", False)),
    }


def raise_error(payload: Dict[str, Any]) -> None:
    """Re-raise a server-side error from an ERROR frame payload.

    Errors whose class lives in :mod:`repro.errors` and accepts a single
    message argument are reconstructed as themselves (so ``except
    ConstraintError:`` works across the wire); everything else becomes a
    :class:`~repro.errors.RemoteError` carrying the original class name
    and ``transient`` bit — retry and failover semantics are preserved
    either way.
    """
    import repro.errors as errors_module

    kind = str(payload.get("kind", "ReproError"))
    message = str(payload.get("message", ""))
    transient = bool(payload.get("transient", False))
    cls = getattr(errors_module, kind, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        try:
            exc = cls(message)
        except TypeError:
            exc = RemoteError(kind, message, transient)
        else:
            if bool(getattr(exc, "transient", False)) != transient:
                exc.transient = transient  # type: ignore[attr-defined]
    else:
        exc = RemoteError(kind, message, transient)
    raise exc
