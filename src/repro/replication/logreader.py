"""The log reader: log sniffing on the publisher.

Scans the publisher database's WAL for *complete committed transactions*
past its watermark, filters each change through the publication's articles
(row restriction + column projection, including the insert/delete/update
reclassification when an update moves a row across an article's predicate
boundary), and stores the resulting commands in the distribution database.

The watermark advances only to the LSN of the last COMMIT processed, so
changes belonging to still-open transactions are re-scanned later — the
mechanism that guarantees subscribers only ever see committed state.
"""

from __future__ import annotations

from typing import List, Optional

from repro.replication.distributor import Distributor, ReplicationCommand
from repro.replication.publication import Publication
from repro.storage.wal import LogRecord, LogRecordType


class LogReader:
    """One log reader per published database."""

    def __init__(self, database, publication: Publication, distributor: Distributor):
        self.database = database
        self.publication = publication
        self.distributor = distributor
        self.watermark_lsn = database.wal.last_lsn
        self.enabled = True
        # Overhead accounting for Experiment 2.
        self.records_scanned = 0
        self.commands_produced = 0
        self.transactions_distributed = 0
        self.last_scan_time: float = 0.0

    def bind_articles(self) -> None:
        """Resolve every article against its source table's schema."""
        for article in self.publication.articles.values():
            schema = self.database.catalog.get_table(article.source_table).schema
            article.bind(schema)

    def poll(self) -> int:
        """One log-sniffing pass; returns transactions distributed."""
        if not self.enabled:
            return 0
        self.last_scan_time = self.database.clock.now()
        batches = self.database.wal.committed_transactions(self.watermark_lsn)
        distributed = 0
        for commit_record, changes in batches:
            self.records_scanned += len(changes) + 2  # BEGIN + COMMIT
            commands = self._commands_for(changes)
            if commands:
                self.distributor.distribution_db.append(
                    origin_transaction_id=commit_record.transaction_id,
                    commit_timestamp=commit_record.timestamp,
                    commands=commands,
                )
                self.commands_produced += len(commands)
                self.transactions_distributed += 1
                distributed += 1
            self.watermark_lsn = commit_record.lsn
        return distributed

    def _commands_for(self, changes: List[LogRecord]) -> List[ReplicationCommand]:
        commands: List[ReplicationCommand] = []
        for record in changes:
            if record.table is None:
                continue
            for article in self.publication.articles_for_table(record.table):
                command = self._classify(article, record)
                if command is not None:
                    commands.append(command)
        return commands

    def _classify(self, article, record: LogRecord) -> Optional[ReplicationCommand]:
        if record.record_type is LogRecordType.INSERT:
            if article.row_matches(record.new_row):
                return ReplicationCommand(
                    article.name, "insert", new_row=article.project(record.new_row)
                )
            return None
        if record.record_type is LogRecordType.DELETE:
            if article.row_matches(record.old_row):
                return ReplicationCommand(
                    article.name, "delete", old_row=article.project(record.old_row)
                )
            return None
        # UPDATE: the row may enter, leave, or move within the article.
        old_in = article.row_matches(record.old_row)
        new_in = article.row_matches(record.new_row)
        if old_in and new_in:
            return ReplicationCommand(
                article.name,
                "update",
                old_row=article.project(record.old_row),
                new_row=article.project(record.new_row),
            )
        if old_in:
            return ReplicationCommand(
                article.name, "delete", old_row=article.project(record.old_row)
            )
        if new_in:
            return ReplicationCommand(
                article.name, "insert", new_row=article.project(record.new_row)
            )
        return None
