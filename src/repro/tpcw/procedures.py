"""The TPC-W stored procedures.

All database requests in the paper's benchmark implementation are stored
procedures. The search/browse procedures (bestseller, title/author/subject
search, new products, book detail) are the ones the paper copied to the
cache servers — they account for the bulk of the Browse-class load — while
the five update-dominated procedures stayed backend-only.

Procedure bodies are parameterized by scale (the bestseller window is the
spec's "last 3333 orders", scaled).
"""

from __future__ import annotations

from typing import Dict, List

from repro.tpcw.config import TPCWConfig


def procedure_definitions(config: TPCWConfig) -> Dict[str, str]:
    """Return ``name -> CREATE PROCEDURE`` SQL for every procedure."""
    top = config.search_result_limit
    window = config.bestseller_window
    return {
        # ---- browse class ------------------------------------------------
        "getName": """
            CREATE PROCEDURE getName @c_id INT AS
            BEGIN
                SELECT c_fname, c_lname FROM customer WHERE c_id = @c_id
            END
        """,
        "getBook": """
            CREATE PROCEDURE getBook @i_id INT AS
            BEGIN
                SELECT i.i_id, i.i_title, i.i_pub_date, i.i_publisher, i.i_subject,
                       i.i_desc, i.i_srp, i.i_cost, i.i_avail, i.i_stock,
                       i.i_isbn, i.i_page, i.i_backing, i.i_dimensions,
                       a.a_fname, a.a_lname
                FROM item i JOIN author a ON i.i_a_id = a.a_id
                WHERE i.i_id = @i_id
            END
        """,
        "getCustomer": """
            CREATE PROCEDURE getCustomer @uname VARCHAR(20) AS
            BEGIN
                SELECT c.c_id, c.c_uname, c.c_passwd, c.c_fname, c.c_lname,
                       c.c_phone, c.c_email, c.c_discount, c.c_balance,
                       a.addr_street1, a.addr_city, a.addr_state, a.addr_zip,
                       co.co_name
                FROM customer c
                JOIN address a ON c.c_addr_id = a.addr_id
                JOIN country co ON a.addr_co_id = co.co_id
                WHERE c.c_uname = @uname
            END
        """,
        "doSubjectSearch": f"""
            CREATE PROCEDURE doSubjectSearch @subject VARCHAR(20) AS
            BEGIN
                SELECT TOP {top} i.i_id, i.i_title, a.a_fname, a.a_lname, i.i_srp
                FROM item i JOIN author a ON i.i_a_id = a.a_id
                WHERE i.i_subject = @subject
                ORDER BY i.i_title
            END
        """,
        "doTitleSearch": f"""
            CREATE PROCEDURE doTitleSearch @title VARCHAR(60) AS
            BEGIN
                SELECT TOP {top} i.i_id, i.i_title, a.a_fname, a.a_lname, i.i_srp
                FROM item i JOIN author a ON i.i_a_id = a.a_id
                WHERE i.i_title LIKE @title
                ORDER BY i.i_title
            END
        """,
        "doAuthorSearch": f"""
            CREATE PROCEDURE doAuthorSearch @lname VARCHAR(20) AS
            BEGIN
                SELECT TOP {top} i.i_id, i.i_title, a.a_fname, a.a_lname, i.i_srp
                FROM item i JOIN author a ON i.i_a_id = a.a_id
                WHERE a.a_lname LIKE @lname
                ORDER BY i.i_title
            END
        """,
        "getNewProducts": f"""
            CREATE PROCEDURE getNewProducts @subject VARCHAR(20) AS
            BEGIN
                SELECT TOP {top} i.i_id, i.i_title, a.a_fname, a.a_lname
                FROM item i JOIN author a ON i.i_a_id = a.a_id
                WHERE i.i_subject = @subject
                ORDER BY i.i_pub_date DESC, i.i_title
            END
        """,
        "getBestSellers": f"""
            CREATE PROCEDURE getBestSellers @subject VARCHAR(20) AS
            BEGIN
                SELECT TOP {top} i.i_id, i.i_title, a.a_fname, a.a_lname,
                       SUM(ol.ol_qty) AS orders_sum
                FROM item i, author a, order_line ol
                WHERE i.i_id = ol.ol_i_id AND i.i_a_id = a.a_id
                  AND i.i_subject = @subject
                  AND ol.ol_o_id IN (SELECT TOP {window} o_id FROM orders
                                     ORDER BY o_date DESC)
                GROUP BY i.i_id, i.i_title, a.a_fname, a.a_lname
                ORDER BY orders_sum DESC
            END
        """,
        "getRelated": """
            CREATE PROCEDURE getRelated @i_id INT AS
            BEGIN
                SELECT j.i_id, j.i_thumbnail
                FROM item i JOIN item j ON j.i_id = i.i_related1
                WHERE i.i_id = @i_id
            END
        """,
        "getUserName": """
            CREATE PROCEDURE getUserName @c_id INT AS
            BEGIN
                SELECT c_uname FROM customer WHERE c_id = @c_id
            END
        """,
        "getPassword": """
            CREATE PROCEDURE getPassword @uname VARCHAR(20) AS
            BEGIN
                SELECT c_passwd FROM customer WHERE c_uname = @uname
            END
        """,
        # ---- order class ----------------------------------------------------
        "getMostRecentOrderId": """
            CREATE PROCEDURE getMostRecentOrderId @uname VARCHAR(20) AS
            BEGIN
                SELECT TOP 1 o.o_id
                FROM customer c JOIN orders o ON o.o_c_id = c.c_id
                WHERE c.c_uname = @uname
                ORDER BY o.o_date DESC, o.o_id DESC
            END
        """,
        "getMostRecentOrderInfo": """
            CREATE PROCEDURE getMostRecentOrderInfo @o_id INT AS
            BEGIN
                SELECT o.o_id, o.o_c_id, o.o_date, o.o_sub_total, o.o_tax,
                       o.o_total, o.o_ship_type, o.o_ship_date, o.o_status,
                       c.c_fname, c.c_lname, c.c_phone, c.c_email,
                       cx.cx_type,
                       a.addr_street1, a.addr_city, a.addr_state, a.addr_zip,
                       co.co_name
                FROM orders o
                JOIN customer c ON o.o_c_id = c.c_id
                JOIN cc_xacts cx ON cx.cx_o_id = o.o_id
                JOIN address a ON o.o_bill_addr_id = a.addr_id
                JOIN country co ON a.addr_co_id = co.co_id
                WHERE o.o_id = @o_id
            END
        """,
        "getMostRecentOrderLines": """
            CREATE PROCEDURE getMostRecentOrderLines @o_id INT AS
            BEGIN
                SELECT ol.ol_i_id, i.i_title, i.i_publisher, i.i_cost,
                       ol.ol_qty, ol.ol_discount, ol.ol_comments
                FROM order_line ol JOIN item i ON ol.ol_i_id = i.i_id
                WHERE ol.ol_o_id = @o_id
            END
        """,
        "createEmptyCart": """
            CREATE PROCEDURE createEmptyCart @now DATETIME AS
            BEGIN
                DECLARE @next INT
                SELECT @next = MAX(sc_id) FROM shopping_cart
                IF @next IS NULL
                    SET @next = 0
                SET @next = @next + 1
                INSERT INTO shopping_cart (sc_id, sc_time, sc_total)
                    VALUES (@next, @now, 0.0)
                SELECT @next AS sc_id
            END
        """,
        "addItem": """
            CREATE PROCEDURE addItem @sc_id INT, @i_id INT, @qty INT AS
            BEGIN
                DECLARE @current INT
                SELECT @current = scl_qty FROM shopping_cart_line
                    WHERE scl_sc_id = @sc_id AND scl_i_id = @i_id
                IF @current IS NULL
                    INSERT INTO shopping_cart_line (scl_sc_id, scl_i_id, scl_qty)
                        VALUES (@sc_id, @i_id, @qty)
                ELSE
                    UPDATE shopping_cart_line SET scl_qty = @current + @qty
                        WHERE scl_sc_id = @sc_id AND scl_i_id = @i_id
            END
        """,
        "refreshCartTime": """
            CREATE PROCEDURE refreshCartTime @sc_id INT, @now DATETIME AS
            BEGIN
                UPDATE shopping_cart SET sc_time = @now WHERE sc_id = @sc_id
            END
        """,
        "getCart": """
            CREATE PROCEDURE getCart @sc_id INT AS
            BEGIN
                SELECT scl.scl_i_id, i.i_title, i.i_cost, i.i_srp, i.i_backing,
                       scl.scl_qty
                FROM shopping_cart_line scl JOIN item i ON scl.scl_i_id = i.i_id
                WHERE scl.scl_sc_id = @sc_id
            END
        """,
        "getCDiscount": """
            CREATE PROCEDURE getCDiscount @c_id INT AS
            BEGIN
                SELECT c_discount FROM customer WHERE c_id = @c_id
            END
        """,
        "getCAddr": """
            CREATE PROCEDURE getCAddr @c_id INT AS
            BEGIN
                SELECT c_addr_id FROM customer WHERE c_id = @c_id
            END
        """,
        "enterAddress": """
            CREATE PROCEDURE enterAddress @street1 VARCHAR(40), @city VARCHAR(30),
                                          @state VARCHAR(20), @zip VARCHAR(10),
                                          @co_id INT AS
            BEGIN
                DECLARE @addr INT
                SELECT @addr = addr_id FROM address
                    WHERE addr_street1 = @street1 AND addr_city = @city
                      AND addr_state = @state AND addr_zip = @zip
                      AND addr_co_id = @co_id
                IF @addr IS NULL
                BEGIN
                    SELECT @addr = MAX(addr_id) FROM address
                    IF @addr IS NULL
                        SET @addr = 0
                    SET @addr = @addr + 1
                    INSERT INTO address (addr_id, addr_street1, addr_street2,
                                         addr_city, addr_state, addr_zip, addr_co_id)
                        VALUES (@addr, @street1, NULL, @city, @state, @zip, @co_id)
                END
                SELECT @addr AS addr_id
            END
        """,
        "enterOrder": """
            CREATE PROCEDURE enterOrder @c_id INT, @sc_id INT, @ship_type VARCHAR(10),
                                        @bill_addr INT, @ship_addr INT,
                                        @now DATETIME AS
            BEGIN
                DECLARE @o_id INT
                DECLARE @sub FLOAT
                DECLARE @discount FLOAT
                SELECT @o_id = MAX(o_id) FROM orders
                IF @o_id IS NULL
                    SET @o_id = 0
                SET @o_id = @o_id + 1
                SELECT @discount = c_discount FROM customer WHERE c_id = @c_id
                SELECT @sub = SUM(i.i_cost * scl.scl_qty)
                FROM shopping_cart_line scl JOIN item i ON scl.scl_i_id = i.i_id
                WHERE scl.scl_sc_id = @sc_id
                IF @sub IS NULL
                    SET @sub = 0.0
                SET @sub = @sub * (1.0 - @discount)
                INSERT INTO orders (o_id, o_c_id, o_date, o_sub_total, o_tax,
                                    o_total, o_ship_type, o_ship_date,
                                    o_bill_addr_id, o_ship_addr_id, o_status)
                    VALUES (@o_id, @c_id, @now, @sub, @sub * 0.0825,
                            @sub * 1.0825 + 3.0, @ship_type, @now,
                            @bill_addr, @ship_addr, 'PENDING')
                SELECT @o_id AS o_id
            END
        """,
        "addOrderLine": """
            CREATE PROCEDURE addOrderLine @ol_id INT, @o_id INT, @i_id INT,
                                          @qty INT, @discount FLOAT AS
            BEGIN
                INSERT INTO order_line (ol_id, ol_o_id, ol_i_id, ol_qty,
                                        ol_discount, ol_comments)
                    VALUES (@ol_id, @o_id, @i_id, @qty, @discount, NULL)
                UPDATE item SET i_stock = i_stock - @qty WHERE i_id = @i_id
            END
        """,
        "enterCCXact": """
            CREATE PROCEDURE enterCCXact @o_id INT, @cx_type VARCHAR(10),
                                         @cx_num VARCHAR(20), @cx_name VARCHAR(30),
                                         @amount FLOAT, @co_id INT,
                                         @now DATETIME AS
            BEGIN
                INSERT INTO cc_xacts (cx_o_id, cx_type, cx_num, cx_name,
                                      cx_expire, cx_auth_id, cx_xact_amt,
                                      cx_xact_date, cx_co_id)
                    VALUES (@o_id, @cx_type, @cx_num, @cx_name, @now,
                            'AUTHOK', @amount, @now, @co_id)
            END
        """,
        "clearCart": """
            CREATE PROCEDURE clearCart @sc_id INT AS
            BEGIN
                DELETE FROM shopping_cart_line WHERE scl_sc_id = @sc_id
                UPDATE shopping_cart SET sc_total = 0.0 WHERE sc_id = @sc_id
            END
        """,
        "refreshSession": """
            CREATE PROCEDURE refreshSession @c_id INT, @now DATETIME AS
            BEGIN
                UPDATE customer SET c_login = @now, c_last_login = @now
                    WHERE c_id = @c_id
            END
        """,
        "createNewCustomer": """
            CREATE PROCEDURE createNewCustomer @uname VARCHAR(20), @passwd VARCHAR(20),
                                               @fname VARCHAR(17), @lname VARCHAR(17),
                                               @addr_id INT, @now DATETIME AS
            BEGIN
                DECLARE @c_id INT
                SELECT @c_id = MAX(c_id) FROM customer
                IF @c_id IS NULL
                    SET @c_id = 0
                SET @c_id = @c_id + 1
                INSERT INTO customer (c_id, c_uname, c_passwd, c_fname, c_lname,
                                      c_addr_id, c_phone, c_email, c_since,
                                      c_last_login, c_login, c_expiration,
                                      c_discount, c_balance, c_ytd_pmt)
                    VALUES (@c_id, @uname, @passwd, @fname, @lname, @addr_id,
                            '555-0000', 'new@example.com', @now, @now, @now,
                            @now, 0.1, 0.0, 0.0)
                SELECT @c_id AS c_id
            END
        """,
        # ---- admin class -----------------------------------------------------
        "adminUpdate": """
            CREATE PROCEDURE adminUpdate @i_id INT, @cost FLOAT,
                                         @image VARCHAR(40), @thumbnail VARCHAR(40),
                                         @now DATETIME AS
            BEGIN
                UPDATE item SET i_cost = @cost, i_image = @image,
                                i_thumbnail = @thumbnail, i_pub_date = @now
                    WHERE i_id = @i_id
            END
        """,
        "updateRelatedItems": """
            CREATE PROCEDURE updateRelatedItems @i_id INT AS
            BEGIN
                -- TPC-W's admin-confirm recomputation: the items most
                -- often co-purchased with @i_id become its related items.
                SELECT TOP 5 ol2.ol_i_id AS related, SUM(ol2.ol_qty) AS qty
                FROM order_line ol1 JOIN order_line ol2
                    ON ol1.ol_o_id = ol2.ol_o_id
                WHERE ol1.ol_i_id = @i_id AND ol2.ol_i_id <> @i_id
                GROUP BY ol2.ol_i_id
                ORDER BY qty DESC, ol2.ol_i_id
            END
        """,
        "getStock": """
            CREATE PROCEDURE getStock @i_id INT AS
            BEGIN
                SELECT i_stock FROM item WHERE i_id = @i_id
            END
        """,
        "verifyDBConsistency": """
            CREATE PROCEDURE verifyDBConsistency AS
            BEGIN
                SELECT COUNT(*) AS items FROM item
                SELECT COUNT(*) AS customers FROM customer
                SELECT COUNT(*) AS orders FROM orders
            END
        """,
    }


#: Procedures the paper copied to the cache servers (24 of 29; here the
#: read-dominated set). These can run entirely on cached views of item,
#: author, orders and order_line, plus backend fetches for the rest.
CACHE_PROCEDURES: List[str] = [
    "getName",
    "getBook",
    "getCustomer",
    "doSubjectSearch",
    "doTitleSearch",
    "doAuthorSearch",
    "getNewProducts",
    "getBestSellers",
    "getRelated",
    "getUserName",
    "getPassword",
    "getMostRecentOrderId",
    "getMostRecentOrderInfo",
    "getMostRecentOrderLines",
    "getCart",
    "getCDiscount",
    "getCAddr",
    "getStock",
    "verifyDBConsistency",
]

#: The update-dominated procedures the paper did NOT copy to the mid tier:
#: they "would not have benefited significantly from running on the middle
#: tier" (§6.1.2). Calls forward transparently to the backend.
UPDATE_DOMINATED_PROCEDURES: List[str] = [
    "createEmptyCart",
    "addItem",
    "refreshCartTime",
    "enterAddress",
    "enterOrder",
    "addOrderLine",
    "enterCCXact",
    "clearCart",
    "refreshSession",
    "createNewCustomer",
    "adminUpdate",
]


def install_procedures(server, database: str, config: TPCWConfig) -> None:
    """Create every procedure on a server (normally the backend)."""
    for sql in procedure_definitions(config).values():
        server.execute(sql, database=database)
