"""``python -m repro analyze`` — run the static-analysis passes.

Three passes (all by default, each opt-in via flag):

* ``--self``     — the repo-specific AST lint pack over ``repro``'s own
  source (:mod:`repro.analysis.selflint`);
* ``--workload`` — the workload SQL lint over the full TPC-W procedure
  set, the MTCache cached-view DDL, and the generated shadow/grant
  deployment scripts (:mod:`repro.analysis.sqllint`);
* ``--plans``    — the plan-invariant verifier over every SELECT the
  optimizer produces for the TPC-W procedures, on both the backend and
  a provisioned cache server (:mod:`repro.analysis.plancheck`).

Exit status is 1 when any error-severity diagnostic is reported.
"""

from __future__ import annotations

from typing import List

from repro.errors import AnalysisError


def _print(pass_name: str, diagnostics: List[AnalysisError]) -> int:
    errors = 0
    for diagnostic in diagnostics:
        print(f"{pass_name}: {diagnostic.severity}: {diagnostic}")
        if diagnostic.is_error:
            errors += 1
    return errors


def _build_corpus():
    from repro.tpcw import TPCWConfig, build_backend, enable_caching

    backend, config = build_backend(TPCWConfig(num_items=50, num_ebs=10))
    deployment, caches = enable_caching(backend, ["cache1"], config)
    deployment.sync()
    return backend, caches[0]


def _self_pass() -> int:
    from repro.analysis.selflint import lint_package

    diagnostics = lint_package()
    errors = _print("self", diagnostics)
    print(f"self: {len(diagnostics)} diagnostic(s)")
    return errors


def _workload_pass(backend, cache) -> int:
    from repro.analysis.sqllint import SqlLinter, lint_workload
    from repro.mtcache.scripts import generate_grant_script, generate_shadow_script
    from repro.tpcw.setup import CACHED_VIEW_DDL, DATABASE_NAME

    catalog = backend.databases[DATABASE_NAME].catalog
    diagnostics = lint_workload(
        backend.databases[DATABASE_NAME],
        scripts={"cached-view-ddl": ";".join(CACHED_VIEW_DDL)},
    )
    diagnostics += lint_workload(cache.database)
    # The generated deployment scripts run against an initially empty
    # shadow database, so they lint with no base catalog: the script's
    # own CREATE TABLEs must carry the later CREATE INDEX / GRANT lines.
    empty = SqlLinter(None)
    diagnostics += empty.lint_sql(generate_shadow_script(catalog), "shadow-script")
    diagnostics += empty.lint_sql(generate_grant_script(catalog), "grant-script")
    errors = _print("workload", diagnostics)
    print(f"workload: {len(diagnostics)} diagnostic(s)")
    return errors


def _plans_pass(backend, cache) -> int:
    from repro.analysis.plancheck import verify_plan
    from repro.sql import ast
    from repro.tpcw.setup import DATABASE_NAME

    errors = 0
    planned_count = 0
    for server in (backend, cache.server):
        database = server.databases[DATABASE_NAME]
        for procedure in database.catalog.procedures.values():
            pending = list(procedure.body)
            while pending:
                statement = pending.pop()
                if isinstance(statement, ast.Select):
                    planned = server.plan_select(statement, database)
                    diagnostics = verify_plan(planned, database=database)
                    planned_count += 1
                    errors += _print(
                        f"plans[{server.name}:{procedure.name}]", diagnostics
                    )
                elif isinstance(statement, ast.IfStatement):
                    pending.extend(statement.then_body)
                    pending.extend(statement.else_body)
                elif isinstance(statement, ast.WhileStatement):
                    pending.extend(statement.body)
    print(f"plans: {planned_count} plan(s) verified on backend and cache")
    return errors


def run_analyze(
    self_lint: bool = False, workload: bool = False, plans: bool = False
) -> int:
    """Run the selected passes (all three when none is selected)."""
    if not (self_lint or workload or plans):
        self_lint = workload = plans = True
    errors = 0
    if self_lint:
        errors += _self_pass()
    backend = cache = None
    if workload or plans:
        backend, cache = _build_corpus()
    if workload:
        errors += _workload_pass(backend, cache)
    if plans:
        errors += _plans_pass(backend, cache)
    if errors:
        print(f"analyze: {errors} error(s)")
        return 1
    print("analyze: clean")
    return 0
