"""Publications and articles.

An article is a select-project expression over a published table: a subset
of columns and a row-restriction predicate. Subscribers receive only the
projected images of rows satisfying the predicate — this is what lets
MTCache cache horizontal and vertical subsets of tables, not just complete
tables (the paper's contrast with DBCache).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.common.schema import Schema
from repro.errors import ReplicationError
from repro.exec.context import ExecutionContext
from repro.exec.expressions import ExpressionCompiler
from repro.sql import ast


@dataclass
class Article:
    """One published select-project expression over a source table."""

    name: str
    source_table: str
    columns: Tuple[str, ...]  # projected columns, in article order
    predicate: Optional[ast.Expression] = None

    # Compiled state (populated by bind()).
    _positions: Optional[List[int]] = field(default=None, repr=False)
    _predicate_fn: Any = field(default=None, repr=False)

    def bind(self, source_schema: Schema) -> None:
        """Resolve the article against the source table's schema."""
        self._positions = [source_schema.resolve(column) for column in self.columns]
        if self.predicate is not None:
            qualified_schema = source_schema.with_qualifier(self.source_table)
            self._predicate_fn = ExpressionCompiler(qualified_schema).compile(self.predicate)
        else:
            self._predicate_fn = None

    def row_matches(self, row: Tuple) -> bool:
        """Does a full source row fall inside the article's restriction?"""
        if self._predicate_fn is None:
            return True
        return self._predicate_fn(row, _BLANK_CONTEXT) is True

    def project(self, row: Tuple) -> Tuple:
        """Project a full source row to the article's column subset."""
        if self._positions is None:
            raise ReplicationError(f"article {self.name!r} is not bound")
        return tuple(row[position] for position in self._positions)


_BLANK_CONTEXT = ExecutionContext()


@dataclass
class Publication:
    """A named set of articles on one publisher database."""

    name: str
    database: str
    articles: Dict[str, Article] = field(default_factory=dict)

    def add_article(self, article: Article) -> None:
        if article.name.lower() in self.articles:
            raise ReplicationError(
                f"article {article.name!r} already exists in publication {self.name!r}"
            )
        self.articles[article.name.lower()] = article

    def article(self, name: str) -> Article:
        found = self.articles.get(name.lower())
        if found is None:
            raise ReplicationError(f"no article {name!r} in publication {self.name!r}")
        return found

    def articles_for_table(self, table_name: str) -> List[Article]:
        return [
            article
            for article in self.articles.values()
            if article.source_table.lower() == table_name.lower()
        ]
