"""Replication lag gauges, batch stats, last-applied tracking."""


from repro.obs import replication_metrics
from repro.obs.export import deployment_snapshot


def _agent(cache):
    return next(iter(cache.agents.values()))


class TestLagGauges:
    def test_lag_counts_pending_transactions(self, deployment, cache):
        backend = deployment.backend
        backend.execute("UPDATE customer SET cname = 'X1' WHERE cid = 1")
        backend.execute("UPDATE customer SET cname = 'X2' WHERE cid = 2")
        deployment.log_reader.poll()
        agent = _agent(cache)
        values = replication_metrics.update_lag_gauges(agent)
        assert values["lag_transactions"] == 2
        assert values["queue_depth"] == 2

        registry = cache.server.metrics
        labels = {"subscription": agent.subscription.name}
        assert (
            registry.gauge("replication.lag_transactions", labels=labels).value == 2
        )

        agent.poll(now=deployment.clock.now())
        values = replication_metrics.update_lag_gauges(agent)
        assert values["lag_transactions"] == 0

    def test_lag_seconds_ages_between_polls(self, deployment, cache):
        deployment.sync()
        agent = _agent(cache)
        before = replication_metrics.update_lag_gauges(agent)
        deployment.clock.advance(5.0)
        after = replication_metrics.update_lag_gauges(agent)
        assert after["lag_seconds"] >= before["lag_seconds"] + 5.0 - 1e-9


class TestBatchStats:
    def test_batch_size_histogram_and_counters(self, deployment, cache):
        backend = deployment.backend
        for cid in (1, 2, 3):
            backend.execute(f"UPDATE customer SET cname = 'B{cid}' WHERE cid = {cid}")
        deployment.log_reader.poll()
        agent = _agent(cache)
        applied = agent.poll(now=deployment.clock.now())
        assert applied == 3

        registry = cache.server.metrics
        labels = {"subscription": agent.subscription.name}
        histogram = registry.histogram(
            "replication.batch_size",
            buckets=replication_metrics.BATCH_SIZE_BUCKETS,
            labels=labels,
        )
        assert histogram.count == 1
        assert histogram.sum == 3
        assert (
            registry.counter("replication.transactions_applied", labels=labels).value
            == 3
        )
        assert registry.counter("replication.round_trips", labels=labels).value == 1


class TestLastApplied:
    """Satellite: the agent records the newest applied transaction."""

    def test_last_applied_updates_on_poll(self, deployment, cache):
        agent = _agent(cache)
        assert agent.last_applied_sequence == 0
        backend = deployment.backend
        backend.execute("UPDATE customer SET cname = 'Y' WHERE cid = 7")
        deployment.log_reader.poll()
        frontier = deployment.distributor.distribution_db.last_sequence
        agent.poll(now=deployment.clock.now())

        assert agent.last_applied_sequence == frontier
        assert agent.last_applied_commit_ts is not None
        assert agent.last_applied_origin_id is not None
        info = agent.last_applied()
        assert info["subscription"] == agent.subscription.name
        assert info["sequence"] == frontier
        assert info["applied_at"] == agent.subscription.last_apply_time

    def test_idle_poll_does_not_move_last_applied(self, deployment, cache):
        deployment.sync()
        agent = _agent(cache)
        sequence = agent.last_applied_sequence
        agent.poll(now=deployment.clock.now())
        assert agent.last_applied_sequence == sequence


class TestDeploymentSample:
    def test_sample_covers_every_subscription(self, deployment, cache):
        deployment.sync()
        samples = replication_metrics.sample(deployment)
        assert set(samples) == {
            agent.subscription.name for agent in deployment.distributor.agents
        }
        for values in samples.values():
            assert {"lag_transactions", "lag_seconds", "queue_depth"} <= set(values)

    def test_deployment_snapshot_includes_replication(self, deployment, cache):
        backend = deployment.backend
        backend.execute("UPDATE customer SET cname = 'Z' WHERE cid = 9")
        deployment.clock.advance(1.0)
        deployment.sync()
        snap = deployment_snapshot(deployment)
        assert snap["replication"]["subscriptions"]
        assert snap["replication"]["transactions_distributed"] >= 1
        assert snap["backend"]["metrics"]["counters"]
        assert snap["caches"][0]["server"] == "cache1"


class TestLagRollup:
    def test_rollup_groups_by_subscriber_server(self, deployment, cache):
        second = deployment.add_cache_server("cache2")
        second.create_cached_view(
            "CREATE CACHED VIEW Cust2 AS "
            "SELECT cid, cname, caddress FROM customer WHERE cid <= 50"
        )
        deployment.sync()
        rollup = replication_metrics.rollup(deployment)
        assert set(rollup["servers"]) == {"cache1", "cache2"}
        for bucket in rollup["servers"].values():
            assert bucket["subscriptions"] >= 1
        assert rollup["lag_seconds_max"] >= rollup["lag_seconds_mean"] >= 0.0
        assert rollup["lag_transactions_max"] >= rollup["lag_transactions_mean"]

    def test_rollup_publishes_tier_gauges_on_backend(self, deployment, cache):
        deployment.sync()
        backend = deployment.backend
        replication_metrics.rollup(deployment)
        snapshot = backend.metrics.snapshot()
        gauges = snapshot["gauges"]
        assert "replication.tier_lag_seconds_max" in gauges
        assert "replication.tier_lag_seconds_mean" in gauges
        assert "replication.tier_lag_transactions_max" in gauges
        assert "replication.server_lag_seconds_max{server=cache1}" in gauges

    def test_rollup_sees_backlogged_subscription(self, deployment, cache):
        backend = deployment.backend
        for cid in range(1, 6):
            backend.execute(
                f"UPDATE customer SET cname = 'lag{cid}' WHERE cid = {cid}"
            )
        # Committed but not yet distributed/applied: the rollup's max must
        # reflect the backlog once the log reader has shipped commands.
        deployment.log_reader.poll()
        rollup = replication_metrics.rollup(deployment)
        assert rollup["lag_transactions_max"] >= 1
        deployment.sync()
        drained = replication_metrics.rollup(deployment)
        assert drained["lag_transactions_max"] == 0

    def test_deployment_snapshot_includes_rollup(self, deployment, cache):
        deployment.sync()
        snap = deployment_snapshot(deployment)
        rollup = snap["replication"]["lag_rollup"]
        assert "cache1" in rollup["servers"]
        assert rollup["lag_seconds_mean"] >= 0.0
