"""Snapshot/export API: everything observable, as JSON-ready dicts.

``server_snapshot`` covers one server (metrics registry, statement-cache
counters, prepared-handle population); ``deployment_snapshot`` covers a
whole MTCache deployment (backend + every cache + replication lag per
subscription + distribution queue depth). ``to_json`` serializes either.

The ``python -m repro metrics`` CLI subcommand prints a deployment
snapshot after driving a short TPC-W workload; benchmarks embed snapshots
in their reports so a regression in, say, parse-cache hit rate is visible
next to the throughput number it explains.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.obs import replication_metrics


def server_snapshot(server) -> Dict[str, Any]:
    """One server's observable state."""
    return {
        "server": server.name,
        "statements_executed": server.statements_executed,
        "statement_cache": server.statement_cache_stats(),
        "metrics": server.metrics.snapshot(),
    }


def witness_snapshot() -> Optional[Dict[str, Any]]:
    """The lock witness's observed acquisition graph, or None when off.

    Process-wide rather than per-server: lock classes are keyed by
    creation site, so one graph covers every tier the process hosts
    (which is exactly what the cross-server edges need).
    """
    from repro.common.witness import active_witness

    witness = active_witness()
    if witness is None:
        return None
    return witness.snapshot()


def deployment_snapshot(deployment) -> Dict[str, Any]:
    """A whole deployment: backend, caches, and replication lag."""
    subscriptions = replication_metrics.sample(deployment)
    witness = witness_snapshot()
    if witness is not None:
        witness = {
            "acquisitions": witness["acquisitions"],
            "classes": len(witness["classes"]),
            "edges": len(witness["edges"]),
            "violations": witness["violations"],
        }
    return {
        "lock_witness": witness,
        "backend": server_snapshot(deployment.backend),
        "caches": [
            {
                "statements_forwarded": cache.statements_forwarded,
                "staleness_seconds": cache.staleness(),
                **server_snapshot(cache.server),
            }
            for cache in deployment.cache_servers
        ],
        "replication": {
            "distribution_queue_depth": len(deployment.distributor.distribution_db),
            "transactions_distributed": deployment.log_reader.transactions_distributed,
            "commands_produced": deployment.log_reader.commands_produced,
            "average_latency_seconds": deployment.average_replication_latency(),
            "subscriptions": subscriptions,
            "lag_rollup": replication_metrics.rollup(
                deployment, samples=subscriptions
            ),
        },
    }


def to_json(snapshot: Dict[str, Any], indent: int = 2) -> str:
    """Serialize a snapshot (tolerating stray non-JSON values)."""
    return json.dumps(snapshot, indent=indent, sort_keys=True, default=str)
