"""An in-memory B+-tree with range scans and duplicate-key support.

Keys are tuples of SQL values. Because Python cannot order ``None`` against
other values (and SQL gives NULL a defined sort position: first, ascending),
keys are passed through :func:`encode_key` which maps every part to a
``(tag, value)`` pair with NULL tagged lowest. Mixed int/float parts compare
fine natively; strings/dates only meet their own kind in a typed column.

Leaves are linked for ordered scans. Each key maps to a small list of
payloads so secondary indexes with duplicate keys need no special casing.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Sequence, Tuple

_NULL_TAG = 0
_BOOL_TAG = 1
_NUMBER_TAG = 2
_STRING_TAG = 3
_OTHER_TAG = 4  # dates, datetimes — ordered within their own kind

#: Sorts after every real key component; used to turn a key prefix into an
#: upper bound covering all keys that start with the prefix.
PREFIX_SENTINEL = (9,)


def _encode_part(part: Any) -> Tuple:
    """Encode one key component so heterogeneous parts never compare."""
    if part is None:
        return (_NULL_TAG,)
    if isinstance(part, bool):
        return (_BOOL_TAG, part)
    if isinstance(part, (int, float)):
        return (_NUMBER_TAG, part)
    if isinstance(part, str):
        return (_STRING_TAG, part)
    return (_OTHER_TAG, type(part).__name__, part)


def encode_key(parts: Sequence[Any]) -> Tuple:
    """Encode a composite key for storage in the tree."""
    return tuple(_encode_part(part) for part in parts)


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.keys: List[Tuple] = []
        self.children: List["_Node"] = []  # internal nodes only
        self.values: List[List[Any]] = []  # leaf nodes only
        self.next_leaf: Optional["_Node"] = None


class BPlusTree:
    """A B+-tree mapping encoded composite keys to lists of payloads."""

    def __init__(self, order: int = 64):
        if order < 4:
            raise ValueError("order must be at least 4")
        self.order = order
        self.root = _Node(is_leaf=True)
        self._size = 0  # number of (key, payload) pairs

    def __len__(self) -> int:
        return self._size

    # -- lookup ---------------------------------------------------------------

    def _find_leaf(self, key: Tuple) -> _Node:
        node = self.root
        while not node.is_leaf:
            index = bisect.bisect_right(node.keys, key)
            node = node.children[index]
        return node

    def get(self, key: Tuple) -> List[Any]:
        """Return the payload list for ``key`` (empty when absent)."""
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return list(leaf.values[index])
        return []

    def scan(
        self,
        low: Optional[Tuple] = None,
        high: Optional[Tuple] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[Tuple[Tuple, Any]]:
        """Yield ``(key, payload)`` pairs in key order within the bounds.

        A ``low``/``high`` of None means unbounded on that side. Prefix
        bounds work naturally because tuple comparison is lexicographic.
        """
        if low is None:
            node: Optional[_Node] = self.root
            while node and not node.is_leaf:
                node = node.children[0]
            index = 0
        else:
            node = self._find_leaf(low)
            if low_inclusive:
                index = bisect.bisect_left(node.keys, low)
            else:
                index = bisect.bisect_right(node.keys, low)
        while node is not None:
            while index < len(node.keys):
                key = node.keys[index]
                if high is not None:
                    if high_inclusive:
                        if key > high:
                            return
                    elif key >= high:
                        return
                for payload in node.values[index]:
                    yield key, payload
                index += 1
            node = node.next_leaf
            index = 0

    def scan_prefix(self, prefix: Tuple) -> Iterator[Tuple[Tuple, Any]]:
        """Yield all entries whose key starts with ``prefix`` (encoded)."""
        for key, payload in self.scan(low=prefix):
            if key[: len(prefix)] != prefix:
                return
            yield key, payload

    # -- mutation ---------------------------------------------------------------

    def insert(self, key: Tuple, payload: Any) -> None:
        """Insert a payload under ``key`` (duplicates allowed)."""
        root = self.root
        if len(root.keys) >= self.order:
            new_root = _Node(is_leaf=False)
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self.root = new_root
        self._insert_nonfull(self.root, key, payload)
        self._size += 1

    def _insert_nonfull(self, node: _Node, key: Tuple, payload: Any) -> None:
        while not node.is_leaf:
            index = bisect.bisect_right(node.keys, key)
            child = node.children[index]
            if len(child.keys) >= self.order:
                self._split_child(node, index)
                if key > node.keys[index]:
                    index += 1
                child = node.children[index]
            node = child
        index = bisect.bisect_left(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            node.values[index].append(payload)
        else:
            node.keys.insert(index, key)
            node.values.insert(index, [payload])

    def _split_child(self, parent: _Node, index: int) -> None:
        child = parent.children[index]
        middle = len(child.keys) // 2
        sibling = _Node(is_leaf=child.is_leaf)
        if child.is_leaf:
            sibling.keys = child.keys[middle:]
            sibling.values = child.values[middle:]
            child.keys = child.keys[:middle]
            child.values = child.values[:middle]
            sibling.next_leaf = child.next_leaf
            child.next_leaf = sibling
            separator = sibling.keys[0]
        else:
            separator = child.keys[middle]
            sibling.keys = child.keys[middle + 1 :]
            sibling.children = child.children[middle + 1 :]
            child.keys = child.keys[:middle]
            child.children = child.children[: middle + 1]
        parent.keys.insert(index, separator)
        parent.children.insert(index + 1, sibling)

    def delete(self, key: Tuple, payload: Any) -> bool:
        """Remove one matching ``payload`` stored under ``key``.

        Returns True when an entry was removed. Structural rebalancing is
        deliberately lazy (keys with empty payload lists are purged); for an
        in-memory index this preserves correctness and scan order without
        the complexity of full B-tree deletion.
        """
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index >= len(leaf.keys) or leaf.keys[index] != key:
            return False
        payloads = leaf.values[index]
        try:
            payloads.remove(payload)
        except ValueError:
            return False
        if not payloads:
            leaf.keys.pop(index)
            leaf.values.pop(index)
        self._size -= 1
        return True

    def clear(self) -> None:
        """Remove every entry."""
        self.root = _Node(is_leaf=True)
        self._size = 0

    def items(self) -> Iterator[Tuple[Tuple, Any]]:
        """Yield every (key, payload) pair in order."""
        return self.scan()

    def min_key(self) -> Optional[Tuple]:
        """Return the smallest key, or None when empty."""
        for key, _ in self.scan():
            return key
        return None

    def max_key(self) -> Optional[Tuple]:
        """Return the largest key, or None when empty."""
        node = self.root
        while not node.is_leaf:
            node = node.children[-1]
        # Rightmost leaf may be empty after lazy deletes; walk leaves if so.
        if node.keys:
            return node.keys[-1]
        result = None
        for key, _ in self.scan():
            result = key
        return result
