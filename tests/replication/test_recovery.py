"""Replication recovery: crash mid-batch, stalled/killed agents, watermarks.

The contract under test is exactly-once apply at transaction granularity:
a failure partway through a batch (or partway through one transaction)
leaves the subscription watermark at the last *fully applied*
transaction, the partial transaction undone — so the next poll
re-delivers precisely the unapplied suffix, never a duplicate.
"""

import pytest

from repro import MTCacheDeployment
from repro.errors import ReplicationError
from repro.faults import FaultInjector

from tests.conftest import make_shop_backend


@pytest.fixture
def env():
    backend = make_shop_backend(customers=50, orders=100)
    deployment = MTCacheDeployment(backend, "shop")
    cache = deployment.add_cache_server("cache1")
    cache.create_cached_view(
        "CREATE CACHED VIEW vcust AS "
        "SELECT cid, cname, segment FROM customer WHERE cid <= 30"
    )
    injector = FaultInjector(deployment.clock, seed=11)
    deployment.attach_fault_injector(injector)
    return backend, deployment, cache, injector


def rename(backend, cid, name):
    backend.execute(
        f"UPDATE customer SET cname = '{name}' WHERE cid = {cid}", database="shop"
    )


def cache_name(cache, cid):
    return cache.execute(f"SELECT cname FROM vcust WHERE cid = {cid}").scalar


class TestCrashMidBatch:
    def test_failed_batch_redelivers_exactly_the_unapplied_suffix(self, env):
        backend, deployment, cache, injector = env
        sub = cache.subscriptions["vcust"]
        agent = cache.agents["vcust"]

        # Three single-command transactions...
        for cid, name in ((1, "a1"), (2, "a2"), (3, "a3")):
            rename(backend, cid, name)
        deployment.log_reader.poll()

        # ...and a fault on the second command of the batch.
        injector.wound_subscription(sub, skip=1, count=1)
        watermark_before = sub.last_sequence
        with pytest.raises(ReplicationError):
            agent.poll(deployment.clock.now())
        assert agent.apply_failures == 1
        assert sub.apply_failures == 1

        # Transaction 1 applied; the watermark sits right after it.
        assert cache_name(cache, 1) == "a1"
        assert cache_name(cache, 2) == "cust2"
        assert sub.last_sequence == watermark_before + 1
        pending = deployment.distributor.distribution_db.read_after(sub.last_sequence)
        assert len(pending) == 2  # exactly the unapplied suffix

        # The next poll applies just those two — no duplicates, no gaps.
        applied = agent.poll(deployment.clock.now())
        assert applied == 2
        assert cache_name(cache, 2) == "a2"
        assert cache_name(cache, 3) == "a3"
        assert not deployment.distributor.distribution_db.read_after(sub.last_sequence)

    def test_failure_inside_a_transaction_undoes_its_partial_commands(self, env):
        backend, deployment, cache, injector = env
        sub = cache.subscriptions["vcust"]
        agent = cache.agents["vcust"]

        # One transaction with two commands.
        backend.execute(
            "BEGIN TRANSACTION; "
            "UPDATE customer SET cname = 'b1' WHERE cid = 1; "
            "UPDATE customer SET cname = 'b2' WHERE cid = 2; "
            "COMMIT",
            database="shop",
        )
        deployment.log_reader.poll()

        # Fault lands on the second command: mid-transaction.
        injector.wound_subscription(sub, skip=1, count=1)
        watermark_before = sub.last_sequence
        with pytest.raises(ReplicationError):
            agent.poll(deployment.clock.now())

        # The first command's effect was rolled back: the subscriber
        # never exposes half a transaction.
        assert cache_name(cache, 1) == "cust1"
        assert cache_name(cache, 2) == "cust2"
        assert sub.last_sequence == watermark_before

        # Redelivery applies the whole transaction exactly once.
        agent.poll(deployment.clock.now())
        assert cache_name(cache, 1) == "b1"
        assert cache_name(cache, 2) == "b2"

    def test_deployment_tick_contains_apply_failures(self, env):
        backend, deployment, cache, injector = env
        sub = cache.subscriptions["vcust"]
        rename(backend, 5, "c5")
        injector.wound_subscription(sub, count=1)
        # tick() must not explode the simulation loop; it counts and
        # moves on, and the following tick catches the cache up.
        deployment.tick(advance=1.0)
        assert deployment.apply_failures_contained == 1
        deployment.tick(advance=1.0)
        assert cache_name(cache, 5) == "c5"


class TestAgentOutages:
    def test_stalled_agent_freezes_watermark_then_catches_up(self, env):
        backend, deployment, cache, injector = env
        agent = cache.agents["vcust"]
        sub = cache.subscriptions["vcust"]

        injector.stall_agent(agent)
        rename(backend, 7, "d7")
        rename(backend, 8, "d8")
        watermark = sub.last_sequence
        deployment.tick(advance=1.0)
        assert sub.last_sequence == watermark  # frozen during the stall
        assert cache_name(cache, 7) == "cust7"

        injector.resume_agent(agent)
        deployment.tick(advance=1.0)
        assert cache_name(cache, 7) == "d7"
        assert cache_name(cache, 8) == "d8"
        assert sub.last_sequence > watermark

    def test_killed_agent_restarts_from_the_watermark(self, env):
        backend, deployment, cache, injector = env
        agent = cache.agents["vcust"]
        sub = cache.subscriptions["vcust"]

        rename(backend, 9, "e9")
        deployment.sync()
        assert cache_name(cache, 9) == "e9"

        injector.kill_agent(agent)
        assert agent not in deployment.distributor.agents
        rename(backend, 9, "e9b")
        rename(backend, 10, "e10")
        deployment.tick(advance=1.0)
        assert cache_name(cache, 9) == "e9"  # nobody is applying

        replacement = injector.restart_agent(agent)
        assert replacement.subscription is sub
        deployment.tick(advance=1.0)
        # The replacement resumed from the shared watermark: both changes
        # arrive, each exactly once.
        assert cache_name(cache, 9) == "e9b"
        assert cache_name(cache, 10) == "e10"

    def test_crashed_cache_stops_apply_and_lag_climbs(self, env):
        backend, deployment, cache, injector = env
        from repro.obs import replication_metrics

        injector.crash_cache(cache)
        rename(backend, 11, "f11")
        deployment.tick(advance=2.0)
        assert cache.agents["vcust"].stalled
        lag = replication_metrics.sample(deployment)
        (values,) = lag.values()
        assert values["lag_transactions"] >= 1

        injector.restart_cache(cache)
        deployment.tick(advance=1.0)
        assert cache_name(cache, 11) == "f11"
        lag = replication_metrics.sample(deployment)
        (values,) = lag.values()
        assert values["lag_transactions"] == 0
