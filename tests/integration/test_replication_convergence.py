"""Property-based replication convergence.

The core replication invariant: after draining the pipeline, every cached
view equals the select-project of its base table — no matter what sequence
of inserts, updates and deletes (including article-boundary crossings and
multi-statement transactions) the backend committed in between.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import MTCacheDeployment, Server
from repro.engine import Session


def build_env():
    backend = Server("backend")
    backend.create_database("shop")
    backend.execute(
        "CREATE TABLE items (k INT PRIMARY KEY, grp INT NOT NULL, v VARCHAR(20))"
    )
    database = backend.database("shop")
    database.bulk_load("items", [(i, i % 5, f"v{i}") for i in range(1, 41)])
    database.analyze_all()
    deployment = MTCacheDeployment(backend, "shop")
    cache = deployment.add_cache_server("conv")
    cache.create_cached_view(
        "CREATE CACHED VIEW part AS SELECT k, grp, v FROM items WHERE k <= 60"
    )
    return backend, deployment, cache


operations = st.lists(
    st.tuples(
        st.sampled_from(["insert", "update_v", "update_k", "delete", "txn"]),
        st.integers(1, 120),
        st.integers(1, 120),
    ),
    min_size=1,
    max_size=25,
)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture, HealthCheck.too_slow],
)
@given(ops=operations)
def test_property_view_converges_to_base_projection(ops):
    backend, deployment, cache = build_env()
    next_key = [1000]

    for kind, a, b in ops:
        if kind == "insert":
            key = next_key[0]
            next_key[0] += 1
            backend.execute(
                f"INSERT INTO items VALUES ({key}, {a % 5}, 'n{key}')",
                database="shop",
            )
        elif kind == "update_v":
            backend.execute(
                f"UPDATE items SET v = 'u{a}' WHERE k = {a}", database="shop"
            )
        elif kind == "update_k":
            # Key moves can cross the article boundary (k <= 60) in either
            # direction; skip when the destination is occupied.
            exists = backend.execute(
                f"SELECT COUNT(*) FROM items WHERE k = {b}", database="shop"
            ).scalar
            source = backend.execute(
                f"SELECT COUNT(*) FROM items WHERE k = {a}", database="shop"
            ).scalar
            if exists == 0 and source == 1 and a != b:
                backend.execute(
                    f"UPDATE items SET k = {b} WHERE k = {a}", database="shop"
                )
        elif kind == "delete":
            backend.execute(f"DELETE FROM items WHERE k = {a}", database="shop")
        else:  # a multi-statement transaction
            session = Session()
            backend.execute("BEGIN TRANSACTION", session=session, database="shop")
            backend.execute(
                f"UPDATE items SET grp = {a % 5} WHERE k = {a}",
                session=session,
                database="shop",
            )
            backend.execute(
                f"UPDATE items SET grp = {b % 5} WHERE k = {b}",
                session=session,
                database="shop",
            )
            backend.execute("COMMIT", session=session, database="shop")
        deployment.clock.advance(0.1)
        deployment.tick()

    deployment.clock.advance(1.0)
    deployment.sync()

    expected = backend.execute(
        "SELECT k, grp, v FROM items WHERE k <= 60 ORDER BY k", database="shop"
    ).rows
    actual = cache.execute("SELECT k, grp, v FROM part ORDER BY k").rows
    assert actual == expected
