"""The optimizer's cost model.

Costs are abstract work units (roughly "row touches"). Two knobs implement
the paper's location-aware costing:

* ``remote_penalty`` — every cost estimated for execution on the backend
  server is multiplied by this factor (> 1.0). The paper's motivation: the
  backend may be powerful but it is shared and likely loaded, so the cache
  server only gets a fraction of its capacity.
* DataTransfer cost — ``transfer_startup + bytes * transfer_per_byte``,
  proportional to the estimated volume shipped plus a constant startup
  cost, exactly as described in section 5.

All constants are dataclass fields so ablation benchmarks can sweep them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass
class CostModel:
    """Tunable cost constants (abstract units)."""

    # Per-row operator work
    scan_row: float = 1.0
    filter_row: float = 0.2
    project_row: float = 0.1
    hash_join_row: float = 1.5
    nl_join_row: float = 0.3
    sort_row_log: float = 0.5
    aggregate_row: float = 1.2
    distinct_row: float = 0.8

    # Index access
    index_seek_startup: float = 8.0
    index_row: float = 1.2
    index_lookup_probe: float = 2.0  # per-probe cost of an index NL join

    # Location-aware knobs (the paper's extensions)
    remote_penalty: float = 1.3
    transfer_startup: float = 50.0
    transfer_per_byte: float = 0.01

    def seq_scan(self, rows: float) -> float:
        """Full table scan cost."""
        return max(1.0, rows) * self.scan_row

    def index_seek(self, matching_rows: float) -> float:
        """Index seek plus fetch of matching rows."""
        return self.index_seek_startup + max(0.0, matching_rows) * self.index_row

    def filter(self, input_rows: float) -> float:
        return max(0.0, input_rows) * self.filter_row

    def project(self, input_rows: float) -> float:
        return max(0.0, input_rows) * self.project_row

    def hash_join(self, left_rows: float, right_rows: float) -> float:
        return (max(0.0, left_rows) + max(0.0, right_rows)) * self.hash_join_row

    def nested_loop_join(self, left_rows: float, right_rows: float) -> float:
        return max(1.0, left_rows) * max(1.0, right_rows) * self.nl_join_row

    def index_lookup_join(self, left_rows: float, matches_per_probe: float) -> float:
        """Index nested-loop join: one probe per outer row."""
        per_probe = self.index_lookup_probe + max(0.0, matches_per_probe) * self.index_row
        return max(1.0, left_rows) * per_probe

    def merge_join(self, left_rows: float, right_rows: float) -> float:
        """Sort-merge join: sort both inputs, then a linear merge."""
        return (
            self.sort(left_rows)
            + self.sort(right_rows)
            + (max(0.0, left_rows) + max(0.0, right_rows)) * self.scan_row
        )

    def sort(self, rows: float) -> float:
        rows = max(2.0, rows)
        return rows * math.log2(rows) * self.sort_row_log

    def aggregate(self, rows: float) -> float:
        return max(1.0, rows) * self.aggregate_row

    def distinct(self, rows: float) -> float:
        return max(1.0, rows) * self.distinct_row

    def data_transfer(self, rows: float, row_width: int) -> float:
        """Cost of shipping a result across servers (the enforcer's cost)."""
        return self.transfer_startup + max(0.0, rows) * row_width * self.transfer_per_byte

    def remote(self, cost: float) -> float:
        """Inflate a cost for execution on the (loaded) backend server."""
        return cost * self.remote_penalty
