"""DSN parsing and the in-process target registry.

The client API's one URL-shaped entrypoint (``repro.client.connect``)
accepts *DSN strings* naming either transport:

* ``tcp://host:port/database`` — dial a :class:`~repro.net.wire.WireConnection`
  to a :class:`~repro.net.server.ReproServer` speaking the wire protocol;
* ``inproc://name[/subname]`` — look the target up in the process-local
  registry populated by :func:`register_inproc` and call it directly
  (zero-copy, no sockets — the pre-PR-10 mode, now addressable).

Grammar (both schemes)::

    dsn       := scheme "://" authority [ "/" database ] [ "?" params ]
    scheme    := "tcp" | "inproc"
    authority := host [ ":" port ]          (tcp: port defaults to 7432)
    params    := key "=" value ( "&" key "=" value )*

Recognized query parameters: ``timeout`` (dial + per-operation socket
timeout, seconds), ``principal`` (session principal), ``fetch_rows``
(row-batch size for streamed results). Anything else is a
:class:`~repro.errors.DsnError` — typos in connection strings must fail
loudly at connect time, not act as silent defaults.

For ``inproc`` the authority *and* path segments form the registry key
(``inproc://deployment/cache0`` resolves key ``deployment/cache0``), so
deployments can register a namespace of targets. A registration may carry
its own default database; an explicit ``?database=`` is not needed —
the registered target already knows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.common.locks import mutex
from repro.errors import DsnError

#: The default wire port (a nod to 5432; "74" for the paper's year 2003
#: backwards, if you squint). Only applied when a tcp DSN omits the port.
DEFAULT_PORT = 7432

_SCHEMES = ("tcp", "inproc")
_PARAM_KEYS = ("timeout", "principal", "fetch_rows")


@dataclass(frozen=True)
class DSN:
    """A parsed connection string."""

    scheme: str
    host: str
    port: Optional[int]
    database: Optional[str]
    params: Dict[str, str] = field(default_factory=dict)
    raw: str = ""

    @property
    def inproc_key(self) -> str:
        """The registry key an ``inproc`` DSN names (host + path)."""
        if self.database:
            return f"{self.host}/{self.database}"
        return self.host

    @property
    def timeout(self) -> Optional[float]:
        value = self.params.get("timeout")
        return float(value) if value is not None else None

    @property
    def principal(self) -> Optional[str]:
        return self.params.get("principal")

    @property
    def fetch_rows(self) -> Optional[int]:
        value = self.params.get("fetch_rows")
        return int(value) if value is not None else None

    def __str__(self) -> str:
        return self.raw or f"{self.scheme}://{self.host}"


def parse_dsn(dsn: str) -> DSN:
    """Parse a connection string, raising :class:`DsnError` with the
    precise offending component on any malformation."""
    if not isinstance(dsn, str) or "://" not in dsn:
        raise DsnError(
            f"not a DSN: {dsn!r} (expected scheme://host[:port][/database], "
            f"schemes: {', '.join(_SCHEMES)})"
        )
    parts = urlsplit(dsn)
    scheme = parts.scheme.lower()
    if scheme not in _SCHEMES:
        raise DsnError(
            f"unknown DSN scheme {parts.scheme!r} in {dsn!r} "
            f"(expected one of: {', '.join(_SCHEMES)})"
        )
    if not parts.hostname:
        what = "registry name" if scheme == "inproc" else "host"
        raise DsnError(f"DSN {dsn!r} is missing a {what} after {scheme}://")
    try:
        port = parts.port  # urlsplit raises ValueError on non-numeric ports
    except ValueError as exc:
        raise DsnError(f"invalid port in DSN {dsn!r}: {exc}") from None
    if scheme == "inproc" and port is not None:
        raise DsnError(f"inproc DSN {dsn!r} cannot carry a port")
    if scheme == "tcp" and port is None:
        port = DEFAULT_PORT
    database = parts.path.lstrip("/") or None
    if parts.path.count("/") > 1 and scheme == "tcp":
        raise DsnError(
            f"tcp DSN {dsn!r} has a multi-segment path; expected a single "
            f"/database segment"
        )
    params: Dict[str, str] = {}
    if parts.query:
        for key, value in parse_qsl(parts.query, keep_blank_values=True):
            if key not in _PARAM_KEYS:
                raise DsnError(
                    f"unknown DSN parameter {key!r} in {dsn!r} "
                    f"(recognized: {', '.join(_PARAM_KEYS)})"
                )
            if not value:
                raise DsnError(f"DSN parameter {key!r} in {dsn!r} has no value")
            params[key] = value
    for numeric, cast in (("timeout", float), ("fetch_rows", int)):
        if numeric in params:
            try:
                cast(params[numeric])
            except ValueError:
                raise DsnError(
                    f"DSN parameter {numeric}={params[numeric]!r} in {dsn!r} "
                    f"is not a number"
                ) from None
    return DSN(
        scheme=scheme, host=parts.hostname, port=port, database=database,
        params=params, raw=dsn,
    )


# -- the inproc registry ----------------------------------------------------

#: name -> (target object, default database). Guarded by a leaf mutex:
#: registration happens at setup time but lookups may race with it when
#: pools dial lazily from worker threads.
_REGISTRY: Dict[str, Tuple[Any, Optional[str]]] = {}
_REGISTRY_MUTEX = mutex()


def register_inproc(name: str, target: Any, database: Optional[str] = None) -> Any:
    """Register an execution target under an ``inproc://`` name.

    ``name`` is the full registry key (``"deployment/cache0"``); the DSN
    that reaches it is ``inproc://deployment/cache0``. Re-registering a
    name replaces the previous target (deployments are rebuilt freely in
    tests). Returns ``target`` so registration can be inlined.
    """
    key = name.strip("/")
    if not key:
        raise DsnError("cannot register an inproc target under an empty name")
    with _REGISTRY_MUTEX:
        _REGISTRY[key] = (target, database)
    return target


def unregister_inproc(name: str) -> None:
    """Drop a registration (no-op when absent)."""
    with _REGISTRY_MUTEX:
        _REGISTRY.pop(name.strip("/"), None)


def resolve_inproc(key: str) -> Tuple[Any, Optional[str]]:
    """Resolve a registry key to ``(target, default_database)``.

    Raises :class:`DsnError` listing the registered names when the key
    is unknown — a typo in an inproc DSN should read like a typo.
    """
    with _REGISTRY_MUTEX:
        entry = _REGISTRY.get(key.strip("/"))
        known = sorted(_REGISTRY)
    if entry is None:
        listing = ", ".join(known) if known else "(none registered)"
        raise DsnError(
            f"no inproc target registered as {key!r}; known targets: {listing}"
        )
    return entry
