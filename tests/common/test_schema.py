"""Unit tests for Schema name resolution."""

import pytest

from repro.common.schema import Column, Schema
from repro.common.types import FLOAT, INT, VARCHAR
from repro.errors import BindError


def make_schema():
    return Schema(
        [
            Column("id", INT, qualifier="c"),
            Column("name", VARCHAR(20), qualifier="c"),
            Column("id", INT, qualifier="o"),
            Column("total", FLOAT, qualifier="o"),
        ]
    )


class TestResolution:
    def test_qualified_lookup(self):
        schema = make_schema()
        assert schema.resolve("id", "c") == 0
        assert schema.resolve("id", "o") == 2

    def test_unqualified_unique(self):
        schema = make_schema()
        assert schema.resolve("total") == 3

    def test_unqualified_ambiguous_raises(self):
        with pytest.raises(BindError, match="ambiguous"):
            make_schema().resolve("id")

    def test_unknown_raises(self):
        with pytest.raises(BindError, match="unknown"):
            make_schema().resolve("nope")

    def test_case_insensitive(self):
        schema = make_schema()
        assert schema.resolve("NAME", "C") == 1

    def test_maybe_resolve_returns_none_for_unknown(self):
        assert make_schema().maybe_resolve("nope") is None

    def test_maybe_resolve_still_raises_on_ambiguity(self):
        with pytest.raises(BindError):
            make_schema().maybe_resolve("id")


class TestComposition:
    def test_concat(self):
        left = Schema([Column("a", INT)])
        right = Schema([Column("b", INT)])
        merged = left.concat(right)
        assert merged.names == ["a", "b"]

    def test_with_qualifier(self):
        schema = Schema([Column("a", INT)]).with_qualifier("t")
        assert schema.resolve("a", "t") == 0

    def test_project(self):
        schema = make_schema().project([3, 0])
        assert schema.names == ["total", "id"]

    def test_row_width_positive(self):
        assert make_schema().row_width > 0

    def test_equality(self):
        assert make_schema() == make_schema()

    def test_len_and_iter(self):
        schema = make_schema()
        assert len(schema) == 4
        assert [column.name for column in schema] == ["id", "name", "id", "total"]
