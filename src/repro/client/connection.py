"""Connection and Cursor: the DBAPI-2.0-flavoured facade.

A :class:`Connection` wraps any execution target — an engine
:class:`~repro.engine.server.Server`, a
:class:`~repro.mtcache.cache_server.CacheServer` facade, or a
:class:`~repro.resilience.failover.FailoverRouter` — and owns the
:class:`~repro.engine.session.Session` that carries principal, variables
and transaction state across statements. Targets differ in which keyword
arguments their ``execute`` accepts (a cache supplies its own shadow
database; a router manages its own per-target sessions), so the
connection sniffs the signature once at construction and adapts.
"""

from __future__ import annotations

import inspect
import warnings
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.engine.results import Result
from repro.engine.session import Session
from repro.errors import ClientError


def connect(
    target: Any,
    database: Optional[str] = None,
    principal: str = "dbo",
    timeout: Optional[float] = None,
) -> "Connection":
    """Open a connection (DBAPI ``connect``), by DSN or by object.

    The one URL-shaped entrypoint of the client API. ``target`` is either:

    * a **DSN string** — ``tcp://host:port/database`` dials a
      :class:`~repro.net.wire.WireConnection` to a running
      :class:`~repro.net.server.ReproServer`;
      ``inproc://name[/subname]`` resolves a target registered with
      :func:`repro.net.register_inproc` and calls it in-process. Either
      way the same :class:`Connection`/:class:`Cursor` facade comes back,
      so pools, failover routers and load drivers cannot tell the
      transports apart.
    * a **plain execution target object** (Server, CacheServer,
      FailoverRouter, ...) — the pre-DSN calling convention, kept for
      back-compat and for composing targets that have no name.

    ``timeout`` (seconds) applies to tcp DSNs: the dial timeout and the
    per-operation socket timeout (a DSN ``?timeout=`` takes precedence).
    Passing ``database=`` alongside a DSN that already carries a
    ``/database`` path is deprecated — the DSN wins.
    """
    if isinstance(target, str):
        return _connect_dsn(target, database=database, principal=principal, timeout=timeout)
    return Connection(target, database=database, principal=principal)


def _connect_dsn(
    dsn_text: str,
    database: Optional[str],
    principal: str,
    timeout: Optional[float],
) -> "Connection":
    from repro.net import WireConnection, parse_dsn, resolve_inproc

    dsn = parse_dsn(dsn_text)
    if dsn.database is not None and database is not None:
        warnings.warn(
            f"database={database!r} is ignored: the DSN {dsn_text!r} already "
            f"carries /{dsn.database}; drop the argument",
            DeprecationWarning,
            stacklevel=3,
        )
        database = None
    principal = dsn.principal or principal
    if dsn.scheme == "inproc":
        target, default_database = resolve_inproc(dsn.inproc_key)
        return Connection(target, database=database or default_database, principal=principal)
    wire = WireConnection(
        dsn.host,
        dsn.port,
        database=dsn.database or database,
        principal=principal,
        timeout=dsn.timeout if dsn.timeout is not None else timeout,
        fetch_rows=dsn.fetch_rows,
    )
    return Connection(wire, principal=principal, owns_target=True)


class Connection:
    """One client connection: a session plus an execution target."""

    def __init__(
        self,
        target: Any,
        database: Optional[str] = None,
        principal: str = "dbo",
        owns_target: bool = False,
    ):
        self.target = target
        self.database = database
        self.session = Session(principal=principal, database=database)
        self.closed = False
        #: True only for targets this connection created itself (a DSN
        #: dial): close() tears those down. Shared targets — a Server
        #: object, an inproc registration, a WireConnection handed in
        #: directly — are never closed from here, so one checkout's
        #: ``close()`` can never kill a sibling's live socket.
        self._owns_target = owns_target
        self._bind_target(target)

    def _bind_target(self, target: Any) -> None:
        """Sniff which keywords the target's ``execute`` accepts."""
        execute_params = inspect.signature(target.execute).parameters
        self._accepts_session = "session" in execute_params
        self._accepts_database = "database" in execute_params
        #: Wire targets keep the real session server-side; transaction
        #: state must be read from the target's mirrored flag, not from
        #: the local (never-transacting) session.
        self._remote_session = bool(getattr(target, "remote_session", False))

    def _reset_session(self, database: Optional[str] = None) -> None:
        """Replace the session (same principal) after a target rebind.

        Subclasses that re-point a live connection (ODBC redirection) go
        through this instead of constructing a raw Session — connections
        own their sessions (the ``session-construction`` lint rule).
        """
        self.session = Session(principal=self.session.principal, database=database)

    # -- target plumbing ---------------------------------------------------

    @property
    def server(self) -> Any:
        """The engine server behind the target (metrics, clock, tracer).

        Unwraps facades: a CacheServer's ``.server`` is the engine server;
        a FailoverRouter's ``.server`` unwraps its primary the same way.
        """
        inner = getattr(self.target, "server", None)
        return inner if inner is not None else self.target

    def _raw_execute(self, sql: str, params: Optional[Dict[str, Any]]) -> Result:
        if self.closed:
            raise ClientError("connection is closed")
        kwargs: Dict[str, Any] = {"params": params}
        if self._accepts_session:
            kwargs["session"] = self.session
        if self._accepts_database and self.database is not None:
            kwargs["database"] = self.database
        return self.target.execute(sql, **kwargs)

    def _deadline_for(self, timeout: Optional[float]):
        """An end-to-end :class:`~repro.resilience.deadline.Deadline` of
        ``timeout`` virtual seconds on the target server's clock, or
        None when no timeout was requested (or the target has no clock
        to measure one against)."""
        if timeout is None:
            return None
        clock = getattr(self.server, "clock", None)
        if clock is None:
            return None
        from repro.resilience.deadline import Deadline

        return Deadline.after(clock, timeout)

    def _timed_execute(
        self, sql: str, params: Optional[Dict[str, Any]], timeout: Optional[float]
    ) -> Result:
        """``_raw_execute`` under a deadline scope when ``timeout`` is set.

        The deadline rides a context variable down every tier below this
        call — shard routers, failover routers, cache servers, linked
        servers — each of which checks the remaining budget before
        spending a hop and raises
        :class:`~repro.errors.DeadlineExceededError` once it is gone.
        """
        if timeout is None:
            return self._raw_execute(sql, params)
        from repro.resilience.deadline import deadline_scope

        with deadline_scope(self._deadline_for(timeout)):
            return self._raw_execute(sql, params)

    # -- DBAPI surface -----------------------------------------------------

    def cursor(self) -> "Cursor":
        if self.closed:
            raise ClientError("connection is closed")
        return Cursor(self)

    def begin(self) -> None:
        """Start an explicit transaction (``BEGIN TRANSACTION``)."""
        self._raw_execute("BEGIN TRANSACTION", None)

    def in_transaction(self) -> bool:
        """Is this connection inside an explicit transaction?

        For in-process targets the local session knows; for wire targets
        the session lives server-side and the answer is mirrored from the
        last RESULT frame's ``in_transaction`` bit.
        """
        if self._remote_session:
            return bool(getattr(self.target, "in_transaction", False))
        return self.session.in_transaction

    def commit(self) -> None:
        """Commit the session's transaction; no-op outside one (DBAPI
        autocommit-compatible behavior for this engine)."""
        if self.in_transaction():
            self._raw_execute("COMMIT", None)

    def rollback(self) -> None:
        """Roll back the session's transaction; no-op outside one."""
        if self.in_transaction():
            self._raw_execute("ROLLBACK", None)

    def close(self) -> None:
        """Close the connection, rolling back any open transaction.

        Rolling back matters beyond tidiness: an explicit transaction
        holds the database latch exclusively, so an abandoned connection
        must release it or every other session blocks forever. A target
        this connection dialed itself (a ``tcp://`` DSN) is torn down
        too; shared targets are left alone (see ``_owns_target``).
        """
        if self.closed:
            return
        try:
            try:
                self.rollback()
            finally:
                if self._owns_target:
                    target_close = getattr(self.target, "close", None)
                    if target_close is not None:
                        target_close()
        finally:
            self.closed = True

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- health ------------------------------------------------------------

    def healthy(self) -> bool:
        """Probe the target (pool checkout health check).

        Uses the target's own ``healthy()`` when it has one (Server,
        CacheServer); otherwise falls back to the unwrapped server's
        ``available`` flag; a router with neither is assumed healthy —
        it reroutes internally.
        """
        probe = getattr(self.target, "healthy", None)
        if probe is not None:
            return bool(probe())
        return bool(getattr(self.server, "available", True))

    # -- deprecated shim ---------------------------------------------------

    def execute(
        self,
        sql: str,
        params: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> Result:
        """Execute a batch and return the raw :class:`Result`.

        ``timeout`` (virtual seconds) sets an end-to-end deadline for the
        statement — see :meth:`Cursor.execute`.

        .. deprecated:: use :meth:`cursor` and the fetch protocol; this
           shim exists so pre-cursor call sites keep working unchanged.
        """
        return self._timed_execute(sql, params, timeout)

    def __repr__(self) -> str:
        target = getattr(self.target, "name", None) or type(self.target).__name__
        state = "closed" if self.closed else "open"
        return f"<Connection {target} db={self.database} {state}>"


class Cursor:
    """A DBAPI-style cursor over one connection.

    ``description`` follows the DBAPI 7-tuple shape
    ``(name, type_code, display_size, internal_size, precision, scale,
    null_ok)`` with the engine's SQL type as the type code. ``rowcount``
    is the affected-row count for DML and the fetched-row count for
    queries, -1 before any execute.
    """

    arraysize = 1

    def __init__(self, connection: Connection):
        self.connection = connection
        self.closed = False
        self._result: Optional[Result] = None
        self._position = 0

    # -- execute -----------------------------------------------------------

    def execute(
        self,
        sql: str,
        params: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> "Cursor":
        """Execute a statement batch.

        ``timeout`` (virtual seconds) installs an end-to-end
        :class:`~repro.resilience.deadline.Deadline` for the statement:
        every tier below — routers, caches, linked servers — checks the
        remaining budget before each hop and fails fast with
        :class:`~repro.errors.DeadlineExceededError` once it is spent,
        and retry backoff never sleeps past it.
        """
        if self.closed:
            raise ClientError("cursor is closed")
        self._result = self.connection._timed_execute(sql, params, timeout)
        self._position = 0
        return self

    def executemany(self, sql: str, param_seq) -> "Cursor":
        for params in param_seq:
            self.execute(sql, params)
        return self

    # -- results -----------------------------------------------------------

    @property
    def result(self) -> Result:
        """The last statement's raw :class:`Result` (engine extension)."""
        if self._result is None:
            raise ClientError("no statement has been executed on this cursor")
        return self._result

    @property
    def rowcount(self) -> int:
        if self._result is None:
            return -1
        return self._result.rowcount

    @property
    def description(self) -> Optional[List[Tuple]]:
        if self._result is None or self._result.schema is None:
            return None
        return [
            (column.name, column.sql_type, None, None, None, None, None)
            for column in self._result.schema
        ]

    def fetchone(self) -> Optional[Tuple]:
        rows = self.result.rows
        if self._position >= len(rows):
            return None
        row = rows[self._position]
        self._position += 1
        return row

    def fetchmany(self, size: Optional[int] = None) -> List[Tuple]:
        count = size if size is not None else self.arraysize
        rows = self.result.rows[self._position : self._position + count]
        self._position += len(rows)
        return rows

    def fetchall(self) -> List[Tuple]:
        rows = self.result.rows[self._position :]
        self._position = len(self.result.rows)
        return rows

    def mappings(self) -> List[Dict[str, Any]]:
        """Remaining rows as dicts keyed by column name."""
        names = [entry[0] for entry in (self.description or [])]
        return [dict(zip(names, row)) for row in self.fetchall()]

    def __iter__(self) -> Iterator[Tuple]:
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self.closed = True
        self._result = None

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"<Cursor {state} rowcount={self.rowcount}>"
