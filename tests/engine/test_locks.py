"""The locking hierarchy: RWLock semantics, lock plans, latch lifecycle."""

from __future__ import annotations

import threading
import time

import pytest

from repro.common.locks import RWLock
from repro.engine.locks import (
    LockMode,
    LockPlan,
    TableLockManager,
    referenced_tables,
    statement_lock_plan,
)
from repro.engine.server import Server
from repro.sql import parse


# -- RWLock -------------------------------------------------------------------


def test_readers_share():
    lock = RWLock()
    lock.acquire_shared()
    lock.acquire_shared()
    assert lock.readers == 2
    lock.release_shared()
    lock.release_shared()
    assert lock.readers == 0


def test_exclusive_blocks_reader():
    lock = RWLock()
    lock.acquire_exclusive()
    entered = threading.Event()

    def reader():
        lock.acquire_shared()
        entered.set()
        lock.release_shared()

    thread = threading.Thread(target=reader, daemon=True)
    thread.start()
    time.sleep(0.05)
    assert not entered.is_set()
    lock.release_exclusive()
    thread.join(timeout=5.0)
    assert entered.is_set()


def test_reader_blocks_writer_until_release():
    lock = RWLock()
    lock.acquire_shared()
    entered = threading.Event()

    def writer():
        lock.acquire_exclusive()
        entered.set()
        lock.release_exclusive()

    thread = threading.Thread(target=writer, daemon=True)
    thread.start()
    time.sleep(0.05)
    assert not entered.is_set()
    lock.release_shared()
    thread.join(timeout=5.0)
    assert entered.is_set()


def test_exclusive_is_reentrant_for_owner():
    lock = RWLock()
    lock.acquire_exclusive()
    lock.acquire_exclusive()  # same thread: no self-deadlock
    assert lock.owns_exclusive()
    lock.release_exclusive()
    assert lock.owns_exclusive()  # still held at depth 1
    lock.release_exclusive()
    assert not lock.owns_exclusive()


def test_exclusive_owner_passes_through_shared():
    lock = RWLock()
    lock.acquire_exclusive()
    with lock.shared():  # must not deadlock against itself
        pass
    lock.release_exclusive()


def test_release_exclusive_without_ownership_raises():
    lock = RWLock()
    with pytest.raises(RuntimeError):
        lock.release_exclusive()


# -- TableLockManager ---------------------------------------------------------


def test_table_locks_deduplicate_exclusive_wins():
    manager = TableLockManager()
    with manager.locking(
        [("orders", LockMode.SHARED), ("Orders", LockMode.EXCLUSIVE)]
    ):
        assert manager.lock_for("orders").owns_exclusive()
    assert not manager.lock_for("orders").owns_exclusive()


def test_table_locks_released_on_error():
    manager = TableLockManager()
    with pytest.raises(RuntimeError):
        with manager.locking([("a", LockMode.EXCLUSIVE)]):
            raise RuntimeError("statement failed")
    assert not manager.lock_for("a").owns_exclusive()


# -- statement_lock_plan ------------------------------------------------------


def plan_for(sql: str, catalog=None) -> LockPlan:
    return statement_lock_plan(parse(sql), catalog)


def test_select_takes_shared_latch_and_shared_tables():
    plan = plan_for("SELECT cid FROM customer WHERE cid = 1")
    assert plan.latch is LockMode.SHARED
    assert plan.tables == (("customer", LockMode.SHARED),)


def test_dml_takes_exclusive_table_lock():
    plan = plan_for("UPDATE orders SET total = 0 WHERE oid = 1")
    assert plan.latch is LockMode.SHARED
    assert plan.tables == (("orders", LockMode.EXCLUSIVE),)


def test_insert_select_locks_source_and_target():
    plan = plan_for("INSERT INTO archive (oid) SELECT oid FROM orders")
    assert dict(plan.tables) == {
        "archive": LockMode.EXCLUSIVE,
        "orders": LockMode.SHARED,
    }


def test_subquery_tables_are_locked():
    plan = plan_for(
        "SELECT cid FROM customer "
        "WHERE cid IN (SELECT o_cid FROM orders WHERE total > 10)"
    )
    assert dict(plan.tables) == {
        "customer": LockMode.SHARED,
        "orders": LockMode.SHARED,
    }


def test_table_locks_are_sorted_for_deadlock_avoidance():
    plan = plan_for("SELECT * FROM zebra z JOIN apple a ON z.id = a.id")
    assert [name for name, _ in plan.tables] == ["apple", "zebra"]


def test_ddl_takes_exclusive_latch():
    plan = plan_for("CREATE TABLE t (a INT PRIMARY KEY)")
    assert plan.latch is LockMode.EXCLUSIVE
    assert plan.tables == ()


def test_linked_server_tables_not_locked_locally():
    plan = plan_for("SELECT a FROM backend.shop.dbo.customer")
    assert plan.tables == ()


def test_transaction_control_has_no_plan():
    assert statement_lock_plan(parse("BEGIN TRANSACTION")) is None
    assert statement_lock_plan(parse("COMMIT")) is None


def test_pure_variable_statements_have_no_plan():
    assert statement_lock_plan(parse("DECLARE @x INT = 1")) is None


def test_variable_statement_with_subquery_locks_reads():
    plan = plan_for("DECLARE @n INT = (SELECT cid FROM customer WHERE cid = 1)")
    assert plan.latch is LockMode.SHARED
    assert plan.tables == (("customer", LockMode.SHARED),)


# -- procedure lock plans -----------------------------------------------------


@pytest.fixture
def proc_server():
    server = Server("procs")
    server.create_database("db")
    server.execute(
        """
        CREATE TABLE seq (n INT PRIMARY KEY);
        CREATE PROCEDURE nextId AS BEGIN
            DECLARE @n INT = (SELECT MAX(n) FROM seq);
            INSERT INTO seq (n) VALUES (@n + 1);
        END;
        CREATE PROCEDURE readOnly AS BEGIN
            SELECT n FROM seq;
        END;
        CREATE PROCEDURE callsWriter AS BEGIN
            EXEC nextId;
        END;
        """,
        database="db",
    )
    server.execute("INSERT INTO seq (n) VALUES (1)", database="db")
    return server


def test_writing_procedure_takes_exclusive_latch(proc_server):
    catalog = proc_server.database("db").catalog
    plan = statement_lock_plan(parse("EXEC nextId"), catalog)
    assert plan is not None
    assert plan.latch is LockMode.EXCLUSIVE


def test_read_only_procedure_has_no_plan(proc_server):
    catalog = proc_server.database("db").catalog
    assert statement_lock_plan(parse("EXEC readOnly"), catalog) is None


def test_nested_writer_classifies_caller_exclusive(proc_server):
    catalog = proc_server.database("db").catalog
    plan = statement_lock_plan(parse("EXEC callsWriter"), catalog)
    assert plan is not None
    assert plan.latch is LockMode.EXCLUSIVE


def test_unknown_procedure_has_no_local_plan(proc_server):
    # Forwarded to the backend, which takes its own locks.
    catalog = proc_server.database("db").catalog
    assert statement_lock_plan(parse("EXEC somewhereElse"), catalog) is None


def test_concurrent_writing_procedures_do_not_collide(proc_server):
    """Two threads calling SELECT-MAX-then-INSERT never pick the same id."""
    failures = []

    def caller():
        try:
            for _ in range(10):
                proc_server.execute("EXEC nextId", database="db")
        except Exception as exc:  # pragma: no cover - only on regression
            failures.append(exc)

    threads = [threading.Thread(target=caller, daemon=True) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)
    assert failures == []
    count = proc_server.execute("SELECT MAX(n) FROM seq", database="db").scalar
    assert count == 1 + 4 * 10


# -- referenced_tables --------------------------------------------------------


def test_view_reads_lock_base_tables(backend):
    backend.execute(
        "CREATE VIEW gold_customers AS "
        "SELECT cid, cname FROM customer WHERE segment = 'gold'",
        database="shop",
    )
    catalog = backend.database("shop").catalog
    reads, writes = referenced_tables(
        parse("SELECT cname FROM gold_customers"), catalog
    )
    assert reads == {"customer"}
    assert writes == set()


# -- latch lifecycle through the server ---------------------------------------


def test_explicit_transaction_holds_latch_exclusively(backend):
    from repro.engine.session import Session

    database = backend.database("shop")
    session = Session(principal="dbo", database="shop")
    backend.execute("BEGIN TRANSACTION", session=session, database="shop")
    assert database.latch.owns_exclusive()
    backend.execute("COMMIT", session=session, database="shop")
    assert not database.latch.owns_exclusive()


def test_rollback_releases_latch(backend):
    from repro.engine.session import Session

    database = backend.database("shop")
    session = Session(principal="dbo", database="shop")
    backend.execute("BEGIN TRANSACTION", session=session, database="shop")
    backend.execute(
        "UPDATE customer SET cname = 'x' WHERE cid = 1",
        session=session,
        database="shop",
    )
    backend.execute("ROLLBACK", session=session, database="shop")
    assert not database.latch.owns_exclusive()
    assert database.latch.readers == 0


def test_crash_releases_latch(backend):
    from repro.engine.session import Session

    database = backend.database("shop")
    session = Session(principal="dbo", database="shop")
    backend.execute("BEGIN TRANSACTION", session=session, database="shop")
    assert database.latch.owns_exclusive()
    backend.crash()
    assert not database.latch.owns_exclusive()
    backend.restart()
