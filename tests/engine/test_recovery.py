"""WAL redo recovery tests."""


from repro import Server, Session
from repro.engine.recovery import replay_wal

DDL = "CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(20), score FLOAT)"


def make_server():
    server = Server("origin")
    server.create_database("db")
    server.execute(DDL)
    return server


def recover_into_fresh(server):
    """Simulate a crash: new instance, re-run DDL, redo the old WAL."""
    fresh = Server("recovered")
    fresh.create_database("db")
    fresh.execute(DDL)
    replay_wal(fresh.database("db"), server.database("db").wal)
    return fresh


def state(server):
    return server.execute("SELECT id, name, score FROM t ORDER BY id").rows


def test_committed_inserts_survive():
    server = make_server()
    server.execute("INSERT INTO t VALUES (1, 'a', 1.0), (2, 'b', 2.0)")
    recovered = recover_into_fresh(server)
    assert state(recovered) == state(server)


def test_updates_and_deletes_replay_in_order():
    server = make_server()
    server.execute("INSERT INTO t VALUES (1, 'a', 1.0), (2, 'b', 2.0), (3, 'c', 3.0)")
    server.execute("UPDATE t SET score = score * 10 WHERE id <= 2")
    server.execute("DELETE FROM t WHERE id = 3")
    server.execute("UPDATE t SET name = 'final' WHERE id = 1")
    recovered = recover_into_fresh(server)
    assert state(recovered) == [(1, "final", 10.0), (2, "b", 20.0)]
    assert state(recovered) == state(server)


def test_uncommitted_transaction_excluded():
    server = make_server()
    server.execute("INSERT INTO t VALUES (1, 'a', 1.0)")
    session = Session()
    server.execute("BEGIN TRANSACTION", session=session)
    server.execute("INSERT INTO t VALUES (2, 'pending', 2.0)", session=session)
    # Crash before COMMIT. The open transaction holds the origin's latch
    # for its whole span, and the recovered instance is a separate server
    # (a new process in reality) — recover on a separate thread so this
    # thread doesn't nest the fresh server's latch under the held one
    # (the lock witness flags such nesting).
    import threading

    recovered_box: list = []
    worker = threading.Thread(
        target=lambda: recovered_box.append(recover_into_fresh(server))
    )
    worker.start()
    worker.join()
    # The origin's abandoned transaction still holds its latch — release
    # it before querying the recovered server from this thread.
    server.execute("ROLLBACK", session=session)
    assert state(recovered_box[0]) == [(1, "a", 1.0)]


def test_aborted_transaction_excluded():
    server = make_server()
    session = Session()
    server.execute("BEGIN TRANSACTION", session=session)
    server.execute("INSERT INTO t VALUES (9, 'ghost', 0.0)", session=session)
    server.execute("ROLLBACK", session=session)
    server.execute("INSERT INTO t VALUES (1, 'real', 1.0)")
    recovered = recover_into_fresh(server)
    assert state(recovered) == [(1, "real", 1.0)]


def test_key_reuse_across_transactions():
    server = make_server()
    server.execute("INSERT INTO t VALUES (1, 'first', 1.0)")
    server.execute("DELETE FROM t WHERE id = 1")
    server.execute("INSERT INTO t VALUES (1, 'second', 2.0)")
    recovered = recover_into_fresh(server)
    assert state(recovered) == [(1, "second", 2.0)]


def test_replay_returns_change_count():
    server = make_server()
    server.execute("INSERT INTO t VALUES (1, 'a', 1.0), (2, 'b', 2.0)")
    server.execute("DELETE FROM t WHERE id = 2")
    fresh = Server("r2")
    fresh.create_database("db")
    fresh.execute(DDL)
    assert replay_wal(fresh.database("db"), server.database("db").wal) == 3
