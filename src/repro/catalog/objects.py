"""Catalog object descriptors.

These are pure metadata: the storage objects (heaps, B-trees) live in the
engine's :class:`~repro.engine.database.Database`. Keeping metadata separate
is what lets MTCache *shadow* a backend catalog onto a cache server without
copying any data.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from repro.common.schema import Schema
from repro.sql import ast


@dataclass(frozen=True)
class IndexDef:
    """Metadata for an index."""

    name: str
    table: str
    columns: Tuple[str, ...]
    unique: bool = False
    clustered: bool = False


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key constraint (checked on insert/update when enabled)."""

    columns: Tuple[str, ...]
    ref_table: str
    ref_columns: Tuple[str, ...]


@dataclass(frozen=True)
class TableDef:
    """Metadata for a base table."""

    name: str
    schema: Schema
    primary_key: Tuple[str, ...] = ()
    foreign_keys: Tuple[ForeignKey, ...] = ()

    def rename(self, name: str) -> "TableDef":
        return replace(self, name=name)


@dataclass(frozen=True)
class ViewDef:
    """Metadata for a view.

    ``materialized`` views have a backing table named after the view.
    ``cached`` marks an MTCache cached view: a materialized select-project
    view whose contents are maintained by replication from the backend.
    ``source_text`` preserves the original SELECT for publication matching.
    """

    name: str
    select: ast.Select
    schema: Schema
    materialized: bool = False
    cached: bool = False
    source_text: str = ""


@dataclass(frozen=True)
class ProcedureDef:
    """Metadata for a stored procedure: parameters and body AST."""

    name: str
    params: Tuple[ast.ProcedureParam, ...]
    body: Tuple[ast.Statement, ...]
    source_text: str = ""
