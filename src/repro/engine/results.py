"""Statement results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.common.schema import Schema


@dataclass
class Result:
    """The outcome of executing one statement (or procedure).

    ``rows``/``schema`` describe the (last) result set; ``rowcount`` is the
    number of rows a DML statement affected; ``return_value`` carries a
    stored procedure's RETURN code; ``messages`` collects PRINT output.
    ``resultsets`` holds every result set a procedure produced, in order.
    ``profile`` carries the per-operator execution profile when statistics
    profiling was on for the statement (``SET STATISTICS PROFILE ON``
    style; see :mod:`repro.obs.profile`).
    """

    rows: List[Tuple] = field(default_factory=list)
    schema: Optional[Schema] = None
    rowcount: int = 0
    return_value: Optional[Any] = None
    messages: List[str] = field(default_factory=list)
    resultsets: List[Tuple[Schema, List[Tuple]]] = field(default_factory=list)
    profile: Optional[Any] = None

    @property
    def scalar(self) -> Any:
        """First column of the first row (None when empty)."""
        if self.rows:
            return self.rows[0][0]
        return None

    def column(self, name: str) -> List[Any]:
        """Extract one output column by name across all rows."""
        if self.schema is None:
            raise ValueError("result has no schema")
        position = self.schema.resolve(name)
        return [row[position] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Tuple]:
        """Iterate the result rows directly (``for row in result``)."""
        return iter(self.rows)

    def mappings(self) -> List[Dict[str, Any]]:
        """Rows as dicts keyed by output column name."""
        if self.schema is None:
            if self.rows:
                raise ValueError("result has rows but no schema")
            return []
        names = list(self.schema.names)
        return [dict(zip(names, row)) for row in self.rows]
