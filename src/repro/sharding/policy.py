"""Sharding policy: which tables partition, and how statements route.

A :class:`ShardingPolicy` is the declarative half of the sharded tier:

* ``partitions`` — tables split across shards. Each shard's cached view
  of a partitioned table carries the shard's slice as its WHERE clause,
  so the replication article (and therefore the shard's storage and
  apply work) covers only the slice.
* ``broadcasts`` — cached views every shard carries in full (small or
  join-critical tables; the classic broadcast/dimension-table choice).
* ``routes`` — per-procedure routing: single-key procedures go to the
  owning shard, decomposable scans scatter-gather, everything else goes
  to the backend.

:func:`tpcw_sharding_policy` instantiates the policy for the TPC-W
deployment: **item** and **order_line** partition on the item id (they
co-partition — order lines live with the item they reference, which is
what the bestseller-style joins want), while **author** and **orders**
broadcast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.tpcw.config import TPCWConfig

#: Routing kinds.
ROUTE_KEY = "key"
ROUTE_SCATTER = "scatter"
ROUTE_BACKEND = "backend"


@dataclass(frozen=True)
class TablePartition:
    """One horizontally partitioned table."""

    table: str  # base table on the backend
    view: str  # the cached view name each shard materializes
    key_column: str  # the partition key (a column of ``table``)
    select: str  # the view's select-project body, without WHERE
    # column name of the key *in the view's output* (usually the same).
    view_key_column: Optional[str] = None

    def view_key(self) -> str:
        return self.view_key_column or self.key_column

    def ddl(self, low: int, high: int) -> str:
        """The shard-local CREATE CACHED VIEW statement for one slice."""
        return (
            f"CREATE CACHED VIEW {self.view} AS {self.select} "
            f"WHERE {self.key_column} BETWEEN {low} AND {high}"
        )


@dataclass(frozen=True)
class BroadcastView:
    """A cached view every shard carries in full."""

    view: str
    ddl: str


@dataclass(frozen=True)
class ProcedureRoute:
    """How one stored procedure routes through the shard tier."""

    kind: str  # ROUTE_KEY / ROUTE_SCATTER / ROUTE_BACKEND
    table: Optional[str] = None  # the partitioned table the route keys on
    key_param: Optional[str] = None  # procedure parameter carrying the key


@dataclass
class ShardingPolicy:
    """The full declarative description of a sharded cache tier."""

    key_domain: Tuple[int, int]  # shared key domain of the partitioned tables
    partitions: Dict[str, TablePartition] = field(default_factory=dict)
    broadcasts: List[BroadcastView] = field(default_factory=list)
    routes: Dict[str, ProcedureRoute] = field(default_factory=dict)
    shadow_tables: List[str] = field(default_factory=list)
    procedures: List[str] = field(default_factory=list)  # copied to shards

    def partition_for(self, table: str) -> Optional[TablePartition]:
        return self.partitions.get(table.lower())

    def route_for(self, procedure: str) -> ProcedureRoute:
        return self.routes.get(procedure.lower(), _BACKEND_ROUTE)


_BACKEND_ROUTE = ProcedureRoute(kind=ROUTE_BACKEND)


def tpcw_sharding_policy(config: TPCWConfig) -> ShardingPolicy:
    """The TPC-W policy: item/order_line partition by item id.

    Routing choices, procedure by procedure:

    * ``getBook``/``getStock`` — single-key item lookups: route to the
      owning shard (``ROUTE_KEY``).
    * the search procedures (``doSubjectSearch``, ``doTitleSearch``,
      ``doAuthorSearch``, ``getNewProducts``) — TOP-n ORDER BY scans of
      item x author: scatter across shards and re-merge. Their sort
      columns include the unique item title, so the merged order is
      total and deterministic.
    * ``getBestSellers`` (global TOP-window subquery + GROUP BY),
      ``getRelated`` (an item self-join whose related id may live on
      another shard), the order/customer procedures, and every write —
      backend (``ROUTE_BACKEND``). Unlisted procedures default there.
    """
    partitions = {
        "item": TablePartition(
            table="item",
            view="cv_item",
            key_column="i_id",
            select="SELECT * FROM item",
        ),
        "order_line": TablePartition(
            table="order_line",
            view="cv_order_line",
            key_column="ol_i_id",
            select=(
                "SELECT ol_id, ol_o_id, ol_i_id, ol_qty, ol_discount "
                "FROM order_line"
            ),
        ),
    }
    broadcasts = [
        BroadcastView(
            view="cv_author",
            ddl="CREATE CACHED VIEW cv_author AS SELECT * FROM author",
        ),
        BroadcastView(
            view="cv_orders",
            ddl="CREATE CACHED VIEW cv_orders AS SELECT o_id, o_c_id, o_date FROM orders",
        ),
    ]
    routes = {
        "getbook": ProcedureRoute(ROUTE_KEY, table="item", key_param="i_id"),
        "getstock": ProcedureRoute(ROUTE_KEY, table="item", key_param="i_id"),
        "dosubjectsearch": ProcedureRoute(ROUTE_SCATTER, table="item"),
        "dotitlesearch": ProcedureRoute(ROUTE_SCATTER, table="item"),
        "doauthorsearch": ProcedureRoute(ROUTE_SCATTER, table="item"),
        "getnewproducts": ProcedureRoute(ROUTE_SCATTER, table="item"),
    }
    return ShardingPolicy(
        key_domain=(1, config.num_items),
        partitions=partitions,
        broadcasts=broadcasts,
        routes=routes,
        shadow_tables=["item", "author", "orders", "order_line"],
        procedures=[
            "getBook",
            "getStock",
            "doSubjectSearch",
            "doTitleSearch",
            "doAuthorSearch",
            "getNewProducts",
        ],
    )
