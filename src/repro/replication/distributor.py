"""The distributor and its distribution database.

The distribution database stores *replication commands* — per-committed-
transaction batches of projected row changes — until every subscription
has consumed them, after which they are deleted (as SQL Server does).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class ReplicationCommand:
    """One projected change within a replicated transaction."""

    article_name: str
    action: str  # "insert" | "delete" | "update"
    old_row: Optional[Tuple] = None
    new_row: Optional[Tuple] = None


@dataclass(frozen=True)
class ReplicatedTransaction:
    """A complete committed transaction, ready for push in commit order."""

    sequence: int  # dense, assigned by the distribution database
    origin_transaction_id: int
    commit_timestamp: float
    commands: Tuple[ReplicationCommand, ...]


class DistributionDatabase:
    """Commit-ordered command store with per-subscription watermarks."""

    def __init__(self):
        self._transactions: List[ReplicatedTransaction] = []
        self._sequence = itertools.count(1)
        self.commands_stored = 0

    def append(
        self,
        origin_transaction_id: int,
        commit_timestamp: float,
        commands: List[ReplicationCommand],
    ) -> ReplicatedTransaction:
        transaction = ReplicatedTransaction(
            sequence=next(self._sequence),
            origin_transaction_id=origin_transaction_id,
            commit_timestamp=commit_timestamp,
            commands=tuple(commands),
        )
        self._transactions.append(transaction)
        self.commands_stored += len(commands)
        return transaction

    @property
    def last_sequence(self) -> int:
        if not self._transactions:
            return 0
        return self._transactions[-1].sequence

    def read_after(self, sequence: int) -> List[ReplicatedTransaction]:
        """All stored transactions with sequence > ``sequence``."""
        if not self._transactions:
            return []
        first = self._transactions[0].sequence
        offset = max(0, sequence - first + 1)
        return self._transactions[offset:]

    def purge_through(self, sequence: int) -> int:
        """Delete transactions every subscriber has consumed."""
        kept = [t for t in self._transactions if t.sequence > sequence]
        purged = len(self._transactions) - len(kept)
        self._transactions = kept
        return purged

    def __len__(self) -> int:
        return len(self._transactions)


class Distributor:
    """Owns the distribution database and the registered subscriptions."""

    def __init__(self, clock):
        self.clock = clock
        self.distribution_db = DistributionDatabase()
        self.subscriptions: List = []  # Subscription instances
        self.agents: List = []  # DistributionAgent instances

    def register_subscription(self, subscription) -> None:
        self.subscriptions.append(subscription)

    def register_agent(self, agent) -> None:
        self.agents.append(agent)

    def cleanup(self) -> int:
        """Purge fully-consumed transactions (SQL Server's cleanup job)."""
        if not self.subscriptions:
            return 0
        low_water = min(sub.last_sequence for sub in self.subscriptions)
        return self.distribution_db.purge_through(low_water)
