"""Replication pipeline tests: articles, log reader, distributor, apply."""

import pytest

from repro import MTCacheDeployment

from tests.conftest import make_shop_backend


@pytest.fixture
def env():
    backend = make_shop_backend(customers=50, orders=100)
    deployment = MTCacheDeployment(backend, "shop")
    cache = deployment.add_cache_server("cache1")
    cache.create_cached_view(
        "CREATE CACHED VIEW vcust AS "
        "SELECT cid, cname, segment FROM customer WHERE cid <= 30"
    )
    return backend, deployment, cache


def view_rows(cache, sql="SELECT cid, cname, segment FROM vcust ORDER BY cid"):
    return cache.execute(sql).rows


class TestSnapshot:
    def test_initial_population(self, env):
        backend, deployment, cache = env
        rows = view_rows(cache)
        assert len(rows) == 30
        assert rows[0] == (1, "cust1", "base")

    def test_projection_applied(self, env):
        _, _, cache = env
        schema = cache.execute("SELECT * FROM vcust").schema
        assert schema.names == ["cid", "cname", "segment"]


class TestChangePropagation:
    def test_insert_outside_article_ignored(self, env):
        backend, deployment, cache = env
        backend.execute(
            "INSERT INTO customer VALUES (300, 'outside', 'a', 'gold')", database="shop"
        )
        deployment.sync()
        # Row 300 is outside the article predicate: view unchanged.
        assert len(view_rows(cache)) == 30

    def test_insert_matching_row_arrives(self, env):
        backend, deployment, cache = env
        backend.execute("DELETE FROM orders WHERE o_cid = 13", database="shop")
        backend.execute("DELETE FROM customer WHERE cid = 13", database="shop")
        deployment.sync()
        assert len(view_rows(cache)) == 29
        backend.execute(
            "INSERT INTO customer VALUES (13, 'back', 'a', 'base')", database="shop"
        )
        deployment.sync()
        rows = view_rows(cache)
        assert len(rows) == 30
        assert (13, "back", "base") in rows

    def test_update_inside_article(self, env):
        backend, deployment, cache = env
        backend.execute(
            "UPDATE customer SET cname = 'renamed' WHERE cid = 5", database="shop"
        )
        deployment.sync()
        assert (5, "renamed", "base") in view_rows(cache)

    def test_update_moving_row_out_of_article(self, env):
        """Key-range update: the subscriber must DELETE the row."""
        backend, deployment, cache = env
        backend.execute("DELETE FROM orders WHERE o_cid = 8", database="shop")
        backend.execute("UPDATE customer SET cid = 500 WHERE cid = 8", database="shop")
        deployment.sync()
        rows = view_rows(cache)
        assert len(rows) == 29
        assert all(row[0] != 8 for row in rows)

    def test_update_moving_row_into_article(self, env):
        backend, deployment, cache = env
        # Free up slot 30 inside the article, then move row 45 into it.
        backend.execute("DELETE FROM customer WHERE cid = 30", database="shop")
        deployment.sync()
        assert len(view_rows(cache)) == 29
        backend.execute("UPDATE customer SET cid = 30 WHERE cid = 45", database="shop")
        deployment.sync()
        rows = view_rows(cache)
        assert len(rows) == 30
        assert (30, "cust45", "gold") in rows  # 45 % 3 == 0 -> gold

    def test_delete_inside_article(self, env):
        backend, deployment, cache = env
        backend.execute("DELETE FROM orders WHERE o_cid = 3", database="shop")
        backend.execute("DELETE FROM customer WHERE cid = 3", database="shop")
        deployment.sync()
        assert len(view_rows(cache)) == 29

    def test_rolled_back_changes_never_propagate(self, env):
        backend, deployment, cache = env
        from repro.engine import Session

        session = Session()
        backend.execute("BEGIN TRANSACTION", session=session, database="shop")
        backend.execute(
            "UPDATE customer SET cname = 'phantom' WHERE cid = 2",
            session=session,
            database="shop",
        )
        backend.execute("ROLLBACK", session=session, database="shop")
        deployment.sync()
        assert (2, "cust2", "base") in view_rows(cache)

    def test_open_transaction_not_propagated_until_commit(self, env):
        backend, deployment, cache = env
        import threading

        from repro.engine import Session

        session = Session()
        backend.execute("BEGIN TRANSACTION", session=session, database="shop")
        backend.execute(
            "UPDATE customer SET cname = 'pending' WHERE cid = 2",
            session=session,
            database="shop",
        )
        deployment.sync()
        # Read the cache from its own thread: the writer holds the
        # backend latch for the transaction's span, and a single thread
        # must not nest a second database's latch under it (the lock
        # witness flags it). A cache reader is a separate client anyway.
        mid_transaction: list = []
        reader = threading.Thread(target=lambda: mid_transaction.append(view_rows(cache)))
        reader.start()
        reader.join()
        assert (2, "cust2", "base") in mid_transaction[0]
        backend.execute("COMMIT", session=session, database="shop")
        deployment.sync()
        assert (2, "pending", "base") in view_rows(cache)

    def test_transactional_batching_is_atomic_per_commit(self, env):
        backend, deployment, cache = env
        from repro.engine import Session

        session = Session()
        backend.execute("BEGIN TRANSACTION", session=session, database="shop")
        for cid in (10, 11, 12):
            backend.execute(
                f"UPDATE customer SET segment = 'vip' WHERE cid = {cid}",
                session=session,
                database="shop",
            )
        backend.execute("COMMIT", session=session, database="shop")
        deployment.sync()
        vips = [row for row in view_rows(cache) if row[2] == "vip"]
        assert len(vips) == 3


class TestSharedArticles:
    def test_identical_views_share_one_article(self, env):
        backend, deployment, cache = env
        cache2 = deployment.add_cache_server("cache2")
        cache2.create_cached_view(
            "CREATE CACHED VIEW vcust AS "
            "SELECT cid, cname, segment FROM customer WHERE cid <= 30"
        )
        assert len(deployment.publication.articles) == 1
        assert len(deployment.distributor.subscriptions) == 2

    def test_second_subscriber_receives_changes(self, env):
        backend, deployment, cache = env
        cache2 = deployment.add_cache_server("cache2")
        cache2.create_cached_view(
            "CREATE CACHED VIEW vcust AS "
            "SELECT cid, cname, segment FROM customer WHERE cid <= 30"
        )
        backend.execute(
            "UPDATE customer SET cname = 'both' WHERE cid = 4", database="shop"
        )
        deployment.sync()
        assert (4, "both", "base") in view_rows(cache)
        assert (4, "both", "base") in view_rows(cache2)


class TestDistributionDatabase:
    def test_cleanup_purges_consumed(self, env):
        backend, deployment, cache = env
        backend.execute(
            "UPDATE customer SET cname = 'tmp' WHERE cid = 6", database="shop"
        )
        deployment.sync()
        assert len(deployment.distributor.distribution_db) == 0

    def test_unconsumed_commands_retained(self, env):
        backend, deployment, cache = env
        backend.execute(
            "UPDATE customer SET cname = 'tmp' WHERE cid = 6", database="shop"
        )
        deployment.log_reader.poll()
        assert len(deployment.distributor.distribution_db) == 1


class TestOverheadCounters:
    def test_log_reader_counters(self, env):
        backend, deployment, cache = env
        before = deployment.log_reader.commands_produced
        backend.execute(
            "UPDATE customer SET cname = 'c' WHERE cid = 7", database="shop"
        )
        deployment.sync()
        assert deployment.log_reader.commands_produced == before + 1

    def test_disabled_log_reader_produces_nothing(self, env):
        backend, deployment, cache = env
        deployment.set_log_reader_enabled(False)
        backend.execute(
            "UPDATE customer SET cname = 'c' WHERE cid = 7", database="shop"
        )
        deployment.sync()
        assert (7, "cust7", "base") in view_rows(cache)
        deployment.set_log_reader_enabled(True)
        deployment.sync()
        assert (7, "c", "base") in view_rows(cache)
