"""Seeded violation: two same-level locks acquired in opposite orders.

Expected finding: ``lock-cycle`` (a -> b and b -> a).
"""

from repro.common.locks import mutex


class BadPair:
    def __init__(self):
        self._a = mutex()
        self._b = mutex()

    def transfer(self):
        with self._a:
            with self._b:
                return 1

    def reconcile(self):
        with self._b:
            with self._a:
                return 2
