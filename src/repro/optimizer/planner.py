"""The MTCache query planner.

Implements the paper's optimizer architecture on top of the Volcano-style
executor:

* **DataLocation as a physical property.** Table references resolve to
  Local (base tables with local storage, cached/materialized views) or
  Remote (shadow tables backed by the backend server, four-part linked
  server names). The root of every query requires Local.
* **DataTransfer as an enforcer.** A Remote subexpression becomes Local by
  rendering it to SQL text and wrapping it in a ``RemoteQueryOp``; its cost
  is ``transfer_startup + volume * per_byte`` on top of the remote
  execution cost, which is inflated by the remote penalty factor.
* **Cost-based local/remote choice.** For every query block the planner
  costs (a) a *local mix* plan — joins executed locally with each table
  reference choosing its cheapest access path (cached view, local index,
  or per-table remote transfer) — and (b) a *full pushdown* plan that
  ships the whole query block to the backend. The cheaper wins; there are
  no routing heuristics.
* **Dynamic plans.** When a cached view matches a parameterized query only
  under a parameter guard, the planner emits a ChoosePlan: a UnionAll whose
  branches carry mutually exclusive startup predicates (guard / NOT guard),
  costed as the guard-frequency-weighted average of the branches. With
  pull-up enabled (default) the ChoosePlan is hoisted to the top of the
  block so each branch is optimized independently — allowing a larger
  remote pushdown on the guard-false branch, exactly as in Figure 4.
* **Mixed-result plans** (Figure 3) are generated for regular materialized
  views but never for cached views, whose staleness would make a mixed
  result transactionally inconsistent.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.common.schema import Column, Schema
from repro.common.types import BIGINT, FLOAT, INT, VARCHAR, SqlType
from repro.errors import BindError, OptimizerError
from repro.exec.expressions import ExpressionCompiler, Scalar, column_maker
from repro.exec.operators import (
    AggregateOp,
    AggregateSpec,
    DistinctOp,
    FilterOp,
    HashJoinOp,
    IndexExtremeOp,
    IndexLookupJoinOp,
    IndexRangeScanOp,
    IndexSeekOp,
    MergeJoinOp,
    NestedLoopJoinOp,
    PhysicalOperator,
    ProjectOp,
    RemoteQueryOp,
    SeqScanOp,
    SortOp,
    TopOp,
    UnionAllOp,
    ValuesOp,
)
from repro.optimizer.binder import (
    Namespace,
    collect_aggregates,
    contains_aggregate,
    qualify_expression,
    substitute,
)
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel
from repro.optimizer.predicates import (
    and_together,
    conjunct_tables,
    negate,
    normalize_comparison,
    split_conjuncts,
)
from repro.optimizer.viewmatch import ViewMatch, ViewMatcher
from repro.sql import ast
from repro.sql.formatter import format_statement

#: Upper bound on guarded leaves expanded via ChoosePlan pull-up; further
#: guarded leaves stay as leaf-level ChoosePlans to bound plan size.
MAX_PULLED_UP_GUARDS = 2


@dataclass
class PlannedStatement:
    """The result of optimization: an executable plan plus metadata."""

    root: PhysicalOperator
    schema: Schema
    estimated_rows: float
    estimated_cost: float
    uses_remote: bool
    uses_cached_view: bool
    is_dynamic: bool
    freshness_seconds: Optional[float] = None
    #: Parameters the source statement references (including inside
    #: subqueries); the plan verifier checks bindings against this set.
    required_parameters: frozenset = frozenset()

    def explain(self, costs: bool = False) -> str:
        return self.root.explain(costs=costs)


@dataclass
class _Source:
    """One FROM-clause item after flattening."""

    alias: str
    kind: str  # "table" or "derived"
    table_name: str = ""
    server: Optional[str] = None  # explicit linked server (4-part name)
    subselect: Optional[ast.Select] = None
    columns: List[str] = field(default_factory=list)
    column_types: Dict[str, SqlType] = field(default_factory=dict)


@dataclass
class _Leaf:
    """Per-source planning state."""

    source: _Source
    required: List[str]  # lowercase base column names, deterministic order
    conjuncts: List[ast.Expression]
    schema: Schema  # leaf output schema (required columns, alias-qualified)
    is_remote: bool = False
    remote_server: Optional[str] = None
    base_rows: float = 1000.0
    estimator: Optional[CardinalityEstimator] = None


@dataclass
class _LookupInfo:
    """Enough information to convert a scan leaf into an index-lookup join.

    Captured when a leaf resolves to locally stored data (base table on a
    backend server, or a cached/materialized view's backing table); the
    join planner can then probe the storage's indexes per outer row
    instead of scanning it.
    """

    storage_name: str
    full_schema: Schema  # storage columns relabeled into query names
    conjuncts: List[ast.Expression]
    estimator: CardinalityEstimator
    base_rows: float
    leaf: "_Leaf"


@dataclass
class _Plan:
    """A plan fragment with its estimates."""

    op: Optional[PhysicalOperator]
    rows: float
    cost: float
    lookup: Optional[_LookupInfo] = None

    def attach(self) -> "_Plan":
        if self.op is not None:
            self.op.estimated_rows = self.rows
            self.op.estimated_cost = self.cost
        return self


@dataclass
class _DynamicLeaf:
    """A guarded view match at a leaf, pending ChoosePlan construction."""

    leaf: _Leaf
    match: ViewMatch
    guard: ast.Expression
    frequency: float


class Optimizer:
    """Plans SELECT statements against a database (backend or cache)."""

    def __init__(
        self,
        database,
        cost_model: Optional[CostModel] = None,
        enable_dynamic_plans: bool = True,
        pullup_chooseplan: bool = True,
        allow_mixed_results: bool = True,
        force_local_views: bool = False,
        assume_all_local: bool = False,
        parameter_distribution: str = "uniform",
        metrics=None,
    ):
        """``force_local_views`` reproduces the DBCache-style heuristic the
        paper contrasts against: always use a matching cached view
        regardless of cost (for the routing ablation benchmark).

        ``assume_all_local`` turns the optimizer into a *backend cost
        estimator*: every shadow table is costed as if its data were local
        (using the shadowed statistics, indexes and empty storage), cached
        views are ignored, and no pushdown alternative is generated. This
        is how a cache server locally estimates what a query would cost if
        shipped to the backend — the paper's "local optimization" choice
        (§5), adopted precisely because remote optimization would mean
        shipping hundreds of subexpressions per query.
        """
        self.database = database
        self.cost = cost_model or CostModel()
        self.enable_dynamic_plans = enable_dynamic_plans
        self.pullup_chooseplan = pullup_chooseplan
        self.allow_mixed_results = allow_mixed_results
        self.force_local_views = force_local_views
        self.assume_all_local = assume_all_local
        # Guard-frequency estimation mode for dynamic plans (paper §5.1):
        # "uniform" over [min, max] (the paper's choice) or "column" (the
        # column-value-distribution alternative it mentions).
        self.parameter_distribution = parameter_distribution
        self.view_matcher = ViewMatcher(
            database.catalog, lambda name: self._object_columns(name)
        )
        self._backend_estimator_cache: Optional[Tuple[int, "Optimizer"]] = None
        # Observability: the owning server's MetricsRegistry (None when
        # disabled); plan_select records what kind of plan came out.
        self.metrics = metrics

    def _record(self, planned: PlannedStatement) -> PlannedStatement:
        """Count the produced plan's shape on the metrics registry."""
        if self.metrics is not None:
            self.metrics.counter("optimizer.plans").inc()
            if planned.is_dynamic:
                self.metrics.counter("optimizer.dynamic_plans").inc()
            if planned.uses_remote:
                self.metrics.counter("optimizer.remote_plans").inc()
            if planned.uses_cached_view:
                self.metrics.counter("optimizer.cached_view_plans").inc()
        return planned

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------

    def plan_select(self, select: ast.Select) -> PlannedStatement:
        """Optimize a SELECT into an executable physical plan."""
        use_views = True
        freshness = None
        if select.freshness is not None:
            freshness = select.freshness.max_staleness_seconds
            staleness = getattr(self.database, "replication_staleness", lambda: None)()
            if staleness is not None and staleness > freshness:
                # Cached data is too stale for this query: disable view
                # matching so the data comes from the backend.
                use_views = False

        required = frozenset(ast.statement_parameters(select))

        if select.from_clause is None:
            plan = self._plan_values(select)
            return self._record(PlannedStatement(
                root=plan.op,
                schema=plan.op.schema,
                estimated_rows=plan.rows,
                estimated_cost=plan.cost,
                uses_remote=False,
                uses_cached_view=False,
                is_dynamic=False,
                freshness_seconds=freshness,
                required_parameters=required,
            ))

        sources, join_conjuncts, has_outer = self._collect_sources(select.from_clause)
        namespace = Namespace()
        for source in sources:
            namespace.add(source.alias, source.columns)

        normalized = self._normalize(select, namespace, join_conjuncts)
        if has_outer:
            plan, used_remote, used_view = self._plan_syntactic(
                select, sources, namespace, normalized, use_views
            )
            is_dynamic = False
        else:
            plan, used_remote, used_view, is_dynamic = self._plan_block(
                select, sources, namespace, normalized, use_views
            )
        plan.attach()
        return self._record(PlannedStatement(
            root=plan.op,
            schema=plan.op.schema,
            estimated_rows=plan.rows,
            estimated_cost=plan.cost,
            uses_remote=used_remote,
            uses_cached_view=used_view,
            is_dynamic=is_dynamic,
            freshness_seconds=freshness,
            required_parameters=required,
        ))

    # ------------------------------------------------------------------
    # normalization
    # ------------------------------------------------------------------


    def _estimator(self, stats) -> CardinalityEstimator:
        """Build an estimator honouring the guard-frequency mode."""
        return CardinalityEstimator(
            stats, parameter_distribution=self.parameter_distribution
        )

    def _object_columns(self, name: str) -> List[str]:
        table = self.database.catalog.maybe_table(name)
        if table is not None:
            return table.schema.names
        view = self.database.catalog.maybe_view(name)
        if view is not None:
            return view.schema.names
        raise BindError(f"unknown object {name!r}")

    def _object_schema(self, name: str) -> Schema:
        table = self.database.catalog.maybe_table(name)
        if table is not None:
            return table.schema
        view = self.database.catalog.maybe_view(name)
        if view is not None:
            return view.schema
        raise BindError(f"unknown object {name!r}")

    def _collect_sources(
        self, ref: ast.TableRef
    ) -> Tuple[List[_Source], List[ast.Expression], bool]:
        """Flatten the FROM tree; returns sources, ON conjuncts, has_outer."""
        sources: List[_Source] = []
        conjuncts: List[ast.Expression] = []
        has_outer = False

        def visit(node: ast.TableRef) -> None:
            nonlocal has_outer
            if isinstance(node, ast.JoinRef):
                if node.kind == "LEFT":
                    has_outer = True
                visit(node.left)
                visit(node.right)
                if node.condition is not None:
                    conjuncts.extend(split_conjuncts(node.condition))
                return
            sources.append(self._make_source(node))

        visit(ref)
        return sources, conjuncts, has_outer

    def _make_source(self, node: ast.TableRef) -> _Source:
        if isinstance(node, ast.DerivedTable):
            sub_schema = self._select_output_schema(node.select)
            return _Source(
                alias=node.alias,
                kind="derived",
                subselect=node.select,
                columns=list(sub_schema.names),
                column_types={
                    column.name.lower(): column.sql_type for column in sub_schema
                },
            )
        assert isinstance(node, ast.TableName)
        object_name = node.object_name
        server = node.server
        # Plain (virtual) views are substituted inline as derived tables.
        view = self.database.catalog.maybe_view(object_name)
        if view is not None and not view.materialized and server is None:
            derived = ast.DerivedTable(view.select, node.binding_name)
            return self._make_source(derived)
        if server is not None:
            schema = self._linked_object_schema(server, object_name)
        else:
            schema = self._object_schema(object_name)
        return _Source(
            alias=node.binding_name,
            kind="table",
            table_name=object_name,
            server=server,
            columns=list(schema.names),
            column_types={column.name.lower(): column.sql_type for column in schema},
        )

    def _normalize(
        self,
        select: ast.Select,
        namespace: Namespace,
        join_conjuncts: List[ast.Expression],
    ) -> Dict[str, Any]:
        """Qualify all expressions; expand stars; split conjuncts."""
        items: List[ast.SelectItem] = []
        for item in select.items:
            if isinstance(item.expression, ast.Star):
                for alias in (
                    [item.expression.qualifier.lower()]
                    if item.expression.qualifier
                    else namespace.aliases()
                ):
                    for column in namespace.columns_of(alias):
                        items.append(
                            ast.SelectItem(ast.ColumnRef(column, qualifier=alias))
                        )
                continue
            items.append(
                ast.SelectItem(
                    qualify_expression(item.expression, namespace),
                    alias=item.alias,
                    target_parameter=item.target_parameter,
                )
            )

        conjuncts = [
            qualify_expression(conjunct, namespace)
            for conjunct in split_conjuncts(select.where) + join_conjuncts
        ]
        group_by = [qualify_expression(expr, namespace) for expr in select.group_by]
        having = (
            qualify_expression(select.having, namespace)
            if select.having is not None
            else None
        )

        # ORDER BY may reference select-list aliases.
        alias_map = {
            item.alias.lower(): item.expression
            for item in items
            if item.alias
        }
        order_by: List[ast.OrderItem] = []
        for entry in select.order_by:
            expression = entry.expression
            if (
                isinstance(expression, ast.ColumnRef)
                and expression.qualifier is None
                and expression.name.lower() in alias_map
            ):
                expression = alias_map[expression.name.lower()]
            else:
                expression = qualify_expression(expression, namespace)
            order_by.append(ast.OrderItem(expression, entry.descending))

        return {
            "items": items,
            "conjuncts": conjuncts,
            "group_by": group_by,
            "having": having,
            "order_by": order_by,
        }

    # ------------------------------------------------------------------
    # leaf construction
    # ------------------------------------------------------------------

    def _build_leaves(
        self,
        sources: List[_Source],
        normalized: Dict[str, Any],
    ) -> Tuple[List[_Leaf], List[ast.Expression]]:
        """Attribute conjuncts and required columns to each source."""
        all_expressions: List[ast.Expression] = [
            item.expression for item in normalized["items"]
        ]
        all_expressions.extend(normalized["conjuncts"])
        all_expressions.extend(normalized["group_by"])
        if normalized["having"] is not None:
            all_expressions.append(normalized["having"])
        all_expressions.extend(entry.expression for entry in normalized["order_by"])

        required: Dict[str, Set[str]] = {source.alias.lower(): set() for source in sources}
        for expression in all_expressions:
            for column in ast.expression_columns(expression):
                if column.qualifier:
                    required[column.qualifier.lower()].add(column.name.lower())

        single: Dict[str, List[ast.Expression]] = {
            source.alias.lower(): [] for source in sources
        }
        multi: List[ast.Expression] = []
        for conjunct in normalized["conjuncts"]:
            aliases = {alias for alias in conjunct_tables(conjunct) if alias}
            if len(aliases) == 1:
                single[next(iter(aliases))].append(conjunct)
            else:
                multi.append(conjunct)

        leaves: List[_Leaf] = []
        for source in sources:
            key = source.alias.lower()
            ordered_required = [
                column
                for column in (name.lower() for name in source.columns)
                if column in required[key]
            ]
            if not ordered_required:
                # A leaf must output at least one column (e.g. COUNT(*)).
                ordered_required = [source.columns[0].lower()]
            schema = Schema(
                Column(
                    name=column,
                    sql_type=source.column_types.get(column, FLOAT),
                    qualifier=source.alias,
                )
                for column in ordered_required
            )
            leaf = _Leaf(
                source=source,
                required=ordered_required,
                conjuncts=single[key],
                schema=schema,
            )
            self._classify_leaf(leaf)
            leaves.append(leaf)
        return leaves, multi

    def _linked_database(self, server_name: str):
        """Resolve a linked server name to its target database."""
        owner = getattr(self.database, "owner_server", None)
        if owner is None:
            raise OptimizerError(
                f"cannot resolve linked server {server_name!r}: database has no owner server"
            )
        link = owner.linked_servers.get(server_name)
        return link.server.database(link.database)

    def _linked_object_schema(self, server_name: str, object_name: str) -> Schema:
        remote_db = self._linked_database(server_name)
        table = remote_db.catalog.maybe_table(object_name)
        if table is not None:
            return table.schema
        view = remote_db.catalog.maybe_view(object_name)
        if view is not None:
            return view.schema
        raise BindError(
            f"unknown object {object_name!r} on linked server {server_name!r}"
        )

    def _classify_leaf(self, leaf: _Leaf) -> None:
        source = leaf.source
        if source.kind == "derived":
            leaf.is_remote = False
            leaf.base_rows = 1000.0
            leaf.estimator = self._estimator(None)
            return
        if source.server is not None:
            try:
                stats = self._linked_database(source.server).stats_for(source.table_name)
            except Exception:
                stats = None
        else:
            stats = self.database.stats_for(source.table_name)
        leaf.estimator = self._estimator(stats)
        leaf.base_rows = float(stats.row_count) if stats is not None else 1000.0
        if self.assume_all_local:
            leaf.is_remote = False
        elif source.server is not None:
            leaf.is_remote = True
            leaf.remote_server = source.server
        elif self.database.is_remote_table(source.table_name):
            leaf.is_remote = True
            leaf.remote_server = self.database.backend_server
        else:
            leaf.is_remote = False

    # ------------------------------------------------------------------
    # leaf access paths
    # ------------------------------------------------------------------

    def _leaf_base_plan(self, leaf: _Leaf) -> _Plan:
        """Cheapest plan reading the leaf from its base location."""
        if leaf.source.kind == "derived":
            return self._leaf_derived_plan(leaf)
        if leaf.is_remote:
            return self._leaf_remote_plan(leaf)
        return self._leaf_local_plan(leaf)

    def _leaf_derived_plan(self, leaf: _Leaf) -> _Plan:
        planned = self.plan_select(leaf.source.subselect)
        inner = planned.root
        # Re-qualify the derived output under the leaf alias, apply the
        # query's pushed-down conjuncts, then project to the required
        # columns.
        aliased_schema = planned.schema.with_qualifier(leaf.source.alias)
        relabeled: PhysicalOperator = _RelabelOp(inner, aliased_schema)
        rows = planned.estimated_rows
        cost = planned.estimated_cost
        if leaf.conjuncts:
            predicate = ExpressionCompiler(aliased_schema).compile(
                and_together(leaf.conjuncts)
            )
            relabeled = FilterOp(relabeled, predicate)
            cost += self.cost.filter(rows)
            estimator = leaf.estimator or self._estimator(None)
            rows = max(0.0, rows * estimator.selectivity(leaf.conjuncts))
        positions = [
            aliased_schema.resolve(column, leaf.source.alias) for column in leaf.required
        ]
        makers: List[Scalar] = [column_maker(position) for position in positions]
        project = ProjectOp(relabeled, leaf.schema, makers)
        cost += self.cost.project(rows)
        return _Plan(project, rows, cost).attach()

    def _leaf_local_plan(
        self,
        leaf: _Leaf,
        storage_name: Optional[str] = None,
        labeled_schema: Optional[Schema] = None,
        conjuncts: Optional[List[ast.Expression]] = None,
        rows_hint: Optional[float] = None,
    ) -> _Plan:
        """Access a locally stored object (base table or view backing).

        ``labeled_schema`` relabels the storage's columns into the query's
        namespace (used when scanning a view whose output names differ from
        the base table's). Index selection considers every storage index.
        """
        table_name = storage_name or leaf.source.table_name
        storage = self.database.storage_table(table_name)
        full_schema = (
            labeled_schema
            if labeled_schema is not None
            else self._object_schema(table_name).with_qualifier(leaf.source.alias)
        )
        conjuncts = leaf.conjuncts if conjuncts is None else conjuncts
        estimator = leaf.estimator or self._estimator(None)
        base_rows = rows_hint if rows_hint is not None else float(len(storage) or leaf.base_rows)
        selectivity = estimator.selectivity(conjuncts) if conjuncts else 1.0
        out_rows = max(0.0, base_rows * selectivity)

        compiler = ExpressionCompiler(full_schema)
        best_op: Optional[PhysicalOperator] = None
        best_cost = float("inf")

        # Sequential scan alternative.
        scan: PhysicalOperator = SeqScanOp(full_schema, table_name)
        scan_cost = self.cost.seq_scan(base_rows) + self.cost.filter(base_rows)
        if conjuncts:
            predicate = compiler.compile(and_together(conjuncts))
            scan = FilterOp(scan, predicate)
        best_op, best_cost = scan, scan_cost

        # Index alternatives.
        for index in storage.indexes.values():
            candidate = self._index_access(
                leaf, table_name, full_schema, index, conjuncts, base_rows, compiler, estimator
            )
            if candidate is not None and candidate.cost < best_cost:
                best_op, best_cost = candidate.op, candidate.cost

        project = self._project_to_leaf_schema(best_op, full_schema, leaf)
        total = best_cost + self.cost.project(out_rows)
        lookup = _LookupInfo(
            storage_name=table_name,
            full_schema=full_schema,
            conjuncts=list(conjuncts),
            estimator=estimator,
            base_rows=base_rows,
            leaf=leaf,
        )
        return _Plan(project, out_rows, total, lookup=lookup).attach()

    def _index_access(
        self,
        leaf: _Leaf,
        table_name: str,
        full_schema: Schema,
        index,
        conjuncts: List[ast.Expression],
        base_rows: float,
        compiler: ExpressionCompiler,
        estimator: CardinalityEstimator,
    ) -> Optional[_Plan]:
        """Build an index seek/range alternative when conjuncts allow."""
        comparisons = [
            comparison
            for comparison in (normalize_comparison(c) for c in conjuncts)
            if comparison is not None
        ]
        by_column: Dict[str, List] = {}
        for comparison in comparisons:
            by_column.setdefault(comparison.column.name.lower(), []).append(comparison)

        # Longest equality prefix.
        key_makers: List[Scalar] = []
        consumed_selectivity = 1.0
        blank = ExpressionCompiler(Schema(()))
        for column_name in index.column_names:
            candidates = [
                comparison
                for comparison in by_column.get(column_name.lower(), [])
                if comparison.op == "="
            ]
            if not candidates:
                break
            operand = candidates[0].operand
            key_makers.append(blank.compile(operand))
            consumed_selectivity *= estimator.conjunct_selectivity(
                ast.BinaryOp("=", candidates[0].column, operand)
            )

        low_makers = high_makers = None
        low_inclusive = high_inclusive = True
        if len(key_makers) < len(index.column_names):
            # A range bound on the next key column extends the access path.
            next_column = index.column_names[len(key_makers)].lower()
            lows = [c for c in by_column.get(next_column, []) if c.op in (">", ">=")]
            highs = [c for c in by_column.get(next_column, []) if c.op in ("<", "<=")]
            prefix = list(key_makers)
            if lows:
                low_makers = prefix + [blank.compile(lows[0].operand)]
                low_inclusive = lows[0].op == ">="
            if highs:
                high_makers = prefix + [blank.compile(highs[0].operand)]
                high_inclusive = highs[0].op == "<="
            if lows or highs:
                bound = lows[0] if lows else highs[0]
                consumed_selectivity *= estimator.conjunct_selectivity(
                    ast.BinaryOp(bound.op, bound.column, bound.operand)
                )
                if key_makers and not lows:
                    low_makers = prefix
                if key_makers and not highs:
                    high_makers = prefix
                op: PhysicalOperator = IndexRangeScanOp(
                    full_schema,
                    table_name,
                    index.name,
                    low_makers,
                    high_makers,
                    low_inclusive,
                    high_inclusive,
                )
            elif key_makers:
                op = IndexSeekOp(full_schema, table_name, index.name, key_makers)
            else:
                return None
        elif key_makers:
            op = IndexSeekOp(full_schema, table_name, index.name, key_makers)
        else:
            return None

        matched_rows = max(1.0, base_rows * consumed_selectivity)
        cost = self.cost.index_seek(matched_rows) + self.cost.filter(matched_rows)
        if conjuncts:
            predicate = compiler.compile(and_together(conjuncts))
            op = FilterOp(op, predicate)
        return _Plan(op, matched_rows, cost)

    def _project_to_leaf_schema(
        self, op: PhysicalOperator, full_schema: Schema, leaf: _Leaf
    ) -> PhysicalOperator:
        positions = [
            full_schema.resolve(column, leaf.source.alias) for column in leaf.required
        ]
        makers = [column_maker(position) for position in positions]
        return ProjectOp(op, leaf.schema, makers)

    def _leaf_remote_plan(
        self, leaf: _Leaf, extra_predicate: Optional[ast.Expression] = None
    ) -> _Plan:
        """DataTransfer of a select-project over the leaf's base table."""
        conjuncts = list(leaf.conjuncts)
        if extra_predicate is not None:
            conjuncts = split_conjuncts(extra_predicate)
        sql_text = self._leaf_remote_sql(leaf, conjuncts)
        estimator = leaf.estimator or self._estimator(None)
        selectivity = estimator.selectivity(conjuncts) if conjuncts else 1.0
        out_rows = max(0.0, leaf.base_rows * selectivity)
        backend_cost = self._estimate_backend_access(leaf, conjuncts)
        cost = self.cost.remote(backend_cost) + self.cost.data_transfer(
            out_rows, leaf.schema.row_width
        )
        server = leaf.remote_server or self.database.backend_server
        if server is None:
            raise OptimizerError(
                f"table {leaf.source.table_name!r} is remote but no backend server is configured"
            )
        op = RemoteQueryOp(leaf.schema, server, sql_text)
        return _Plan(op, out_rows, cost).attach()

    def _leaf_remote_sql(self, leaf: _Leaf, conjuncts: List[ast.Expression]) -> str:
        alias = leaf.source.alias
        items = tuple(
            ast.SelectItem(ast.ColumnRef(column, qualifier=alias))
            for column in leaf.required
        )
        select = ast.Select(
            items=items,
            from_clause=ast.TableName(
                (leaf.source.table_name,),
                alias=alias if alias.lower() != leaf.source.table_name.lower() else None,
            ),
            where=and_together(list(conjuncts)),
        )
        return format_statement(select)

    def _estimate_backend_access(
        self, leaf: _Leaf, conjuncts: List[ast.Expression]
    ) -> float:
        """Estimated cost of the leaf's access path on the backend server.

        Uses the shadowed catalog: the backend is assumed to have exactly
        the indexes the (shadow) catalog lists.
        """
        estimator = leaf.estimator or self._estimator(None)
        base_rows = leaf.base_rows
        scan_cost = self.cost.seq_scan(base_rows) + self.cost.filter(base_rows)
        best = scan_cost
        comparisons = [
            comparison
            for comparison in (normalize_comparison(c) for c in conjuncts)
            if comparison is not None
        ]
        eq_columns = {c.column.name.lower() for c in comparisons if c.op == "="}
        range_columns = {c.column.name.lower() for c in comparisons if c.op in ("<", "<=", ">", ">=")}
        index_defs = list(self.database.catalog.indexes_on(leaf.source.table_name))
        table_def = self.database.catalog.maybe_table(leaf.source.table_name)
        if table_def is not None and table_def.primary_key:
            index_defs.append(
                dataclasses.replace(
                    index_defs[0], columns=table_def.primary_key, name="_pk"
                )
                if index_defs
                else _FakeIndexDef(table_def.primary_key)
            )
        for index in index_defs:
            selectivity = 1.0
            usable = False
            for column_name in index.columns:
                key = column_name.lower()
                if key in eq_columns:
                    usable = True
                    selectivity *= estimator.conjunct_selectivity(
                        ast.BinaryOp("=", ast.ColumnRef(column_name), ast.Literal(0))
                    )
                elif key in range_columns:
                    usable = True
                    selectivity *= 1.0 / 3.0
                    break
                else:
                    break
            if usable:
                matched = max(1.0, base_rows * selectivity)
                cost = self.cost.index_seek(matched) + self.cost.filter(matched)
                best = min(best, cost)
        return best

    def _leaf_view_plan(self, leaf: _Leaf, match: ViewMatch) -> _Plan:
        """Scan a matching materialized view, relabeled into query names."""
        view_name = match.view.name
        storage = self.database.storage_table(view_name)
        view_schema = self._object_schema(view_name)
        # Relabel view output columns back to base-table names under the
        # query alias so residual predicates and upper operators resolve.
        reverse = {
            output.lower(): base
            for base, output in match.description.column_mapping.items()
        }
        labeled = Schema(
            Column(
                name=reverse.get(column.name.lower(), column.name),
                sql_type=column.sql_type,
                qualifier=leaf.source.alias,
            )
            for column in view_schema
        )
        view_stats = self.database.stats_for(view_name)
        rows_hint = (
            float(view_stats.row_count)
            if view_stats is not None
            else float(len(storage))
        )
        view_estimator = self._estimator(view_stats)
        saved = leaf.estimator
        leaf.estimator = view_estimator
        try:
            plan = self._leaf_local_plan(
                leaf,
                storage_name=view_name,
                labeled_schema=labeled,
                conjuncts=leaf.conjuncts,
                rows_hint=rows_hint,
            )
        finally:
            leaf.estimator = saved
        return plan

    # ------------------------------------------------------------------
    # leaf decision (the cost-based local/remote/view choice)
    # ------------------------------------------------------------------

    def _decide_leaf(
        self, leaf: _Leaf, use_views: bool
    ) -> Tuple[_Plan, Optional[_DynamicLeaf], bool]:
        """Choose the leaf's access path.

        Returns ``(plan, dynamic, used_view)``. When ``dynamic`` is not
        None the returned plan is the *base* (guard-false) plan and the
        caller must build a ChoosePlan.
        """
        base_plan = self._leaf_base_plan(leaf)
        if leaf.source.kind == "derived" or not use_views:
            return base_plan, None, False

        matches = self.view_matcher.matches(
            leaf.source.table_name,
            set(leaf.required),
            leaf.conjuncts,
        )
        if self.assume_all_local:
            # Backend cost estimation: the backend has no cached views.
            matches = [match for match in matches if not match.view.cached]
        if not matches:
            return base_plan, None, False

        # Unconditional matches: plain cost comparison with the base path.
        for match in matches:
            if match.unconditional:
                view_plan = self._leaf_view_plan(leaf, match)
                if self.force_local_views or view_plan.cost <= base_plan.cost:
                    return view_plan, None, True
                return base_plan, None, False

        if not self.enable_dynamic_plans:
            return base_plan, None, False

        match = matches[0]
        guard = match.guard_expression()
        guard_column = match.guards[0][1]
        frequency = (leaf.estimator or self._estimator(None)).guard_frequency_for_column(
            guard, guard_column
        )

        # Mixed-result alternative (Figure 3): allowed only for regular
        # materialized views; cached views would give inconsistent results.
        if (
            self.allow_mixed_results
            and not match.view.cached
            and match.remainder is not None
            and leaf.is_remote
        ):
            mixed = self._leaf_mixed_plan(leaf, match, guard, frequency)
            view_plan = self._leaf_view_plan(leaf, match)
            dynamic_cost = frequency * view_plan.cost + (1 - frequency) * base_plan.cost
            if mixed.cost < dynamic_cost:
                return mixed, None, True

        view_plan = self._leaf_view_plan(leaf, match)
        dynamic_cost = frequency * view_plan.cost + (1 - frequency) * base_plan.cost
        if not self.force_local_views and dynamic_cost >= base_plan.cost:
            return base_plan, None, False
        dynamic = _DynamicLeaf(leaf, match, guard, frequency)
        return base_plan, dynamic, True

    def _leaf_mixed_plan(
        self, leaf: _Leaf, match: ViewMatch, guard: ast.Expression, frequency: float
    ) -> _Plan:
        """Figure 3: view rows plus guarded remote fetch of the remainder."""
        view_plan = self._leaf_view_plan(leaf, match)
        remote_plan = self._leaf_remote_plan(leaf, extra_predicate=match.remainder)
        blank = ExpressionCompiler(Schema(()))
        not_guard = negate(guard)
        startup = blank.compile(not_guard)
        guarded_remote = FilterOp(
            remote_plan.op,
            startup_predicate=startup,
            description="remainder",
            startup_guard=not_guard,
        )
        op = UnionAllOp([view_plan.op, guarded_remote])
        rows = view_plan.rows + (1 - frequency) * remote_plan.rows
        cost = view_plan.cost + (1 - frequency) * remote_plan.cost
        return _Plan(op, rows, cost).attach()

    def _leaf_chooseplan(
        self, view_plan: _Plan, base_plan: _Plan, dynamic: _DynamicLeaf
    ) -> _Plan:
        """Leaf-level ChoosePlan (no pull-up): UnionAll + startup guards."""
        blank = ExpressionCompiler(Schema(()))
        not_guard = negate(dynamic.guard)
        guard_fn = blank.compile(dynamic.guard)
        not_guard_fn = blank.compile(not_guard)
        local_branch = FilterOp(
            view_plan.op,
            startup_predicate=guard_fn,
            description="guard",
            startup_guard=dynamic.guard,
        )
        remote_branch = FilterOp(
            base_plan.op,
            startup_predicate=not_guard_fn,
            description="not guard",
            startup_guard=not_guard,
        )
        op = UnionAllOp([local_branch, remote_branch], choose_plan=True)
        frequency = dynamic.frequency
        rows = frequency * view_plan.rows + (1 - frequency) * base_plan.rows
        cost = frequency * view_plan.cost + (1 - frequency) * base_plan.cost
        return _Plan(op, rows, cost).attach()

    # ------------------------------------------------------------------
    # join planning
    # ------------------------------------------------------------------

    def _plan_joins(
        self,
        leaf_plans: List[Tuple[_Leaf, _Plan]],
        multi_conjuncts: List[ast.Expression],
    ) -> _Plan:
        """Greedy left-deep join ordering with hash joins on equi-keys."""
        remaining = sorted(leaf_plans, key=lambda pair: pair[1].rows)
        pending = list(multi_conjuncts)

        current_leaf, current_plan = remaining.pop(0)
        current_schema = current_plan.op.schema
        bound_aliases = {current_leaf.source.alias.lower()}
        op = current_plan.op
        rows = current_plan.rows
        cost = current_plan.cost

        while remaining:
            # Prefer a leaf connected to the bound set by some conjunct.
            chosen_index = None
            for index, (leaf, _) in enumerate(remaining):
                alias = leaf.source.alias.lower()
                for conjunct in pending:
                    aliases = {a for a in conjunct_tables(conjunct) if a}
                    if alias in aliases and aliases - {alias} <= bound_aliases:
                        chosen_index = index
                        break
                if chosen_index is not None:
                    break
            if chosen_index is None:
                chosen_index = 0
            leaf, plan = remaining.pop(chosen_index)
            alias = leaf.source.alias.lower()
            combined_schema = current_schema.concat(plan.op.schema)

            applicable: List[ast.Expression] = []
            still_pending: List[ast.Expression] = []
            for conjunct in pending:
                aliases = {a for a in conjunct_tables(conjunct) if a}
                if aliases <= bound_aliases | {alias}:
                    applicable.append(conjunct)
                else:
                    still_pending.append(conjunct)
            pending = still_pending

            equi_pairs: List[Tuple[ast.Expression, ast.Expression]] = []
            residual: List[ast.Expression] = []
            for conjunct in applicable:
                keys = self._equi_keys(conjunct, bound_aliases, {alias})
                if keys is not None:
                    equi_pairs.append(keys)
                else:
                    residual.append(conjunct)

            join_selectivity = 0.1 if applicable else 1.0
            if equi_pairs:
                left_compiler = ExpressionCompiler(current_schema)
                hash_cost = plan.cost + self.cost.hash_join(rows, plan.rows)
                ndv = self._join_key_ndv(plan, equi_pairs)
                equi_rows = max(1.0, rows * plan.rows / max(1.0, ndv))
                if residual:
                    equi_rows = max(1.0, equi_rows * 0.5)
                lookup = self._try_index_lookup_join(
                    op, rows, current_schema, leaf, plan, equi_pairs, residual, hash_cost
                )
                if lookup is not None:
                    op, join_cost, join_rows = lookup
                    cost += join_cost
                    rows = min(join_rows, equi_rows) if equi_rows else join_rows
                else:
                    right_compiler = ExpressionCompiler(plan.op.schema)
                    equi_left = [left_compiler.compile(le) for le, _ in equi_pairs]
                    equi_right = [right_compiler.compile(re) for _, re in equi_pairs]
                    residual_fn = (
                        ExpressionCompiler(combined_schema).compile(and_together(residual))
                        if residual
                        else None
                    )
                    merge_cost = plan.cost + self.cost.merge_join(rows, plan.rows)
                    if merge_cost < hash_cost:
                        op = MergeJoinOp(op, plan.op, equi_left, equi_right, residual_fn)
                        cost += merge_cost
                    else:
                        op = HashJoinOp(op, plan.op, equi_left, equi_right, residual_fn)
                        cost += hash_cost
                    rows = equi_rows
            else:
                predicate = (
                    ExpressionCompiler(combined_schema).compile(and_together(applicable))
                    if applicable
                    else None
                )
                op = NestedLoopJoinOp(op, plan.op, predicate)
                cost += plan.cost + self.cost.nested_loop_join(rows, plan.rows)
                rows = max(1.0, rows * plan.rows * join_selectivity)
            current_schema = combined_schema
            bound_aliases.add(alias)

        # Any pending conjuncts now apply as a filter.
        if pending:
            predicate = ExpressionCompiler(current_schema).compile(and_together(pending))
            op = FilterOp(op, predicate)
            cost += self.cost.filter(rows)
            rows *= 0.5
        return _Plan(op, rows, cost).attach()

    def _join_key_ndv(
        self,
        plan: _Plan,
        equi_pairs: List[Tuple[ast.Expression, ast.Expression]],
    ) -> float:
        """Distinct count of the incoming leaf's join key (System-R rule:
        equi-join output is |L|·|R| / max NDV)."""
        best = 0.0
        info = plan.lookup
        for _, right_expr in equi_pairs:
            if not isinstance(right_expr, ast.ColumnRef):
                continue
            stats = None
            if info is not None and info.estimator.statistics is not None:
                stats = info.estimator.statistics.column(right_expr.name)
            if stats is not None:
                best = max(best, float(stats.distinct_count))
        if best <= 0:
            best = max(10.0, plan.rows)
        return best

    def _try_index_lookup_join(
        self,
        left_op: PhysicalOperator,
        left_rows: float,
        left_schema: Schema,
        leaf: _Leaf,
        plan: _Plan,
        equi_pairs: List[Tuple[ast.Expression, ast.Expression]],
        residual: List[ast.Expression],
        hash_cost: float,
    ) -> Optional[Tuple[PhysicalOperator, float, float]]:
        """Consider an index nested-loop join into a locally stored leaf.

        Returns ``(op, added_cost, output_rows)`` when a right-side index
        matches an equi-join column and probing beats the hash join.
        """
        info = plan.lookup
        if info is None:
            return None
        storage = self.database.storage_table(info.storage_name)

        # Find an equi pair whose right side is a plain column of this leaf
        # with an index led by that column.
        for pair_index, (left_expr, right_expr) in enumerate(equi_pairs):
            if not isinstance(right_expr, ast.ColumnRef):
                continue
            # Map the query-name column to the storage's physical column.
            position = info.full_schema.maybe_resolve(
                right_expr.name, right_expr.qualifier
            )
            if position is None:
                continue
            physical_column = storage.schema[position].name
            index = storage.find_index([physical_column])
            if index is None:
                continue

            ndv = 1.0
            stats = (
                info.estimator.statistics.column(physical_column)
                if info.estimator.statistics is not None
                else None
            )
            if stats is not None:
                ndv = max(1.0, float(stats.distinct_count))
            else:
                ndv = max(1.0, info.base_rows / 10.0)
            matches_per_probe = info.base_rows / ndv
            leaf_selectivity = (
                info.estimator.selectivity(info.conjuncts) if info.conjuncts else 1.0
            )
            lookup_cost = self.cost.index_lookup_join(left_rows, matches_per_probe)
            if lookup_cost >= hash_cost:
                return None

            left_compiler = ExpressionCompiler(left_schema)
            key_maker = left_compiler.compile(left_expr)
            full_compiler = ExpressionCompiler(info.full_schema)
            right_predicate = (
                full_compiler.compile(and_together(info.conjuncts))
                if info.conjuncts
                else None
            )
            right_positions = [
                info.full_schema.resolve(column, leaf.source.alias)
                for column in leaf.required
            ]
            combined_schema = left_schema.concat(leaf.schema)
            leftover = residual + [
                ast.BinaryOp("=", le, re)
                for idx, (le, re) in enumerate(equi_pairs)
                if idx != pair_index
            ]
            residual_fn = (
                ExpressionCompiler(combined_schema).compile(and_together(leftover))
                if leftover
                else None
            )
            op = IndexLookupJoinOp(
                left_op,
                leaf.schema,
                info.storage_name,
                index.name,
                [key_maker],
                right_positions,
                right_predicate,
                residual_fn,
            )
            out_rows = max(
                1.0, left_rows * matches_per_probe * leaf_selectivity * (0.5 if leftover else 1.0)
            )
            return op, lookup_cost, out_rows
        return None

    def _equi_keys(
        self,
        conjunct: ast.Expression,
        left_aliases: Set[str],
        right_aliases: Set[str],
    ) -> Optional[Tuple[ast.Expression, ast.Expression]]:
        """Detect ``left_expr = right_expr`` across the two sides."""
        if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
            return None
        left_tables = {a for a in conjunct_tables(conjunct.left) if a}
        right_tables = {a for a in conjunct_tables(conjunct.right) if a}
        if not left_tables or not right_tables:
            return None
        if left_tables <= left_aliases and right_tables <= right_aliases:
            return conjunct.left, conjunct.right
        if left_tables <= right_aliases and right_tables <= left_aliases:
            return conjunct.right, conjunct.left
        return None

    # ------------------------------------------------------------------
    # aggregation / projection / ordering
    # ------------------------------------------------------------------

    def _finish_block(
        self,
        select: ast.Select,
        input_plan: _Plan,
        normalized: Dict[str, Any],
    ) -> _Plan:
        """Apply aggregation, HAVING, projection, DISTINCT, ORDER, TOP."""
        op = input_plan.op
        rows = input_plan.rows
        cost = input_plan.cost
        schema = op.schema
        items: List[ast.SelectItem] = normalized["items"]
        group_by: List[ast.Expression] = normalized["group_by"]
        having = normalized["having"]
        order_by: List[ast.OrderItem] = normalized["order_by"]

        needs_aggregation = bool(group_by) or any(
            contains_aggregate(item.expression) for item in items
        ) or (having is not None and contains_aggregate(having))

        mapping: Dict[ast.Expression, ast.ColumnRef] = {}
        if needs_aggregation:
            aggregates: List[ast.FuncCall] = []
            for expression in [item.expression for item in items] + (
                [having] if having is not None else []
            ) + [entry.expression for entry in order_by]:
                for call in collect_aggregates(expression):
                    if call not in aggregates:
                        aggregates.append(call)

            compiler = ExpressionCompiler(schema)
            group_makers = [compiler.compile(expression) for expression in group_by]
            specs: List[AggregateSpec] = []
            for call in aggregates:
                argument = None
                if call.args and not isinstance(call.args[0], ast.Star):
                    argument = compiler.compile(call.args[0])
                specs.append(AggregateSpec(call.name, argument, call.distinct))

            out_columns: List[Column] = []
            for position, expression in enumerate(group_by):
                if isinstance(expression, ast.ColumnRef):
                    source_column = schema[schema.resolve(expression.name, expression.qualifier)]
                    out_columns.append(source_column)
                    mapping[expression] = expression
                else:
                    name = f"_g{position}"
                    out_columns.append(Column(name, FLOAT))
                    mapping[expression] = ast.ColumnRef(name)
            for position, call in enumerate(aggregates):
                name = f"_a{position}"
                sql_type = INT if call.name == "COUNT" else FLOAT
                out_columns.append(Column(name, sql_type))
                mapping[call] = ast.ColumnRef(name)

            agg_schema = Schema(out_columns)
            op = AggregateOp(op, agg_schema, group_makers, specs)
            cost += self.cost.aggregate(rows)
            rows = max(1.0, rows * 0.1) if group_by else 1.0
            schema = agg_schema

            if having is not None:
                rewritten = substitute(having, mapping)
                predicate = ExpressionCompiler(schema).compile(rewritten)
                op = FilterOp(op, predicate)
                cost += self.cost.filter(rows)
                rows *= 0.5

        # ORDER BY before projection (can reference pre-projection columns).
        if order_by:
            compiler = ExpressionCompiler(schema)
            sort_makers: List[Tuple[Scalar, bool]] = []
            for entry in order_by:
                expression = substitute(entry.expression, mapping) if mapping else entry.expression
                sort_makers.append((compiler.compile(expression), entry.descending))
            op = SortOp(op, sort_makers)
            cost += self.cost.sort(rows)

        # Projection.
        compiler = ExpressionCompiler(schema)
        makers: List[Scalar] = []
        out_columns = []
        for position, item in enumerate(items):
            expression = substitute(item.expression, mapping) if mapping else item.expression
            makers.append(compiler.compile(expression))
            out_columns.append(
                Column(
                    self._output_name(item, position),
                    self._infer_type(item.expression, schema),
                )
            )
        out_schema = Schema(out_columns)
        op = ProjectOp(op, out_schema, makers)
        cost += self.cost.project(rows)

        if select.distinct:
            op = DistinctOp(op)
            cost += self.cost.distinct(rows)
            rows = max(1.0, rows * 0.8)

        if select.top is not None:
            count_maker = ExpressionCompiler(Schema(())).compile(select.top)
            op = TopOp(op, count_maker)
            if isinstance(select.top, ast.Literal):
                rows = min(rows, float(select.top.value))
        return _Plan(op, rows, cost).attach()

    def _output_name(self, item: ast.SelectItem, position: int) -> str:
        if item.alias:
            return item.alias
        if isinstance(item.expression, ast.ColumnRef):
            return item.expression.name
        if isinstance(item.expression, ast.FuncCall):
            return item.expression.name.lower()
        return f"col{position + 1}"

    def _infer_type(self, expression: ast.Expression, schema: Schema) -> SqlType:
        if isinstance(expression, ast.ColumnRef):
            index = schema.maybe_resolve(expression.name, expression.qualifier)
            if index is not None:
                return schema[index].sql_type
        if isinstance(expression, ast.Literal):
            if isinstance(expression.value, bool):
                return INT
            if isinstance(expression.value, int):
                return BIGINT
            if isinstance(expression.value, float):
                return FLOAT
            if isinstance(expression.value, str):
                return VARCHAR(len(expression.value) or 1)
        if isinstance(expression, ast.FuncCall) and expression.name == "COUNT":
            return BIGINT
        return FLOAT

    def _select_output_schema(self, select: ast.Select) -> Schema:
        """Derive a SELECT's output schema without planning it fully."""
        if select.from_clause is None:
            columns = [
                Column(self._output_name(item, position), FLOAT)
                for position, item in enumerate(select.items)
            ]
            return Schema(columns)
        sources, _, _ = self._collect_sources(select.from_clause)
        namespace = Namespace()
        for source in sources:
            namespace.add(source.alias, source.columns)
        columns = []
        position = 0
        for item in select.items:
            if isinstance(item.expression, ast.Star):
                star_aliases = (
                    [item.expression.qualifier.lower()]
                    if item.expression.qualifier
                    else namespace.aliases()
                )
                for alias in star_aliases:
                    source = next(s for s in sources if s.alias.lower() == alias)
                    for column in source.columns:
                        columns.append(
                            Column(column, source.column_types.get(column.lower(), FLOAT))
                        )
                        position += 1
                continue
            sql_type = FLOAT
            if isinstance(item.expression, ast.ColumnRef):
                for source in sources:
                    found = source.column_types.get(item.expression.name.lower())
                    if found is not None:
                        sql_type = found
                        break
            columns.append(Column(self._output_name(item, position), sql_type))
            position += 1
        return Schema(columns)

    # ------------------------------------------------------------------
    # block planning: local mix vs full pushdown, dynamic plans
    # ------------------------------------------------------------------

    def _plan_block(
        self,
        select: ast.Select,
        sources: List[_Source],
        namespace: Namespace,
        normalized: Dict[str, Any],
        use_views: bool,
    ) -> Tuple[_Plan, bool, bool, bool]:
        leaves, multi_conjuncts = self._build_leaves(sources, normalized)

        extreme = self._try_index_extreme(select, leaves, normalized)
        if extreme is not None:
            return extreme, False, False, False

        decisions: List[Tuple[_Leaf, _Plan, Optional[_DynamicLeaf], bool]] = []
        for leaf in leaves:
            plan, dynamic, used_view = self._decide_leaf(leaf, use_views)
            decisions.append((leaf, plan, dynamic, used_view))

        dynamics = [entry for entry in decisions if entry[2] is not None]
        pulled = dynamics[:MAX_PULLED_UP_GUARDS] if self.pullup_chooseplan else []
        inline = [entry for entry in dynamics if entry not in pulled]

        def build_with(forced: Dict[str, str]) -> _Plan:
            leaf_plans: List[Tuple[_Leaf, _Plan]] = []
            for leaf, plan, dynamic, _ in decisions:
                alias = leaf.source.alias.lower()
                if dynamic is not None and alias in forced:
                    if forced[alias] == "view":
                        leaf_plans.append((leaf, self._leaf_view_plan(leaf, dynamic.match)))
                    else:
                        leaf_plans.append((leaf, plan))
                elif dynamic is not None and (leaf, plan, dynamic, True) in inline:
                    view_plan = self._leaf_view_plan(leaf, dynamic.match)
                    leaf_plans.append((leaf, self._leaf_chooseplan(view_plan, plan, dynamic)))
                elif dynamic is not None:
                    # A pulled-up dynamic leaf without a forced assignment
                    # (only reachable when pull-up enumeration is skipped).
                    view_plan = self._leaf_view_plan(leaf, dynamic.match)
                    leaf_plans.append((leaf, self._leaf_chooseplan(view_plan, plan, dynamic)))
                else:
                    leaf_plans.append((leaf, plan))
            joined = self._plan_joins(leaf_plans, multi_conjuncts)
            return self._finish_block(select, joined, normalized)

        is_dynamic = bool(dynamics) and self.enable_dynamic_plans
        if pulled:
            local_plan = self._build_pulled_up(select, pulled, build_with, {})
        else:
            local_plan = build_with({})

        used_view = any(entry[3] for entry in decisions)
        uses_remote_local = any(
            isinstance(node, RemoteQueryOp) for node in local_plan.op.walk()
        )

        # Full-pushdown alternative. The backend-cost estimate charges the
        # backend for its own leaf accesses plus the same join/aggregate
        # superstructure the local plan pays above its leaves.
        chosen_leaf_cost = 0.0
        for leaf, plan, dynamic, _ in decisions:
            if dynamic is not None:
                view_plan = self._leaf_view_plan(leaf, dynamic.match)
                chosen_leaf_cost += (
                    dynamic.frequency * view_plan.cost
                    + (1 - dynamic.frequency) * plan.cost
                )
            else:
                chosen_leaf_cost += plan.cost
        pushdown = self._full_pushdown_plan(select, leaves, local_plan, chosen_leaf_cost)
        if pushdown is not None and not self.force_local_views:
            if pushdown.cost < local_plan.cost:
                return pushdown, True, False, False
        return local_plan, uses_remote_local, used_view, is_dynamic

    def _try_index_extreme(
        self,
        select: ast.Select,
        leaves: List[_Leaf],
        normalized: Dict[str, Any],
    ) -> Optional[_Plan]:
        """Rewrite ``SELECT MIN/MAX(col) FROM t`` into an index-end probe.

        Applies only to an unfiltered single-table query whose one output
        is a MIN or MAX over a locally stored, index-led column.
        """
        if len(leaves) != 1:
            return None
        leaf = leaves[0]
        if (
            leaf.source.kind != "table"
            or leaf.is_remote
            or leaf.conjuncts
            or select.where is not None
            or normalized["group_by"]
            or normalized["having"] is not None
            or normalized["order_by"]
            or select.top is not None
            or select.distinct
        ):
            return None
        items = normalized["items"]
        if len(items) != 1:
            return None
        expression = items[0].expression
        if not (
            isinstance(expression, ast.FuncCall)
            and expression.name in ("MIN", "MAX")
            and len(expression.args) == 1
            and isinstance(expression.args[0], ast.ColumnRef)
        ):
            return None
        column = expression.args[0].name
        storage = self.database.storage_table(leaf.source.table_name)
        index = storage.find_index([column])
        if index is None:
            return None
        name = items[0].alias or expression.name.lower()
        position = leaf.source.column_types.get(column.lower(), FLOAT)
        schema = Schema([Column(name, position)])
        op = IndexExtremeOp(schema, leaf.source.table_name, index.name, expression.name)
        return _Plan(op, 1.0, self.cost.index_seek_startup).attach()

    def _build_pulled_up(
        self,
        select: ast.Select,
        pulled: List[Tuple[_Leaf, _Plan, _DynamicLeaf, bool]],
        build_with,
        forced: Dict[str, str],
    ) -> _Plan:
        """Recursively hoist ChoosePlan above the whole block (Figure 4).

        Each pulled-up guarded leaf doubles the plan: a guard-true branch
        (leaf served by the cached view) and a guard-false branch (leaf
        read from its base location), each optimized independently.
        """
        if not pulled:
            return build_with(forced)
        (leaf, _, dynamic, _), rest = pulled[0], pulled[1:]
        alias = leaf.source.alias.lower()

        view_branch = self._build_pulled_up(
            select, rest, build_with, {**forced, alias: "view"}
        )
        base_branch = self._build_pulled_up(
            select, rest, build_with, {**forced, alias: "base"}
        )
        blank = ExpressionCompiler(Schema(()))
        not_guard = negate(dynamic.guard)
        guard_fn = blank.compile(dynamic.guard)
        not_guard_fn = blank.compile(not_guard)
        guarded_view = FilterOp(
            view_branch.op,
            startup_predicate=guard_fn,
            description="guard",
            startup_guard=dynamic.guard,
        )
        guarded_base = FilterOp(
            base_branch.op,
            startup_predicate=not_guard_fn,
            description="not guard",
            startup_guard=not_guard,
        )
        op = UnionAllOp([guarded_view, guarded_base], choose_plan=True)
        frequency = dynamic.frequency
        rows = frequency * view_branch.rows + (1 - frequency) * base_branch.rows
        cost = frequency * view_branch.cost + (1 - frequency) * base_branch.cost
        return _Plan(op, rows, cost).attach()

    def _full_pushdown_plan(
        self,
        select: ast.Select,
        leaves: List[_Leaf],
        local_plan: _Plan,
        chosen_leaf_cost: Optional[float] = None,
    ) -> Optional[_Plan]:
        """Ship the entire query block to the backend as one SQL text."""
        server = self.database.backend_server
        if server is None or self.assume_all_local:
            return None
        for leaf in leaves:
            if leaf.source.kind == "derived":
                if not self._remote_shippable(leaf.source.subselect):
                    return None
                continue
            if leaf.source.server is not None and leaf.source.server != server:
                return None
            if not self._exists_on_backend(leaf.source.table_name):
                return None

        stripped = replace(select, freshness=None)
        sql_text = format_statement(stripped)
        schema = local_plan.op.schema
        backend_plan = self._backend_estimate(stripped)
        if backend_plan is not None:
            rows = backend_plan.estimated_rows
            backend_cost = backend_plan.estimated_cost
        else:
            rows = local_plan.rows
            backend_cost = self._backend_block_cost(leaves, local_plan, chosen_leaf_cost)
        cost = self.cost.remote(backend_cost) + self.cost.data_transfer(
            rows, schema.row_width
        )
        op = RemoteQueryOp(schema, server, sql_text)
        return _Plan(op, rows, cost).attach()

    def _backend_estimate(self, select: ast.Select) -> Optional[PlannedStatement]:
        """Locally estimate what the query costs when run at the backend.

        Plans the statement with an ``assume_all_local`` optimizer against
        the shadowed catalog/statistics — the paper's local-optimization
        strategy for costing remote subexpressions without round trips.
        """
        if self.assume_all_local:
            return None
        cached = self._backend_estimator_cache
        if cached is None or cached[0] != self.database.version:
            estimator = Optimizer(
                self.database,
                cost_model=self.cost,
                enable_dynamic_plans=False,
                allow_mixed_results=False,
                assume_all_local=True,
            )
            self._backend_estimator_cache = (self.database.version, estimator)
        else:
            estimator = cached[1]
        try:
            return self._backend_estimator_cache[1].plan_select(select)
        except Exception:
            return None

    def _backend_block_cost(
        self,
        leaves: List[_Leaf],
        local_plan: _Plan,
        chosen_leaf_cost: Optional[float] = None,
    ) -> float:
        """Rough cost of executing the block wholly on the backend.

        Leaf accesses are costed with backend formulas (no transfer, no
        penalty); the join/aggregate superstructure above the leaves is
        the same work wherever it runs, so it is approximated by the local
        plan's cost minus the cost of the leaf plans it actually chose.
        """
        leaf_backend_cost = 0.0
        leaf_local_cost = 0.0
        for leaf in leaves:
            if leaf.source.kind == "derived":
                continue
            backend = self._estimate_backend_access(leaf, leaf.conjuncts)
            leaf_backend_cost += backend
            if chosen_leaf_cost is None:
                if leaf.is_remote:
                    estimator = leaf.estimator or self._estimator(None)
                    selectivity = (
                        estimator.selectivity(leaf.conjuncts) if leaf.conjuncts else 1.0
                    )
                    out_rows = leaf.base_rows * selectivity
                    leaf_local_cost += self.cost.remote(backend) + self.cost.data_transfer(
                        out_rows, leaf.schema.row_width
                    )
                else:
                    leaf_local_cost += backend
        if chosen_leaf_cost is not None:
            leaf_local_cost = chosen_leaf_cost
        superstructure = max(0.0, local_plan.cost - leaf_local_cost)
        return leaf_backend_cost + superstructure

    def _exists_on_backend(self, object_name: str) -> bool:
        """A shadowed/base object exists on the backend unless cached-only."""
        view = self.database.catalog.maybe_view(object_name)
        if view is not None and view.cached:
            return False
        return self.database.catalog.resolve_object(object_name) is not None

    def _remote_shippable(self, select: ast.Select) -> bool:
        if select.from_clause is None:
            return True
        sources, _, _ = self._collect_sources(select.from_clause)
        for source in sources:
            if source.kind == "derived":
                if not self._remote_shippable(source.subselect):
                    return False
            elif not self._exists_on_backend(source.table_name):
                return False
        return True

    # ------------------------------------------------------------------
    # syntactic fallback (outer joins)
    # ------------------------------------------------------------------

    def _plan_syntactic(
        self,
        select: ast.Select,
        sources: List[_Source],
        namespace: Namespace,
        normalized: Dict[str, Any],
        use_views: bool,
    ) -> Tuple[_Plan, bool, bool]:
        """Plan outer-join queries following the written join order.

        Predicates stay at the join/WHERE level (no pushdown) to preserve
        outer-join semantics; leaves use unconditional view matches only.
        """
        leaves, _ = self._build_leaves_syntactic(sources, normalized)
        leaf_by_alias = {leaf.source.alias.lower(): leaf for leaf in leaves}
        used_view = False

        def plan_ref(ref: ast.TableRef) -> Tuple[PhysicalOperator, float, float]:
            nonlocal used_view
            if isinstance(ref, ast.JoinRef):
                left_op, left_rows, left_cost = plan_ref(ref.left)
                right_op, right_rows, right_cost = plan_ref(ref.right)
                combined = left_op.schema.concat(right_op.schema)
                predicate = None
                if ref.condition is not None:
                    qualified = qualify_expression(ref.condition, namespace)
                    predicate = ExpressionCompiler(combined).compile(qualified)
                op = NestedLoopJoinOp(left_op, right_op, predicate, kind=ref.kind)
                rows = max(1.0, left_rows * max(1.0, right_rows) * (0.1 if predicate else 1.0))
                if ref.kind == "LEFT":
                    rows = max(rows, left_rows)
                cost = left_cost + right_cost + self.cost.nested_loop_join(left_rows, right_rows)
                return op, rows, cost
            alias = (
                ref.alias or ref.object_name if isinstance(ref, ast.TableName) else ref.alias
            )
            leaf = leaf_by_alias[alias.lower()]
            plan, _, leaf_used_view = self._decide_leaf_simple(leaf, use_views)
            used_view = used_view or leaf_used_view
            return plan.op, plan.rows, plan.cost

        op, rows, cost = plan_ref(select.from_clause)
        if select.where is not None:
            qualified = qualify_expression(select.where, namespace)
            predicate = ExpressionCompiler(op.schema).compile(qualified)
            op = FilterOp(op, predicate)
            cost += self.cost.filter(rows)
            rows *= 0.3
        finished = self._finish_block(select, _Plan(op, rows, cost), normalized)
        uses_remote = any(isinstance(node, RemoteQueryOp) for node in finished.op.walk())
        return finished, uses_remote, used_view

    def _build_leaves_syntactic(
        self, sources: List[_Source], normalized: Dict[str, Any]
    ) -> Tuple[List[_Leaf], List[ast.Expression]]:
        """Leaves for the syntactic path: no pushed conjuncts."""
        leaves, multi = self._build_leaves(sources, normalized)
        for leaf in leaves:
            leaf.conjuncts = []
        return leaves, multi

    def _decide_leaf_simple(
        self, leaf: _Leaf, use_views: bool
    ) -> Tuple[_Plan, None, bool]:
        base_plan = self._leaf_base_plan(leaf)
        if leaf.source.kind == "derived" or not use_views:
            return base_plan, None, False
        matches = self.view_matcher.matches(
            leaf.source.table_name, set(leaf.required), leaf.conjuncts
        )
        for match in matches:
            if match.unconditional:
                view_plan = self._leaf_view_plan(leaf, match)
                if self.force_local_views or view_plan.cost <= base_plan.cost:
                    return view_plan, None, True
                break
        return base_plan, None, False

    # ------------------------------------------------------------------
    # no-FROM SELECT
    # ------------------------------------------------------------------

    def _plan_values(self, select: ast.Select) -> _Plan:
        blank = ExpressionCompiler(Schema(()))
        makers = [blank.compile(item.expression) for item in select.items]
        columns = [
            Column(self._output_name(item, position), self._infer_type(item.expression, Schema(())))
            for position, item in enumerate(select.items)
        ]
        op: PhysicalOperator = ValuesOp(Schema(columns), [makers])
        if select.where is not None:
            predicate = blank.compile(select.where)
            op = FilterOp(op, predicate)
        return _Plan(op, 1.0, 1.0).attach()


@dataclass(frozen=True)
class _FakeIndexDef:
    """Stand-in IndexDef for a primary key without an explicit index row."""

    columns: Tuple[str, ...]
    name: str = "_pk"
    unique: bool = True
    clustered: bool = True


class _RelabelOp(PhysicalOperator):
    """Pass-through operator that re-labels its child's schema.

    Used to re-qualify a derived table's output columns under its alias
    without copying rows.
    """

    def __init__(self, child: PhysicalOperator, schema: Schema):
        super().__init__(schema, [child])

    def execute(self, ctx):
        return self.children[0].execute(ctx)

    def execute_batches(self, ctx):
        return self.children[0].execute_batches(ctx)

    def describe(self) -> str:
        return f"Relabel({', '.join(c.qualified_name for c in self.schema)})"
