"""MTCacheDeployment: a backend server, its replication plumbing, and
cache servers.

The deployment owns the pieces the paper's Figure 1 shows between the
backend and the mid-tier: the distributor (with its distribution
database), the log reader on the published database, the auto-managed
publication, and the per-subscription push agents. ``tick()`` advances
replication in virtual time; the cluster simulator calls it as simulated
time passes, and interactive use can call ``sync()`` to drain everything.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro.common.clock import SimulatedClock
from repro.engine import Database, Server
from repro.errors import ReplicationError
from repro.mtcache.cache_server import CacheServer
from repro.mtcache.scripts import generate_shadow_script
from repro.optimizer.cost import CostModel
from repro.replication.agent import DistributionAgent
from repro.replication.distributor import Distributor
from repro.replication.logreader import LogReader
from repro.replication.publication import Article, Publication
from repro.replication.subscription import Subscription
from repro.sql import ast
from repro.sql.formatter import format_expression


class MTCacheDeployment:
    """Backend + distributor + cache servers, sharing one virtual clock."""

    def __init__(
        self,
        backend: Server,
        database_name: str,
        logreader_interval: float = 0.25,
        agent_interval: float = 0.25,
        stats_refresh_interval: Optional[float] = None,
    ):
        """``stats_refresh_interval`` enables periodic re-shadowing of the
        backend's statistics onto the caches during ``tick()`` (the paper
        lists automatic catalog refresh as future work)."""
        self.backend = backend
        self.database_name = database_name
        self.clock: SimulatedClock = backend.clock
        self.logreader_interval = logreader_interval
        self.agent_interval = agent_interval
        self.stats_refresh_interval = stats_refresh_interval
        # The first periodic refresh happens one interval after creation
        # (caches adopt fresh statistics when provisioned anyway).
        self._last_stats_refresh = self.clock.now()

        self.distributor = Distributor(self.clock)
        self.publication = Publication(
            name=f"mtcache_pub_{database_name}", database=database_name
        )
        self.log_reader = LogReader(
            self.backend_database, self.publication, self.distributor
        )
        self._last_logreader_poll = float("-inf")
        self.cache_servers: List[CacheServer] = []
        self._article_counter = itertools.count(1)
        # Chaos hook (repro.faults): when attached, ``tick()`` fires its
        # virtual-time schedule. None costs one attribute check.
        self.fault_injector = None
        # Apply failures contained by tick() (watermark-backed retries).
        self.apply_failures_contained = 0

    @property
    def backend_database(self) -> Database:
        return self.backend.database(self.database_name)

    # -- cache server provisioning ---------------------------------------------

    def add_cache_server(
        self,
        name: str,
        cost_model: Optional[CostModel] = None,
        optimizer_options: Optional[dict] = None,
        shadow_tables: Optional[List[str]] = None,
    ) -> CacheServer:
        """Provision a cache server: shadow database + backend link.

        Follows the paper's setup steps: run the generated shadow script,
        adopt backend statistics, mark the shadow tables remote, register
        the backend as a linked server, and install the cached-view DDL
        hook and the freshness provider.

        ``shadow_tables`` implements the paper's §7 suggestion of shadowing
        only the catalog information relevant to the cached views: when
        given, only those tables (and their indexes) are shadowed; queries
        touching anything else fall back to whole-statement forwarding.
        """
        server = Server(
            name,
            clock=self.clock,
            cost_model=cost_model,
            optimizer_options=optimizer_options,
        )
        return self._provision(server, shadow_tables, link_name="backend")

    def attach_cache_server(
        self,
        server: Server,
        shadow_tables: Optional[List[str]] = None,
    ) -> CacheServer:
        """Attach this deployment's shadow database to an *existing* server.

        The paper (§3): "a cache server may store data from multiple
        backend servers. Each shadow database is associated with a single
        backend server but nothing prevents different databases on a cache
        server from being associated with different backend servers."
        Attaching several deployments to one server realizes exactly that.
        """
        if server.clock is not self.clock:
            raise ReplicationError(
                "attached cache servers must share the deployment's clock"
            )
        link_name = (
            "backend"
            if "backend" not in server.linked_servers
            else f"backend_{self.database_name}"
        )
        return self._provision(server, shadow_tables, link_name=link_name)

    def _provision(
        self,
        server: Server,
        shadow_tables: Optional[List[str]],
        link_name: str,
    ) -> CacheServer:
        # Keeps an attached server's existing default database intact
        # (create_database only claims the default when none is set).
        shadow = server.create_database(self.database_name, make_default=False)

        # Step 1: the auto-generated shadow script (tables, indexes, views).
        script = generate_shadow_script(
            self.backend_database.catalog, only_tables=shadow_tables
        )
        if script.strip():
            server.execute(script, database=self.database_name)

        # The augmentation step: adopt statistics, shadow permissions, and
        # mark every shadow table as backend-resident.
        backend_db = self.backend_database
        for table_name in shadow.catalog.tables:
            stats = backend_db.stats_for(table_name)
            if stats is not None:
                shadow.set_statistics(table_name, stats.copy())
        shadow.catalog.permissions = backend_db.catalog.permissions.copy()
        shadow.mark_remote(shadow.catalog.tables.keys(), backend_server=link_name)
        server.linked_servers.register(link_name, self.backend, self.database_name)
        # Cache-server plans mix local and remote subexpressions — exactly
        # where the DataLocation/ChoosePlan invariants can break — so
        # checked execution is always on here.
        server.checked_plans = True

        cache = CacheServer(server, self, self.database_name)
        cache.minimal_shadow = shadow_tables is not None
        shadow.cached_view_handler = cache._handle_cached_view
        shadow.staleness_provider = cache.staleness
        self.cache_servers.append(cache)
        return cache

    def refresh_catalog(self) -> Dict[str, int]:
        """Propagate backend DDL to every cache server's shadow catalog.

        The paper notes its prototype "do[es] not currently refresh the
        shadowed catalog information. This clearly needs to be done." This
        is that refresh: new tables, indexes and plain views appear on
        every (fully shadowed) cache; statistics are re-adopted. Returns
        counts of objects added.
        """
        backend_db = self.backend_database
        added = {"tables": 0, "indexes": 0, "views": 0}
        for cache in self.cache_servers:
            shadow = cache.database
            if getattr(cache, "minimal_shadow", False):
                continue  # minimal shadows stay minimal by design
            for key, table in backend_db.catalog.tables.items():
                if shadow.catalog.maybe_table(key) is None:
                    shadow.create_storage(table)
                    shadow.mark_remote([key], backend_server="backend")
                    added["tables"] += 1
            for key, index in backend_db.catalog.indexes.items():
                if key not in shadow.catalog.indexes:
                    shadow.catalog.add_index(index)
                    if shadow.has_storage(index.table):
                        storage = shadow.storage_table(index.table)
                        if index.name not in storage.indexes:
                            storage.create_index(index.name, index.columns, False)
                    added["indexes"] += 1
            for key, view in backend_db.catalog.views.items():
                if view.materialized:
                    continue
                if shadow.catalog.maybe_view(key) is None and shadow.catalog.maybe_table(key) is None:
                    shadow.catalog.add_view(view)
                    added["views"] += 1
            shadow.bump_version()
        self.refresh_statistics()
        return added

    def refresh_statistics(self) -> None:
        """Re-shadow backend statistics onto every cache server.

        The paper lists automatic refresh of shadowed catalog information
        as future work; this is the manual refresh path.
        """
        backend_db = self.backend_database
        for cache in self.cache_servers:
            for table_name in backend_db.catalog.tables:
                stats = backend_db.stats_for(table_name)
                if stats is not None:
                    cache.database.set_statistics(table_name, stats.copy())

    # -- replication management ---------------------------------------------------

    def ensure_article(
        self,
        view_name: str,
        source_table: str,
        columns: Tuple[str, ...],
        predicate: Optional[ast.Expression],
    ) -> Article:
        """Find a publication article matching a cached view, or create one.

        "When a cached view is created, we automatically create a
        replication subscription (and publication if needed)" — §4.
        """
        predicate_text = format_expression(predicate) if predicate is not None else ""
        wanted = (
            source_table.lower(),
            tuple(column.lower() for column in columns),
            predicate_text,
        )
        for article in self.publication.articles.values():
            have = (
                article.source_table.lower(),
                tuple(column.lower() for column in article.columns),
                format_expression(article.predicate) if article.predicate is not None else "",
            )
            if have == wanted:
                return article
        article = Article(
            name=f"art_{next(self._article_counter)}_{view_name}",
            source_table=source_table,
            columns=columns,
            predicate=predicate,
        )
        schema = self.backend_database.catalog.get_table(source_table).schema
        article.bind(schema)
        self.publication.add_article(article)
        return article

    def register_subscription(self, cache: CacheServer, subscription: Subscription) -> None:
        # New subscriptions start at the distribution database's current
        # frontier; earlier changes arrive via the initial snapshot.
        # Drain the log first so the snapshot and the stream do not overlap.
        self.log_reader.poll()
        subscription.last_sequence = self.distributor.distribution_db.last_sequence
        subscription.synced_through = self.clock.now()
        self.distributor.register_subscription(subscription)
        agent = DistributionAgent(subscription, self.distributor, self.agent_interval)
        self.distributor.register_agent(agent)
        cache.agents[subscription.target_table.lower()] = agent

    def snapshot(self, article: Article, subscription: Subscription) -> int:
        """Initial population: copy current matching rows to the subscriber."""
        source = self.backend_database.storage_table(article.source_table)
        target = subscription.storage()
        copied = 0
        for _, row in source.scan():
            if article.row_matches(row):
                target.insert(article.project(row))
                copied += 1
        subscription.last_applied_commit_ts = self.clock.now()
        return copied

    # -- faults & resilience ----------------------------------------------------

    def attach_fault_injector(self, injector) -> None:
        """Attach a :class:`repro.faults.FaultInjector`; its virtual-time
        chaos schedule fires from :meth:`tick`. The injector must share
        the deployment clock, or scheduled faults would fire at the wrong
        simulated moments."""
        if injector.clock is not self.clock:
            raise ReplicationError("fault injector must share the deployment clock")
        self.fault_injector = injector

    def failover_connection(
        self,
        cache: CacheServer,
        principal: str = "dbo",
        probe_interval: float = 1.0,
        failback_threshold: int = 2,
    ):
        """An application connection that survives the cache failing.

        Routes statements to ``cache`` while healthy and to the backend
        while not — the paper's availability story made concrete. Health
        means the cache's server is up and no link breaker is stuck open
        (:meth:`CacheServer.healthy`). ``failback_threshold`` consecutive
        healthy probes are required before traffic returns to the cache
        (failback hysteresis — a flapping cache stays failed over).
        """
        from repro.resilience.failover import FailoverRouter

        return FailoverRouter(
            primary=cache,
            fallback=self.backend,
            clock=self.clock,
            fallback_database=self.database_name,
            probe_interval=probe_interval,
            failback_threshold=failback_threshold,
            principal=principal,
            registry=cache.server.metrics if cache.server.observability else None,
            health=cache.healthy,
        )

    # -- driving replication ---------------------------------------------------

    def tick(self, advance: float = 0.0) -> Dict[str, int]:
        """Advance virtual time and run due replication work.

        Returns counters: transactions distributed and applied this tick.
        """
        if advance:
            self.clock.advance(advance)
        now = self.clock.now()
        if self.fault_injector is not None:
            self.fault_injector.tick(now)
            now = self.clock.now()  # injected latency may have advanced it
        distributed = 0
        if now - self._last_logreader_poll >= self.logreader_interval:
            self._last_logreader_poll = now
            distributed = self.log_reader.poll()
        applied = 0
        for agent in self.distributor.agents:
            try:
                applied += agent.run_due(now)
            except ReplicationError:
                # Contained: the subscription undid the failed transaction
                # and its watermark still points at the last fully-applied
                # one, so the next due poll re-delivers the unapplied
                # suffix. The failure stays visible via agent counters.
                self.apply_failures_contained += 1
        # Record sync points for freshness: a subscription that has
        # consumed the whole stream is current as of the reader's scan.
        frontier = self.distributor.distribution_db.last_sequence
        for subscription in self.distributor.subscriptions:
            if subscription.last_sequence >= frontier:
                subscription.synced_through = self.log_reader.last_scan_time
        self.distributor.cleanup()
        if (
            self.stats_refresh_interval is not None
            and now - self._last_stats_refresh >= self.stats_refresh_interval
        ):
            self._last_stats_refresh = now
            self.backend_database.analyze_all()
            self.refresh_statistics()
        return {"distributed": distributed, "applied": applied}

    def checkpoint_wal(self) -> int:
        """Truncate the backend WAL through the log reader's watermark.

        Everything up to the watermark has been copied into the
        distribution database (and the distributor purges *its* store once
        every subscription consumed it), so the log prefix is no longer
        needed for replication. Bounds log growth on long runs; returns
        the number of records discarded.
        """
        return self.backend_database.wal.truncate_through(self.log_reader.watermark_lsn)

    def sync(self) -> None:
        """Drain replication completely (tests and interactive use)."""
        self.log_reader.poll()
        self._last_logreader_poll = self.clock.now()
        for agent in self.distributor.agents:
            agent.poll(self.clock.now())
        frontier = self.distributor.distribution_db.last_sequence
        for subscription in self.distributor.subscriptions:
            if subscription.last_sequence >= frontier:
                subscription.synced_through = self.log_reader.last_scan_time
        self.distributor.cleanup()

    # -- measurements (experiments 2 & 3) -----------------------------------------

    def average_replication_latency(self) -> Optional[float]:
        samples: List[float] = []
        for subscription in self.distributor.subscriptions:
            for committed, applied in subscription.latency_samples:
                samples.append(applied - committed)
        if not samples:
            return None
        return sum(samples) / len(samples)

    def reset_replication_measurements(self) -> None:
        for subscription in self.distributor.subscriptions:
            subscription.reset_measurements()

    def set_log_reader_enabled(self, enabled: bool) -> None:
        """Experiment 2's switch: turning the log reader off removes all
        replication overhead from the backend."""
        self.log_reader.enabled = enabled
