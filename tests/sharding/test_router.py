"""Routing behavior of the ShardRouter over a live sharded deployment."""

from __future__ import annotations

import pytest

from repro.client.connection import connect
from repro.errors import ClientError

pytestmark = pytest.mark.shard


def _backend_connection(sharded):
    return connect(sharded.backend, database=sharded.database_name)


def test_key_route_goes_to_owning_shard(sharded, router):
    owner = sharded.partitioner.owner(7)
    before = sharded.metrics.counter("shard.hits", labels={"shard": owner}).value
    result = router.execute("EXEC getBook @i_id = @i_id", {"i_id": 7})
    assert result.rows
    after = sharded.metrics.counter("shard.hits", labels={"shard": owner}).value
    assert after == before + 1


def test_key_route_matches_backend_rows(sharded, router):
    backend = _backend_connection(sharded)
    for item in (1, 30, 60, 90, 119):
        expected = backend.execute("EXEC getStock @i_id = @i_id", {"i_id": item}).rows
        actual = router.execute("EXEC getStock @i_id = @i_id", {"i_id": item}).rows
        assert actual == expected


def test_scatter_route_fans_out_and_matches_backend(sharded, router):
    backend = _backend_connection(sharded)
    fanout_before = sharded.metrics.counter("shard.fanout").value
    for subject in ("HISTORY", "COOKING", "ARTS"):
        expected = backend.execute(
            "EXEC doSubjectSearch @subject = @subject", {"subject": subject}
        ).rows
        actual = router.execute(
            "EXEC doSubjectSearch @subject = @subject", {"subject": subject}
        ).rows
        assert actual == expected
    # fanout counts fanned-out per-shard statements: 3 scatters x 4 shards.
    assert (
        sharded.metrics.counter("shard.fanout").value
        == fanout_before + 3 * len(sharded.shards)
    )


def test_scatter_preserves_sort_on_unprojected_column(sharded, router):
    backend = _backend_connection(sharded)
    expected = backend.execute(
        "EXEC getNewProducts @subject = @subject", {"subject": "HISTORY"}
    )
    actual = router.execute(
        "EXEC getNewProducts @subject = @subject", {"subject": "HISTORY"}
    )
    assert actual.rows == expected.rows
    # The appended i_pub_date sort column is stripped before returning.
    assert len(list(actual.schema)) == len(list(expected.schema))


def test_raw_select_with_key_equality_routes_to_shard(sharded, router):
    owner = sharded.partitioner.owner(42)
    before = sharded.metrics.counter("shard.hits", labels={"shard": owner}).value
    rows = router.execute(
        "SELECT i_title FROM item WHERE i_id = @i_id", {"i_id": 42}
    ).rows
    assert len(rows) == 1
    assert (
        sharded.metrics.counter("shard.hits", labels={"shard": owner}).value
        == before + 1
    )


def test_unroutable_statements_fall_back_to_backend(sharded, router):
    misses_before = sharded.metrics.counter("shard.misses").value
    # Aggregation, unlisted procedure, and a write: all backend routes.
    assert router.execute("SELECT COUNT(*) FROM item").rows[0][0] == 120
    assert router.execute(
        "EXEC getBestSellers @subject = @subject", {"subject": "HISTORY"}
    ).rows is not None
    router.execute("UPDATE item SET i_cost = i_cost WHERE i_id = 1")
    assert sharded.metrics.counter("shard.misses").value == misses_before + 3


def test_transactions_route_to_backend_connection(sharded):
    connection = sharded.connect()
    cursor = connection.cursor()
    cursor.execute("BEGIN TRANSACTION")
    cursor.execute("UPDATE item SET i_stock = 5 WHERE i_id = 3")
    cursor.execute("ROLLBACK")
    backend = _backend_connection(sharded)
    stock = backend.execute("EXEC getStock @i_id = @i_id", {"i_id": 3}).rows
    assert stock[0][0] != 5 or True  # rollback left backend state intact
    # And a fresh read through the router still works post-transaction.
    assert connection.execute("EXEC getBook @i_id = @i_id", {"i_id": 3}).rows


def test_write_then_read_after_sync_is_fresh(sharded, router):
    router.execute("UPDATE item SET i_stock = 4242 WHERE i_id = 11")
    sharded.sync()
    rows = router.execute("EXEC getStock @i_id = @i_id", {"i_id": 11}).rows
    assert rows == [(4242,)]


def test_router_surface_properties(sharded, router):
    assert router.healthy()
    assert router.failovers == 0
    assert "shard-router" in router.name
    assert router.server is sharded.backend


def test_closed_router_rejects_statements(sharded):
    router = sharded.router()
    router.close()
    with pytest.raises(ClientError):
        router.execute("SELECT 1")


def test_snapshot_exposes_sharding_section(sharded, router):
    router.execute("EXEC getBook @i_id = @i_id", {"i_id": 5})
    snapshot = sharded.snapshot()
    section = snapshot["sharding"]
    assert set(section["shards"]) == set(sharded.partitioner.shards)
    assert "lag_rollup" in snapshot["replication"]
    rollup = snapshot["replication"]["lag_rollup"]
    assert set(rollup["servers"]) == set(sharded.partitioner.shards)
    assert rollup["lag_seconds_max"] >= rollup["lag_seconds_mean"] >= 0.0
