"""Seeded violation: slice mutation without draining replication first.

Expected finding: ``rebalance-drain`` — commands the log reader already
produced under the old slice predicates would be classified against the
new ones, delivering rows to shards that should never hold them.
"""


class BadDeployment:
    def add_shard(self, name):
        donor = self.partitioner.widest_shard()
        keep, give = self.partitioner.plan_split(donor)
        self.partitioner.add_shard(name, *give)
        cache = self._provision_shard(name)
        self.shards[name] = cache
        self._retarget(donor, *keep)
        self.partitioner.set_slice(donor, *keep)
        self.deployment.sync()
        return cache
