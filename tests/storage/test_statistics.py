"""Statistics and histogram tests (with hypothesis properties)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.statistics import ColumnStatistics, Histogram, TableStatistics


class TestHistogram:
    def test_empty(self):
        histogram = Histogram.build([])
        assert histogram.fraction_below(5, True) == 0.5  # no information

    def test_uniform_fractions(self):
        histogram = Histogram.build(list(range(100)), buckets=20)
        assert histogram.fraction_below(50, True) == pytest.approx(0.5, abs=0.1)
        assert histogram.fraction_below(-1, True) == 0.0
        assert histogram.fraction_below(1000, True) == 1.0

    def test_skewed_data(self):
        values = [1] * 90 + list(range(2, 12))
        histogram = Histogram.build(values, buckets=10)
        assert histogram.fraction_below(1, True) >= 0.8

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=500))
    def test_property_monotone(self, values):
        histogram = Histogram.build(values, buckets=10)
        fractions = [histogram.fraction_below(v, True) for v in range(-110, 111, 10)]
        assert all(a <= b for a, b in zip(fractions, fractions[1:]))
        assert all(0.0 <= f <= 1.0 for f in fractions)


class TestColumnStatistics:
    def test_basics(self):
        stats = ColumnStatistics.build("c", [1, 2, 2, 3, None])
        assert stats.row_count == 5
        assert stats.null_count == 1
        assert stats.distinct_count == 3
        assert stats.min_value == 1
        assert stats.max_value == 3

    def test_equality_selectivity(self):
        stats = ColumnStatistics.build("c", list(range(100)))
        assert stats.equality_selectivity() == pytest.approx(0.01)

    def test_equality_selectivity_accounts_for_nulls(self):
        stats = ColumnStatistics.build("c", [1, 2] + [None] * 2)
        assert stats.equality_selectivity() == pytest.approx(0.25)

    def test_range_selectivity_half(self):
        stats = ColumnStatistics.build("c", list(range(100)))
        assert stats.range_selectivity("<=", 49) == pytest.approx(0.5, abs=0.1)
        assert stats.range_selectivity(">", 49) == pytest.approx(0.5, abs=0.1)

    def test_range_selectivity_extremes(self):
        stats = ColumnStatistics.build("c", list(range(100)))
        assert stats.range_selectivity("<", -5) == 0.0
        assert stats.range_selectivity("<=", 200) == 1.0

    def test_all_null_column(self):
        stats = ColumnStatistics.build("c", [None, None])
        assert stats.null_fraction == 1.0
        assert stats.min_value is None

    def test_copy_is_detached(self):
        stats = ColumnStatistics.build("c", [1, 2, 3])
        clone = stats.copy()
        clone.distinct_count = 99
        assert stats.distinct_count == 3

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.one_of(st.none(), st.integers(-50, 50)), max_size=300))
    def test_property_selectivities_bounded(self, values):
        stats = ColumnStatistics.build("c", values)
        assert 0.0 <= stats.equality_selectivity() <= 1.0
        for op in ("<", "<=", ">", ">="):
            assert 0.0 <= stats.range_selectivity(op, 0) <= 1.0


class TestTableStatistics:
    def test_build_from_rows(self):
        rows = [(i, f"n{i%3}") for i in range(30)]
        stats = TableStatistics.build("t", ["id", "name"], rows)
        assert stats.row_count == 30
        assert stats.column("id").distinct_count == 30
        assert stats.column("NAME").distinct_count == 3

    def test_copy_renames(self):
        stats = TableStatistics.build("t", ["id"], [(1,)])
        clone = stats.copy("shadow_t")
        assert clone.table_name == "shadow_t"
        assert clone.column("id") is not stats.column("id")

    def test_missing_column(self):
        stats = TableStatistics.build("t", ["id"], [(1,)])
        assert stats.column("nope") is None
