"""Per-link circuit breakers.

A breaker sits in front of a :class:`~repro.distributed.linked_server.ServerLink`
and converts a persistently-down target from retry storms (every call
burning a full backoff schedule) into instant
:class:`~repro.errors.CircuitOpenError` failures — the signal the
failover router reroutes on. State machine:

* **closed** — calls flow; consecutive failures are counted.
* **open** — after ``failure_threshold`` consecutive failures; calls are
  rejected without touching the target until ``reset_timeout`` of
  virtual time elapses.
* **half-open** — exactly *one* probe call is allowed through; success
  closes the breaker, failure re-opens it (and restarts the timeout).

The half-open transition is thread-safe: when the reset timeout elapses,
concurrent callers race for the single probe slot under the breaker's
mutex — one wins and carries the probe, the losers are rejected with
``CircuitOpenError`` exactly as if the breaker were still open. Without
that gate every waiting thread would stampede the recovering target at
once, which is the failure mode half-open exists to prevent.

The current state is exported as the ``resilience.breaker_state`` gauge
(0 = closed, 1 = half-open, 2 = open) labelled by link name.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.common.locks import mutex
from repro.common.witness import LEVEL_LEAF, annotate_lock


class CircuitBreaker:
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    _GAUGE_VALUE = {CLOSED: 0.0, HALF_OPEN: 1.0, OPEN: 2.0}

    def __init__(
        self,
        clock: Any,
        failure_threshold: int = 5,
        reset_timeout: float = 2.0,
        name: str = "",
        registry: Optional[Any] = None,
    ):
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.name = name
        self.state = self.CLOSED
        self.failures = 0
        self.opened_at: Optional[float] = None
        self.opens = 0
        self.rejections = 0
        # Guards state transitions (allow/record_*): the breaker is
        # consulted from link calls made *while engine locks are held*
        # (a cache's plan executing a RemoteQueryOp holds its latch and
        # table locks), so the lock is annotated at leaf level — strictly
        # below the engine hierarchy, never held across the remote call.
        self._mutex = mutex()
        if hasattr(self._mutex, "_witness_class"):
            annotate_lock(self._mutex, "resilience.breaker", LEVEL_LEAF)
        self._probe_in_flight = False
        self._registry = registry
        self._gauge = None
        if registry is not None:
            self._gauge = registry.gauge(
                "resilience.breaker_state", labels={"link": name or "?"}
            )
            self._gauge.set(0.0)

    def _set_state(self, state: str) -> None:
        self.state = state
        if self._gauge is not None:
            self._gauge.set(self._GAUGE_VALUE[state])

    def ready(self, now: Optional[float] = None) -> bool:
        """True when a call would be allowed to flow (or probe).

        Read-only: unlike :meth:`allow` it never transitions state, so
        health checks (the failover router's probe) can consult it
        without consuming the half-open probe slot.
        """
        if self.state != self.OPEN:
            return True
        if now is None:
            now = self.clock.now()
        assert self.opened_at is not None
        return now - self.opened_at >= self.reset_timeout

    def allow(self) -> bool:
        """Gate one call. False means reject with ``CircuitOpenError``.

        Thread-safe: in the open->half-open transition exactly one
        caller wins the probe slot; everyone else is rejected until the
        probe reports back through :meth:`record_success` /
        :meth:`record_failure`.
        """
        with self._mutex:
            if self.state == self.CLOSED:
                return True
            if self.state == self.OPEN:
                if not self.ready():
                    self.rejections += 1
                    return False
                self._set_state(self.HALF_OPEN)
                self._probe_in_flight = True
                return True
            # HALF_OPEN: the single probe slot is taken; reject until
            # its outcome is recorded.
            if self._probe_in_flight:
                self.rejections += 1
                return False
            self._probe_in_flight = True
            return True

    def record_success(self) -> None:
        with self._mutex:
            if self.state != self.CLOSED:
                self._set_state(self.CLOSED)
            self._probe_in_flight = False
            self.failures = 0

    def record_failure(self) -> None:
        with self._mutex:
            self.failures += 1
            self._probe_in_flight = False
            if self.state == self.HALF_OPEN or self.failures >= self.failure_threshold:
                self._trip()

    def _trip(self) -> None:
        # Caller holds the mutex.
        if self.state != self.OPEN:
            self.opens += 1
            if self._registry is not None:
                self._registry.counter(
                    "resilience.breaker_opens", labels={"link": self.name or "?"}
                ).inc()
        self._set_state(self.OPEN)
        self.opened_at = self.clock.now()

    def reset(self) -> None:
        """Force-close (administrative reset; tests)."""
        with self._mutex:
            self.failures = 0
            self.opened_at = None
            self._probe_in_flight = False
            self._set_state(self.CLOSED)

    def __repr__(self) -> str:
        return f"<CircuitBreaker {self.name!r} {self.state} failures={self.failures}>"
