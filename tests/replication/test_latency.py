"""Replication latency in virtual time (Experiment 3 mechanics)."""

import pytest

from repro import MTCacheDeployment

from tests.conftest import make_shop_backend


@pytest.fixture
def env():
    backend = make_shop_backend(customers=50, orders=100)
    deployment = MTCacheDeployment(
        backend, "shop", logreader_interval=0.25, agent_interval=0.25
    )
    cache = deployment.add_cache_server("cache1")
    cache.create_cached_view(
        "CREATE CACHED VIEW vcust AS SELECT cid, cname FROM customer WHERE cid <= 30"
    )
    return backend, deployment, cache


def test_latency_bounded_by_polling_intervals(env):
    backend, deployment, cache = env
    for step in range(20):
        deployment.clock.advance(0.1)
        if step % 4 == 0:
            cid = (step % 20) + 1
            backend.execute(
                f"UPDATE customer SET cname = 'u{step}' WHERE cid = {cid}",
                database="shop",
            )
        deployment.tick()
    latency = deployment.average_replication_latency()
    assert latency is not None
    # Commit -> reader poll -> agent poll: at most ~2 poll intervals + slack.
    assert 0.0 <= latency <= 0.75


def test_slower_agents_mean_higher_latency(env):
    backend, deployment, cache = env
    fast = _measure(deployment, backend, agent_interval=0.25)
    deployment.reset_replication_measurements()
    slow = _measure(deployment, backend, agent_interval=2.0)
    assert slow > fast


def _measure(deployment, backend, agent_interval):
    for agent in deployment.distributor.agents:
        agent.poll_interval = agent_interval
    deployment.reset_replication_measurements()
    for step in range(40):
        deployment.clock.advance(0.1)
        if step % 5 == 0:
            cid = (step % 25) + 1
            backend.execute(
                f"UPDATE customer SET cname = 'v{step}' WHERE cid = {cid}",
                database="shop",
            )
        deployment.tick()
    deployment.clock.advance(3.0)
    deployment.tick()
    return deployment.average_replication_latency() or 0.0


def test_staleness_tracks_sync(env):
    backend, deployment, cache = env
    deployment.clock.advance(1.0)
    deployment.sync()
    assert cache.staleness() <= 1.0
    backend.execute("UPDATE customer SET cname = 'x' WHERE cid = 1", database="shop")
    deployment.clock.advance(5.0)
    # Without a sync, the cache has no idea about the last 5 seconds.
    assert cache.staleness() >= 4.0
    deployment.sync()
    assert cache.staleness() < 1.0


def test_freshness_clause_routes_to_backend_when_stale(env):
    backend, deployment, cache = env
    deployment.sync()
    backend.execute("UPDATE customer SET cname = 'fresh' WHERE cid = 1", database="shop")
    deployment.clock.advance(100.0)  # now very stale, no sync

    stale_ok = cache.execute(
        "SELECT cname FROM customer WHERE cid <= 5 WITH FRESHNESS 1000 SECONDS"
    )
    # Freshness bound satisfied by the stale cache: local (old) data allowed.
    assert ("cust1",) in stale_ok.rows

    must_be_fresh = cache.execute(
        "SELECT cname FROM customer WHERE cid <= 5 WITH FRESHNESS 10 SECONDS"
    )
    # Bound violated: the query must fall through to the backend.
    assert ("fresh",) in must_be_fresh.rows
