"""Catalog: metadata for tables, views, indexes, procedures, permissions."""

from repro.catalog.objects import (
    IndexDef,
    ProcedureDef,
    TableDef,
    ViewDef,
)
from repro.catalog.catalog import Catalog
from repro.catalog.permissions import PermissionSet

__all__ = [
    "Catalog",
    "IndexDef",
    "ProcedureDef",
    "TableDef",
    "ViewDef",
    "PermissionSet",
]
