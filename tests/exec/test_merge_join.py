"""Merge join operator and planner selection tests."""


from repro.common.schema import Column, Schema
from repro.common.types import INT, VARCHAR
from repro.exec.context import ExecutionContext
from repro.exec.expressions import ExpressionCompiler
from repro.exec.operators import MergeJoinOp, ValuesOp
from repro.sql import parse_expression


def values_op(qualifier, pairs):
    schema = Schema(
        [Column("k", INT, qualifier=qualifier), Column("v", VARCHAR(10), qualifier=qualifier)]
    )
    blank = ExpressionCompiler(Schema(()))
    makers = [
        [
            blank.compile(parse_expression(str(k))),
            blank.compile(parse_expression(f"'{v}'")),
        ]
        for k, v in pairs
    ]
    return ValuesOp(schema, makers)


def run_merge(left_pairs, right_pairs, residual_text=None):
    left = values_op("l", left_pairs)
    right = values_op("r", right_pairs)
    left_key = ExpressionCompiler(left.schema).compile(parse_expression("l.k"))
    right_key = ExpressionCompiler(right.schema).compile(parse_expression("r.k"))
    residual = None
    if residual_text:
        residual = ExpressionCompiler(left.schema.concat(right.schema)).compile(
            parse_expression(residual_text)
        )
    op = MergeJoinOp(left, right, [left_key], [right_key], residual)
    return list(op.execute(ExecutionContext()))


class TestMergeJoinOperator:
    def test_basic_match(self):
        rows = run_merge([(1, "a"), (2, "b")], [(2, "x"), (3, "y")])
        assert rows == [(2, "b", 2, "x")]

    def test_unsorted_inputs_are_sorted_internally(self):
        rows = run_merge([(3, "c"), (1, "a"), (2, "b")], [(2, "x"), (1, "w")])
        keys = [row[0] for row in rows]
        assert keys == [1, 2]

    def test_duplicate_groups_cross_product(self):
        rows = run_merge([(1, "a"), (1, "b")], [(1, "x"), (1, "y"), (1, "z")])
        assert len(rows) == 6

    def test_no_matches(self):
        assert run_merge([(1, "a")], [(2, "x")]) == []

    def test_empty_inputs(self):
        assert run_merge([], [(1, "x")]) == []
        assert run_merge([(1, "a")], []) == []

    def test_residual_filters(self):
        rows = run_merge(
            [(1, "a"), (2, "b")],
            [(1, "a"), (2, "x")],
            residual_text="l.v = r.v",
        )
        assert rows == [(1, "a", 1, "a")]

    def test_null_keys_never_join(self):
        left = values_op("l", [(1, "a")])
        # Build a right side with a NULL key.
        schema = Schema([Column("k", INT, qualifier="r"), Column("v", VARCHAR(10), qualifier="r")])
        blank = ExpressionCompiler(Schema(()))
        right = ValuesOp(
            schema,
            [[blank.compile(parse_expression("NULL")), blank.compile(parse_expression("'x'"))]],
        )
        left_key = ExpressionCompiler(left.schema).compile(parse_expression("l.k"))
        right_key = ExpressionCompiler(right.schema).compile(parse_expression("r.k"))
        op = MergeJoinOp(left, right, [left_key], [right_key])
        assert list(op.execute(ExecutionContext())) == []


class TestPlannerSelection:
    def test_merge_join_chosen_when_hash_is_expensive(self):
        """With a punishing hash cost the planner must switch to merge and
        still return identical results."""
        from repro import Server
        from repro.optimizer.cost import CostModel
        from repro.exec.operators import HashJoinOp

        def build(cost_model):
            server = Server("s", cost_model=cost_model)
            server.create_database("db")
            server.execute("CREATE TABLE a (id INT PRIMARY KEY, tag VARCHAR(10))")
            server.execute("CREATE TABLE b (bid INT PRIMARY KEY, tag VARCHAR(10))")
            database = server.database("db")
            database.bulk_load("a", [(i, f"t{i % 7}") for i in range(1, 101)])
            database.bulk_load("b", [(i, f"t{i % 7}") for i in range(1, 101)])
            database.analyze_all()
            return server

        sql = "SELECT a.id, b.bid FROM a JOIN b ON a.tag = b.tag ORDER BY a.id, b.bid"

        normal = build(CostModel())
        expensive_hash = build(CostModel(hash_join_row=1000.0))

        from repro.sql import parse

        normal_plan = normal.plan_select(parse(sql), normal.database("db"))
        merge_plan = expensive_hash.plan_select(parse(sql), expensive_hash.database("db"))
        assert any(isinstance(n, HashJoinOp) for n in normal_plan.root.walk())
        assert any(isinstance(n, MergeJoinOp) for n in merge_plan.root.walk())

        assert (
            normal.execute(sql).rows == expensive_hash.execute(sql).rows
        )
        assert len(normal.execute(sql).rows) > 0
