"""UNION ALL statement tests."""

import pytest

from repro import Server
from repro.errors import ExecutionError
from repro.sql import parse
from repro.sql.formatter import format_statement


@pytest.fixture
def server():
    s = Server("s")
    s.create_database("db")
    s.execute("CREATE TABLE a (id INT PRIMARY KEY, v VARCHAR(10))")
    s.execute("CREATE TABLE b (id INT PRIMARY KEY, v VARCHAR(10))")
    s.execute("INSERT INTO a VALUES (1, 'a1'), (2, 'a2')")
    s.execute("INSERT INTO b VALUES (1, 'b1')")
    return s


def test_parse_and_format_roundtrip():
    statement = parse("SELECT id FROM a UNION ALL SELECT id FROM b UNION ALL SELECT 1")
    text = format_statement(statement)
    assert text.count("UNION ALL") == 2
    assert format_statement(parse(text)) == text


def test_union_all_concatenates(server):
    result = server.execute("SELECT v FROM a UNION ALL SELECT v FROM b")
    assert sorted(row[0] for row in result.rows) == ["a1", "a2", "b1"]


def test_union_all_keeps_duplicates(server):
    result = server.execute("SELECT v FROM a UNION ALL SELECT v FROM a")
    assert len(result.rows) == 4


def test_union_all_with_params(server):
    result = server.execute(
        "SELECT v FROM a WHERE id = @x UNION ALL SELECT v FROM b WHERE id = @x",
        params={"x": 1},
    )
    assert sorted(row[0] for row in result.rows) == ["a1", "b1"]


def test_union_arity_mismatch_rejected(server):
    with pytest.raises(ExecutionError, match="same number of columns"):
        server.execute("SELECT id, v FROM a UNION ALL SELECT id FROM b")


def test_union_type_mismatch_rejected(server):
    """Same arity is not enough: branch columns must be type-compatible."""
    with pytest.raises(ExecutionError, match="not type-compatible at column 1"):
        server.execute("SELECT id FROM a UNION ALL SELECT v FROM b")


def test_union_compatible_types_widen(server):
    # INT unions with INT across tables; VARCHAR with VARCHAR.
    result = server.execute("SELECT id, v FROM a UNION ALL SELECT id, v FROM b")
    assert len(result.rows) == 3


def test_union_routes_branches_independently():
    from repro import MTCacheDeployment
    from tests.conftest import make_shop_backend

    backend = make_shop_backend(customers=50, orders=50)
    deployment = MTCacheDeployment(backend, "shop")
    cache = deployment.add_cache_server("u_cache")
    cache.create_cached_view(
        "CREATE CACHED VIEW uc AS SELECT cid, cname FROM customer WHERE cid <= 25"
    )
    result = cache.execute(
        "SELECT cname FROM customer WHERE cid = 3 "
        "UNION ALL SELECT cname FROM customer WHERE cid = 40"
    )
    assert sorted(row[0] for row in result.rows) == ["cust3", "cust40"]
