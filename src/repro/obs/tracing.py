"""Structured trace spans with parent/child linkage.

One TPC-W interaction executed through a cache server fans out across
tiers: parse and optimize on the mid tier, local execution against cached
views, shipped remote SQL on the backend, forwarded DML inside a 2PC.
Tracing stitches those pieces back into one tree.

The design mirrors OpenTelemetry's span model, cut down to what this
codebase needs:

* A :class:`Span` carries ids (trace/span/parent), a service name (which
  server produced it), wall-clock bounds, a status and free-form
  attributes.
* The *active* span lives in a :mod:`contextvars` context variable. A new
  span adopts the active span as parent — and because linked-server calls
  are in-process method calls, span context propagates across the
  ``ServerLink`` boundary for free: the backend's spans become children of
  the mid-tier span that shipped the SQL, with no wire protocol needed.
* Finished spans land in a bounded ring-buffer :class:`SpanCollector`
  (default: one process-global collector shared by every tracer, so a
  cross-server trace can be exported in one piece).

Tracers can be disabled per server (``tracer.enabled = False``); a
disabled tracer hands out a shared no-op context manager, keeping the
instrumentation cost of the off state to one attribute check.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterable, List, Optional

_ids = itertools.count(1)

#: The currently active span in this execution context (None at top level).
_ACTIVE: ContextVar[Optional["Span"]] = ContextVar("repro_obs_active_span", default=None)


def active_span() -> Optional["Span"]:
    """The innermost open span in the current context, if any."""
    return _ACTIVE.get()


class Span:
    """One timed operation within a trace.

    A plain ``__slots__`` class rather than a dataclass: spans are created
    on the statement hot path, so construction cost matters.
    """

    __slots__ = (
        "name",
        "service",
        "trace_id",
        "span_id",
        "parent_id",
        "start",
        "end",
        "status",
        "attributes",
    )

    def __init__(
        self,
        name: str,
        service: str,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        start: float,
        end: Optional[float] = None,
        status: str = "ok",
        attributes: Optional[Dict[str, Any]] = None,
    ):
        self.name = name
        self.service = service
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end = end
        self.status = status
        self.attributes = attributes if attributes is not None else {}

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        # Long string attributes (full SQL text) are trimmed at export
        # time so recording them stays free on the hot path.
        attributes = {
            key: _trim(value) if isinstance(value, str) else value
            for key, value in self.attributes.items()
        }
        return {
            "name": self.name,
            "service": self.service,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "duration_seconds": self.duration,
            "status": self.status,
            "attributes": attributes,
        }

    def __repr__(self) -> str:
        return (
            f"<Span {self.service}/{self.name} trace={self.trace_id} "
            f"id={self.span_id} parent={self.parent_id} {self.status}>"
        )


class SpanCollector:
    """A bounded ring buffer of finished spans (the exporter)."""

    def __init__(self, capacity: int = 4096):
        self._spans: "deque[Span]" = deque(maxlen=capacity)

    def record(self, span: Span) -> None:
        self._spans.append(span)

    def spans(self) -> List[Span]:
        return list(self._spans)

    def trace(self, trace_id: int) -> List[Span]:
        """All finished spans of one trace, in span-id (creation) order."""
        return sorted(
            (span for span in self._spans if span.trace_id == trace_id),
            key=lambda span: span.span_id,
        )

    def trace_ids(self) -> List[int]:
        seen: Dict[int, None] = {}
        for span in self._spans:
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def latest_trace_id(self) -> Optional[int]:
        if not self._spans:
            return None
        return self._spans[-1].trace_id

    def export(self, trace_id: Optional[int] = None) -> List[Dict[str, Any]]:
        """JSON-ready dicts for one trace (or the whole buffer)."""
        spans = self.trace(trace_id) if trace_id is not None else self.spans()
        return [span.to_dict() for span in spans]

    def clear(self) -> None:
        self._spans.clear()

    def __len__(self) -> int:
        return len(self._spans)


_GLOBAL_COLLECTOR = SpanCollector()


def global_collector() -> SpanCollector:
    """The shared collector every tracer exports to by default."""
    return _GLOBAL_COLLECTOR


class _NullSpanContext:
    """Shared no-op context manager handed out by disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpanContext()


class _SpanContext:
    """Context manager that opens a span on enter, finishes it on exit."""

    __slots__ = ("_tracer", "_name", "_attributes", "_token", "span")

    def __init__(self, tracer: "Tracer", name: str, attributes: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._token = None
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        parent = _ACTIVE.get()
        span_id = next(_ids)
        span = Span(
            name=self._name,
            service=self._tracer.service,
            trace_id=parent.trace_id if parent is not None else span_id,
            span_id=span_id,
            parent_id=parent.span_id if parent is not None else None,
            start=time.perf_counter(),
            attributes=self._attributes,
        )
        self.span = span
        self._token = _ACTIVE.set(span)
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self.span
        span.end = time.perf_counter()
        if exc_type is not None:
            span.status = "error"
            span.attributes.setdefault("error", repr(exc))
        _ACTIVE.reset(self._token)
        self._tracer.collector.record(span)
        return False


@contextmanager
def propagated_trace(trace_id: int, span_id: int, service: str = "remote"):
    """Adopt a trace context received from another process.

    The wire protocol ships ``(trace_id, span_id)`` of the client's active
    span in each request frame; the server side wraps request handling in
    this context manager so its spans become children of the client span —
    the cross-process analogue of the free in-process propagation the
    module docstring describes. The synthetic parent is never recorded
    (the client already recorded the real span); it only exists to seed
    ``_ACTIVE`` for :class:`_SpanContext` to parent under.
    """
    parent = Span(
        name="(remote-parent)",
        service=service,
        trace_id=trace_id,
        span_id=span_id,
        parent_id=None,
        start=time.perf_counter(),
    )
    token = _ACTIVE.set(parent)
    try:
        yield parent
    finally:
        _ACTIVE.reset(token)


class Tracer:
    """Creates spans on behalf of one service (one server, usually)."""

    def __init__(
        self,
        service: str,
        collector: Optional[SpanCollector] = None,
        enabled: bool = True,
    ):
        self.service = service
        self.collector = collector if collector is not None else _GLOBAL_COLLECTOR
        self.enabled = enabled

    def span(self, name: str, **attributes: Any):
        """Open a child span of whatever span is currently active."""
        if not self.enabled:
            return NULL_SPAN
        return _SpanContext(self, name, attributes)


def _trim(text: str, limit: int = 120) -> str:
    """Collapse whitespace and truncate (for SQL text in exports)."""
    collapsed = " ".join(text.split())
    if len(collapsed) <= limit:
        return collapsed
    return collapsed[: limit - 3] + "..."


def format_trace(spans: Iterable[Span]) -> str:
    """Render a trace as an indented tree (diagnostics and tests)."""
    spans = list(spans)
    by_parent: Dict[Optional[int], List[Span]] = {}
    ids = {span.span_id for span in spans}
    for span in spans:
        parent = span.parent_id if span.parent_id in ids else None
        by_parent.setdefault(parent, []).append(span)

    lines: List[str] = []

    def render(parent: Optional[int], indent: int) -> None:
        for span in sorted(by_parent.get(parent, []), key=lambda s: s.span_id):
            marker = "" if span.status == "ok" else f" !{span.status}"
            lines.append(
                "  " * indent
                + f"{span.service}/{span.name} ({span.duration * 1e3:.3f} ms){marker}"
            )
            render(span.span_id, indent + 1)

    render(None, 0)
    return "\n".join(lines)
