"""Seeded violation: a boundary move committed as two set_slice calls.

Expected finding: ``boundary-move-window`` — between the two calls a
concurrent router observes a torn boundary (keys owned by both shards
or neither, and two partitioner versions for one logical change).
"""


class BadDeployment:
    def move_boundary(self, left, right, new_cut):
        left_low, left_high = self.partitioner.slice(left)
        right_low, right_high = self.partitioner.slice(right)
        self.deployment.sync()
        self._retarget(left, left_low, new_cut)
        self._retarget(right, new_cut + 1, right_high)
        self.partitioner.set_slice(left, left_low, new_cut)
        self.partitioner.set_slice(right, new_cut + 1, right_high)
