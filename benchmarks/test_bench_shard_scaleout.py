"""PR 7 — partitioned cache tier scale-out vs the single-cache baseline.

Two gates for the sharded tier:

* **Modeled capacity** (DES, the Figure 6 procedure at sizes the paper
  never reached): saturated read-dominated WIPS at 8 shards must be at
  least 2x one cache server. The flat tier replicates every article to
  every cache, so each server pays the full apply cost; the sharded tier
  divides it, and throughput keeps the linear shape out to 8+.
* **Measured locality** (real executions): single-key reads through the
  ShardRouter must all be served by shards — zero extra statements reach
  the backend — and return row-for-row what the backend returns. That
  per-statement independence is the mechanism the modeled scale-out
  rests on, so the bench measures it directly rather than assuming it.
"""

from __future__ import annotations

import time

from benchmarks.conftest import emit
from repro.client.connection import connect
from repro.sharding import ShardedDeployment
from repro.simulation import DESConfig, simulate_cluster
from repro.tpcw import TPCWConfig, build_backend, enable_caching

#: Real-execution scale (smaller than BENCH_CONFIG: eight shards to build).
SHARD_CONFIG = dict(num_items=200, num_ebs=8, seed=61)
READ_KEYS = tuple(range(1, 201, 2))


def test_bench_shard_scaleout_modeled_throughput(cal_cached, benchmark, capsys, bench_recorder):
    points = []
    for servers in (1, 2, 4, 8):
        result = simulate_cluster(
            cal_cached,
            DESConfig(
                users=300 * servers,
                mix_name="Browsing",
                servers=servers,
                duration=40,
                warmup=8,
                sharded=servers > 1,
            ),
        )
        points.append((servers, result))

    lines = [f"{'shards':>8s} {'WIPS':>9s} {'web util':>9s} {'backend':>9s}"]
    for servers, result in points:
        lines.append(
            f"{servers:8d} {result.wips:9.1f} {result.web_utilization:9.1%} "
            f"{result.backend_utilization:9.1%}"
        )
    wips = {servers: result.wips for servers, result in points}
    speedup = wips[8] / wips[1]
    lines.append(f"8-shard speedup over 1 cache: {speedup:.2f}x  (gate: >= 2.0x)")
    emit(capsys, "PR7: sharded tier scale-out (Browsing, saturated)", lines)

    bench_recorder.record(
        "shard_scaleout",
        **{f"wips_{servers}": round(value, 1) for servers, value in wips.items()},
        speedup_8_vs_1=round(speedup, 2),
    )
    assert speedup >= 2.0, (
        f"8 shards must deliver at least 2x one cache server, got {speedup:.2f}x"
    )
    # The shape stays near-linear, not merely above the 2x floor.
    assert wips[8] / wips[4] > 1.5

    benchmark.pedantic(
        lambda: simulate_cluster(
            cal_cached,
            DESConfig(
                users=300, mix_name="Browsing", servers=1, duration=20, warmup=5
            ),
        ),
        rounds=1,
        iterations=1,
    )


def test_bench_shard_router_locality_and_identity(capsys, bench_recorder):
    sharded = ShardedDeployment(config=TPCWConfig(**SHARD_CONFIG), shards=8)
    router_connection = sharded.connect()
    backend_direct = connect(sharded.backend, database=sharded.database_name)

    flat_backend, flat_config = build_backend(TPCWConfig(**SHARD_CONFIG))
    _, caches = enable_caching(flat_backend, ["cache1"], flat_config)
    cache_connection = connect(caches[0], database="tpcw")

    sql = "EXEC getBook @i_id = @i_id"
    for key in READ_KEYS[:5]:  # warm plans on every shard and the cache
        router_connection.execute(sql, {"i_id": key})
        cache_connection.execute(sql, {"i_id": key})

    for key in READ_KEYS:
        sharded_rows = router_connection.execute(sql, {"i_id": key}).rows
        expected = backend_direct.execute(sql, {"i_id": key}).rows
        assert sharded_rows == expected, f"item {key} diverged through the router"

    # Measured pass: routed reads only, so any backend statement at all
    # is a leak (a shard failing to serve its own key locally).
    backend_statements_before = sharded.backend.statements_executed
    started = time.perf_counter()
    for key in READ_KEYS:
        router_connection.execute(sql, {"i_id": key})
    routed_seconds = time.perf_counter() - started
    backend_extra = sharded.backend.statements_executed - backend_statements_before

    started = time.perf_counter()
    for key in READ_KEYS:
        cache_connection.execute(sql, {"i_id": key})
    single_cache_seconds = time.perf_counter() - started

    hits = sum(
        sharded.metrics.counter("shard.hits", labels={"shard": name}).value
        for name in sharded.shards
    )
    routed_per_second = len(READ_KEYS) / routed_seconds
    emit(
        capsys,
        "PR7: single-key read locality through the ShardRouter",
        [
            f"routed reads          {len(READ_KEYS):6d}",
            f"shard-served          {hits:6d}",
            f"extra backend stmts   {backend_extra:6d}  (gate: 0)",
            f"router     {routed_per_second:10.0f} reads/s",
            f"one cache  {len(READ_KEYS) / single_cache_seconds:10.0f} reads/s",
        ],
    )
    bench_recorder.record(
        "shard_router_locality",
        routed_reads=len(READ_KEYS),
        extra_backend_statements=backend_extra,
        router_reads_per_second=round(routed_per_second, 0),
        single_cache_reads_per_second=round(len(READ_KEYS) / single_cache_seconds, 0),
    )
    assert backend_extra == 0, (
        f"{backend_extra} single-key reads leaked to the backend; "
        "shard slices must serve their own keys"
    )
    assert hits >= len(READ_KEYS)
