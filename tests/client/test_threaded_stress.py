"""Threaded stress: real workers, shared rows, zero isolation violations.

These tests are the correctness half of the concurrent execution core
(the scaling half lives in ``benchmarks/test_bench_concurrency.py``).
They lower the interpreter's thread switch interval so the scheduler
preempts aggressively — without the database latch and table locks, the
read-modify-write increments here lose updates within a handful of
iterations.
"""

from __future__ import annotations

import sys
import threading

import pytest

from repro.client import ConnectionPool, connect
from repro.engine.server import Server
from repro.tpcw.driver import ThreadedLoadDriver
from repro.tpcw.setup import build_backend, enable_caching
from repro.tpcw.workload import MIXES
from repro.tpcw.config import TPCWConfig

WORKERS = 8
INCREMENTS = 20

pytestmark = pytest.mark.concurrency


@pytest.fixture(autouse=True)
def aggressive_preemption():
    old = sys.getswitchinterval()
    sys.setswitchinterval(1e-4)
    yield
    sys.setswitchinterval(old)


def make_counter_backend() -> Server:
    server = Server("stress")
    server.create_database("bench")
    server.execute(
        "CREATE TABLE counters (cid INT PRIMARY KEY, total INT NOT NULL)",
        database="bench",
    )
    server.execute(
        "INSERT INTO counters (cid, total) VALUES (1, 0)", database="bench"
    )
    return server


@pytest.mark.parametrize("seed", [3, 11, 42])
def test_no_lost_updates_on_shared_row(seed):
    """8 writers x 20 read-modify-write increments: the total is exact."""
    backend = make_counter_backend()
    pool = ConnectionPool(lambda: connect(backend, database="bench"), size=WORKERS)
    barrier = threading.Barrier(WORKERS)
    failures = []

    def hammer(index: int) -> None:
        try:
            barrier.wait(timeout=10.0)
            for step in range(INCREMENTS):
                with pool.connection() as connection:
                    cursor = connection.cursor()
                    cursor.execute(
                        "UPDATE counters SET total = total + 1 WHERE cid = 1"
                    )
                    if (index + step + seed) % 2 == 0:
                        cursor.execute("SELECT total FROM counters WHERE cid = 1")
                        assert cursor.fetchone()[0] >= 1
        except BaseException as exc:  # pragma: no cover - only on regression
            failures.append(exc)

    threads = [
        threading.Thread(target=hammer, args=(index,), daemon=True)
        for index in range(WORKERS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    pool.close()

    assert failures == []
    total = backend.execute(
        "SELECT total FROM counters WHERE cid = 1", database="bench"
    ).scalar
    assert total == WORKERS * INCREMENTS


@pytest.mark.parametrize("seed", [5, 23, 91])
def test_explicit_transactions_are_serialized(seed):
    """Competing BEGIN..COMMIT blocks never interleave their statements."""
    backend = make_counter_backend()
    pool = ConnectionPool(lambda: connect(backend, database="bench"), size=4)
    failures = []

    def transact(index: int) -> None:
        try:
            for _ in range(5):
                with pool.connection() as connection:
                    connection.begin()
                    cursor = connection.cursor()
                    cursor.execute("SELECT total FROM counters WHERE cid = 1")
                    seen = cursor.fetchone()[0]
                    # Under the exclusive latch no other writer can slip
                    # between this read and the dependent write.
                    cursor.execute(
                        "UPDATE counters SET total = @next WHERE cid = 1",
                        {"next": seen + 1},
                    )
                    connection.commit()
        except BaseException as exc:  # pragma: no cover - only on regression
            failures.append(exc)

    threads = [
        threading.Thread(target=transact, args=(index,), daemon=True)
        for index in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    pool.close()

    assert failures == []
    total = backend.execute(
        "SELECT total FROM counters WHERE cid = 1", database="bench"
    ).scalar
    assert total == 4 * 5
    # No latch leaked: a fresh writer proceeds immediately.
    latch = backend.database("bench").latch
    assert latch.readers == 0
    assert not latch.owns_exclusive()


@pytest.mark.parametrize("seed", [7, 19, 77])
def test_threaded_tpcw_mix_clean_with_checked_plans(seed):
    """Mixed read/write TPC-W through the pool: no errors, plans checked."""
    backend, config = build_backend(TPCWConfig(num_items=40, num_ebs=8))
    deployment, caches = enable_caching(backend, [f"stress{seed}"], config)
    cache = caches[0]
    assert cache.server.checked_plans  # stays on under threading
    pool = ConnectionPool(
        lambda: connect(cache.server, database="tpcw"), size=WORKERS
    )
    driver = ThreadedLoadDriver(
        pool,
        config,
        MIXES["Shopping"],
        workers=WORKERS,
        think_time=0.002,
        deployment=deployment,
        seed=seed,
    )
    stats = driver.run(0.5)
    pool.close()

    assert stats.errors == 0
    assert stats.interactions > 0
    assert cache.server.checked_plans
    assert cache.server.metrics.counter("analysis.plans_checked").value > 0
    # Every latch quiesced on both tiers.
    for server in (backend, cache.server):
        for name in server.databases:
            latch = server.database(name).latch
            assert latch.readers == 0
            assert not latch.owns_exclusive()
