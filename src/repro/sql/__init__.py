"""SQL frontend: lexer, parser, AST and SQL text formatter.

The dialect is a T-SQL-flavoured subset sufficient for the TPC-W workload
and all examples in the MTCache paper: SELECT with joins/grouping/TOP,
DML, DDL (tables, indexes, views, materialized and cached views, stored
procedures), ``@parameter`` markers, ``EXEC``, four-part linked-server
names and the paper's proposed freshness clause.
"""

from repro.sql.lexer import Lexer, Token, TokenType, tokenize
from repro.sql.parser import Parser, parse, parse_expression, parse_statements
from repro.sql.formatter import format_expression, format_statement

__all__ = [
    "Lexer",
    "Token",
    "TokenType",
    "tokenize",
    "Parser",
    "parse",
    "parse_expression",
    "parse_statements",
    "format_expression",
    "format_statement",
]
