"""A cache server: SQL Server configured with a shadow database.

The shadow database contains the same tables, views, indexes, constraints
and permissions as the backend database, all tables empty, with statistics
adopted from the backend so the optimizer costs shadow tables as if the
data were local (paper §3). What data actually lives here is defined by
``CREATE CACHED VIEW`` statements, each of which automatically provisions
a replication subscription (creating a matching publication article when
none exists) and populates the view with an initial snapshot.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.catalog.objects import ViewDef
from repro.common.lru import LRUCache
from repro.common.schema import Column, Schema
from repro.engine import Database, Server
from repro.errors import ReplicationError
from repro.replication.agent import DistributionAgent
from repro.replication.subscription import Subscription
from repro.sql import ast, parse
from repro.sql.formatter import format_statement


class CacheServer:
    """One mid-tier cache server attached to a deployment."""

    def __init__(self, server: Server, deployment, shadow_db_name: str):
        self.server = server
        self.deployment = deployment
        self.shadow_db_name = shadow_db_name
        self.subscriptions: Dict[str, Subscription] = {}
        self.agents: Dict[str, DistributionAgent] = {}
        # Minimal shadows (paper §7) only carry the catalog relevant to
        # the cached views; anything else is forwarded as whole statements.
        self.minimal_shadow = False
        self.statements_forwarded = 0
        # Read-only statements rerouted to the backend on transient
        # failures (link down, breaker open, own server crashed).
        self.fallback_reads = 0
        # Graceful degradation under overload (PR 9): recent read-only
        # results, each stamped with the replication-staleness bound in
        # force when it was captured. When admission control sheds a
        # read, the cache may answer from here as long as capture-time
        # staleness plus entry age stays within ``degraded_staleness``
        # — a declared bounded-staleness answer instead of an error.
        # Writes are never served this way (they re-raise, loudly).
        self.degraded_staleness: float = 5.0
        self.degraded_reads = 0
        self._degraded_results: LRUCache = LRUCache(128)

    @property
    def database(self) -> Database:
        return self.server.database(self.shadow_db_name)

    @property
    def name(self) -> str:
        return self.server.name

    # -- the public query interface (what applications see) -----------------

    def execute(self, sql: str, params: Optional[Dict] = None, session=None):
        """Execute SQL exactly as an application would against the backend.

        Queries route cost-based between local cached views and the
        backend; updates and unknown procedure calls forward transparently.
        On a *minimal shadow* (paper §7), statements touching objects the
        shadow does not carry cannot be bound locally — they forward to
        the backend as whole statements, preserving transparency.

        Transient failures get the same treatment for *read-only*
        batches: when the backend link is unreachable even after retries
        (or its breaker is open, or this cache's own server is down), a
        SELECT re-runs on the backend as a whole statement — retryable
        reads never fail because a cache did. Writes propagate the error;
        the application-tier :class:`~repro.resilience.FailoverRouter`
        handles rerouting those.

        Under overload (admission control shedding, PR 9), a read-only
        batch may degrade to a recently cached result as long as its
        total staleness — replication lag at capture plus entry age —
        stays within :attr:`degraded_staleness`. Writes always re-raise
        the :class:`~repro.errors.OverloadError`: load shedding must
        never silently drop a write.
        """
        from repro.errors import (
            BindError,
            CatalogError,
            CircuitOpenError,
            LinkUnavailableError,
            OverloadError,
            ServerUnavailableError,
        )

        try:
            result = self.server.execute(
                sql, params=params, session=session, database=self.shadow_db_name
            )
        except (OverloadError,):
            cached = self._degraded_result(sql, params)
            if cached is None:
                raise
            self.degraded_reads += 1
            if self.server.observability:
                self.server.metrics.counter("overload.degraded_reads").inc()
            return cached
        except (BindError, CatalogError):
            if not self.minimal_shadow:
                raise
            self.statements_forwarded += 1
            if self.server.observability:
                self.server.metrics.counter("mtcache.statements_forwarded").inc()
            with self.server.tracer.span("forward.statement", target="backend"):
                return self.deployment.backend.execute(
                    sql, params=params, database=self.deployment.database_name
                )
        except (LinkUnavailableError, ServerUnavailableError, CircuitOpenError):
            if not self._read_only_batch(sql):
                raise
            self.fallback_reads += 1
            if self.server.observability:
                self.server.metrics.counter("resilience.fallback_reads").inc()
            with self.server.tracer.span("failover.read", target="backend"):
                return self.deployment.backend.execute(
                    sql, params=params, database=self.deployment.database_name
                )
        self._record_degraded_candidate(sql, params, result)
        return result

    # -- degraded reads (overload, PR 9) -------------------------------------

    @staticmethod
    def _degraded_key(sql: str, params: Optional[Dict]):
        """Cache key for degraded results, or None for unhashable params."""
        if not params:
            return (sql, ())
        try:
            return (sql, tuple(sorted(params.items())))
        except TypeError:
            return None

    def _record_degraded_candidate(self, sql: str, params: Optional[Dict], result) -> None:
        """Remember a successful read-only result for degraded service.

        Each entry is stamped with the capture time and the replication
        staleness bound in force at capture, so a later degraded serve
        can honestly bound the total staleness it hands out.
        """
        key = self._degraded_key(sql, params)
        if key is None or not self._read_only_batch(sql):
            return
        now = self.database.clock.now()
        self._degraded_results[key] = (now, self.staleness(), result)

    def _degraded_result(self, sql: str, params: Optional[Dict]):
        """A cached result fresh enough to serve under overload, or None.

        Only read-only batches qualify, and only while capture-time
        replication lag plus entry age stays within
        :attr:`degraded_staleness`.
        """
        key = self._degraded_key(sql, params)
        if key is None:
            return None
        entry = self._degraded_results.get(key)
        if entry is None or not self._read_only_batch(sql):
            return None
        captured_at, staleness_at_capture, result = entry
        now = self.database.clock.now()
        if (now - captured_at) + staleness_at_capture > self.degraded_staleness:
            return None
        return result

    def _read_only_batch(self, sql: str) -> bool:
        """True when every statement in the batch is a pure query.

        Uses the server's version-checked parse cache; parsing here is
        safe even when the server is marked crashed (in-process model).
        """
        try:
            statements = self.server._parse_sql(sql, self.database)
        except Exception:
            return False
        return bool(statements) and all(
            isinstance(statement, (ast.Select, ast.UnionAll, ast.Explain))
            for statement in statements
        )

    def healthy(self) -> bool:
        """Health probe for failover routers: up, with no breaker stuck open.

        A breaker whose reset timeout has elapsed counts as healthy — the
        first routed call performs the half-open probe.
        """
        if not getattr(self.server, "available", True):
            return False
        links = self.server.linked_servers
        for name in links.names():
            breaker = links.get(name).breaker
            if breaker is not None and not breaker.ready():
                return False
        return True

    def plan(self, sql: str):
        """Plan a SELECT and return the PlannedStatement (for inspection)."""
        statement = parse(sql)
        if not isinstance(statement, ast.Select):
            raise ValueError("plan() accepts SELECT statements only")
        return self.server.plan_select(statement, self.database, cache_key=sql)

    # -- cached views ---------------------------------------------------------

    def create_cached_view(self, sql: str) -> ViewDef:
        """Run a ``CREATE CACHED VIEW`` statement.

        Equivalent to executing the statement through :meth:`execute`; the
        DDL layer routes it to :meth:`_handle_cached_view`.
        """
        statement = parse(sql)
        if not (isinstance(statement, ast.CreateView) and statement.cached):
            raise ValueError("create_cached_view expects CREATE CACHED VIEW ...")
        self._handle_cached_view(statement)
        return self.database.catalog.get_view(statement.name)

    def _handle_cached_view(self, statement: ast.CreateView) -> None:
        """The CREATE CACHED VIEW hook installed on the shadow database."""
        select = statement.select
        if not isinstance(select.from_clause, ast.TableName):
            raise ReplicationError(
                "cached views must be select-project expressions over one table"
            )
        source_table = select.from_clause.object_name
        backend_db = self.deployment.backend_database
        source_def = backend_db.catalog.get_table(source_table)

        # Resolve the projected columns (Star expands to all columns).
        columns: List[str] = []
        output_names: List[str] = []
        for item in select.items:
            if isinstance(item.expression, ast.Star):
                for column in source_def.schema.names:
                    columns.append(column)
                    output_names.append(column)
                continue
            if not isinstance(item.expression, ast.ColumnRef):
                raise ReplicationError(
                    "cached view select lists may contain only plain columns"
                )
            columns.append(item.expression.name)
            output_names.append(item.alias or item.expression.name)

        view_schema = Schema(
            Column(
                name=output_name,
                sql_type=source_def.schema[source_def.schema.resolve(column)].sql_type,
                nullable=source_def.schema[source_def.schema.resolve(column)].nullable,
            )
            for column, output_name in zip(columns, output_names)
        )

        # Primary key carries over when fully projected, giving the
        # subscriber a unique index for change application.
        projected = {column.lower() for column in columns}
        primary_key = (
            source_def.primary_key
            if source_def.primary_key
            and all(key.lower() in projected for key in source_def.primary_key)
            else ()
        )
        if primary_key:
            rename = {
                column.lower(): output_name
                for column, output_name in zip(columns, output_names)
            }
            primary_key = tuple(rename[key.lower()] for key in primary_key)

        database = self.database
        database.catalog.add_view(
            ViewDef(
                name=statement.name,
                select=select,
                schema=view_schema,
                materialized=True,
                cached=True,
                source_text=format_statement(statement),
            )
        )
        database.create_view_storage(statement.name, view_schema, primary_key)

        # Mirror the backend's indexes whose columns the view projects
        # ("all indexes on the cache servers were identical to indexes on
        # the backend server", §6.1.2).
        storage = database.storage_table(statement.name)
        rename = {
            column.lower(): output_name
            for column, output_name in zip(columns, output_names)
        }
        for index in backend_db.catalog.indexes_on(source_table):
            if all(column.lower() in projected for column in index.columns):
                local_columns = [rename[column.lower()] for column in index.columns]
                index_name = f"{statement.name}_{index.name}"
                storage.create_index(index_name, local_columns, unique=False)
                from repro.catalog.objects import IndexDef

                database.catalog.add_index(
                    IndexDef(index_name, statement.name, tuple(local_columns))
                )

        # Provision replication: article (creating it if absent),
        # subscription, snapshot, push agent (paper §4).
        article = self.deployment.ensure_article(
            view_name=statement.name,
            source_table=source_table,
            columns=tuple(columns),
            predicate=select.where,
        )
        subscription = Subscription(
            name=f"{self.server.name}_{statement.name}",
            article_name=article.name,
            subscriber_database=database,
            target_table=statement.name,
        )
        self.deployment.register_subscription(self, subscription)
        self.deployment.snapshot(article, subscription)
        database.analyze(statement.name)
        self.subscriptions[statement.name.lower()] = subscription
        database.bump_version()

    # -- procedures -----------------------------------------------------------

    def copy_procedure(self, name: str) -> None:
        """Copy one stored procedure from the backend (DBA-controlled).

        Procedures are not shadowed by default; the DBA selects which ones
        run on the mid tier (paper §5.2).
        """
        backend_db = self.deployment.backend_database
        procedure = backend_db.catalog.get_procedure(name)
        self.database.catalog.add_procedure(procedure)
        self.database.bump_version()

    def copy_procedures(self, names: List[str]) -> None:
        for name in names:
            self.copy_procedure(name)

    # -- freshness -----------------------------------------------------------

    def metrics_snapshot(self) -> Dict:
        """JSON-ready snapshot of this cache server's metrics registry."""
        from repro.obs.export import server_snapshot

        return server_snapshot(self.server)

    def staleness(self) -> float:
        """Upper bound (seconds) on how stale the cached views may be."""
        now = self.database.clock.now()
        if not self.subscriptions:
            return 0.0
        bounds = []
        for subscription in self.subscriptions.values():
            synced = getattr(subscription, "synced_through", 0.0)
            bounds.append(max(0.0, now - max(synced, subscription.last_applied_commit_ts)))
        return max(bounds)

    def __repr__(self) -> str:
        return f"<CacheServer {self.server.name} views={list(self.subscriptions)}>"
