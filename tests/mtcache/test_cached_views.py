"""Cached view lifecycle: creation, subscription, indexes, statistics."""

import pytest

from repro import MTCacheDeployment
from repro.errors import ReplicationError

from tests.conftest import make_shop_backend


@pytest.fixture
def env():
    backend = make_shop_backend()
    deployment = MTCacheDeployment(backend, "shop")
    cache = deployment.add_cache_server("cache1")
    return backend, deployment, cache


class TestCreation:
    def test_view_registered_as_cached(self, env):
        _, _, cache = env
        cache.create_cached_view(
            "CREATE CACHED VIEW v AS SELECT cid, cname FROM customer WHERE cid <= 50"
        )
        view = cache.database.catalog.get_view("v")
        assert view.cached and view.materialized

    def test_population_via_snapshot(self, env):
        _, _, cache = env
        cache.create_cached_view(
            "CREATE CACHED VIEW v AS SELECT cid, cname FROM customer WHERE cid <= 50"
        )
        assert cache.execute("SELECT COUNT(*) FROM v").scalar == 50

    def test_subscription_created_automatically(self, env):
        _, deployment, cache = env
        cache.create_cached_view(
            "CREATE CACHED VIEW v AS SELECT cid FROM customer WHERE cid <= 50"
        )
        assert len(deployment.distributor.subscriptions) == 1
        assert len(deployment.publication.articles) == 1

    def test_star_projection(self, env):
        _, _, cache = env
        cache.create_cached_view("CREATE CACHED VIEW v AS SELECT * FROM customer")
        assert cache.execute("SELECT COUNT(*) FROM v").scalar == 200
        schema = cache.execute("SELECT * FROM v").schema
        assert schema.names == ["cid", "cname", "caddress", "segment"]

    def test_column_aliasing(self, env):
        _, _, cache = env
        cache.create_cached_view(
            "CREATE CACHED VIEW v AS SELECT cid AS id, cname AS nm FROM customer WHERE cid <= 10"
        )
        rows = cache.execute("SELECT id, nm FROM v ORDER BY id").rows
        assert rows[0] == (1, "cust1")

    def test_pk_carries_over_when_projected(self, env):
        _, _, cache = env
        cache.create_cached_view(
            "CREATE CACHED VIEW v AS SELECT cid, cname FROM customer WHERE cid <= 50"
        )
        storage = cache.database.storage_table("v")
        assert storage.find_index(["cid"]) is not None

    def test_backend_indexes_mirrored(self, env):
        """Paper §6.1.2: cache indexes identical to backend indexes."""
        _, _, cache = env
        cache.create_cached_view(
            "CREATE CACHED VIEW v AS SELECT cid, cname, segment FROM customer"
        )
        storage = cache.database.storage_table("v")
        assert storage.find_index(["segment"]) is not None

    def test_statistics_computed_on_creation(self, env):
        _, _, cache = env
        cache.create_cached_view(
            "CREATE CACHED VIEW v AS SELECT cid FROM customer WHERE cid <= 50"
        )
        stats = cache.database.stats_for("v")
        assert stats.row_count == 50

    def test_join_view_rejected(self, env):
        _, _, cache = env
        with pytest.raises(ReplicationError, match="select-project"):
            cache.create_cached_view(
                "CREATE CACHED VIEW v AS "
                "SELECT c.cid FROM customer c JOIN orders o ON c.cid = o.o_cid"
            )

    def test_computed_column_rejected(self, env):
        _, _, cache = env
        with pytest.raises(ReplicationError):
            cache.create_cached_view(
                "CREATE CACHED VIEW v AS SELECT cid + 1 AS c FROM customer"
            )


class TestMaintenance:
    def test_view_tracks_backend_updates(self, env):
        backend, deployment, cache = env
        cache.create_cached_view(
            "CREATE CACHED VIEW v AS SELECT cid, cname FROM customer WHERE cid <= 50"
        )
        backend.execute(
            "UPDATE customer SET cname = 'updated' WHERE cid = 10", database="shop"
        )
        deployment.sync()
        assert cache.execute("SELECT cname FROM v WHERE cid = 10").scalar == "updated"

    def test_multiple_views_same_table(self, env):
        backend, deployment, cache = env
        cache.create_cached_view(
            "CREATE CACHED VIEW v1 AS SELECT cid, cname FROM customer WHERE cid <= 50"
        )
        cache.create_cached_view(
            "CREATE CACHED VIEW v2 AS SELECT cid, segment FROM customer WHERE cid <= 20"
        )
        backend.execute(
            "UPDATE customer SET cname = 'x', segment = 'vip' WHERE cid = 5",
            database="shop",
        )
        deployment.sync()
        assert cache.execute("SELECT cname FROM v1 WHERE cid = 5").scalar == "x"
        assert cache.execute("SELECT segment FROM v2 WHERE cid = 5").scalar == "vip"

    def test_procedure_copying_is_dba_controlled(self, env):
        backend, _, cache = env
        backend.execute(
            "CREATE PROCEDURE getC @id INT AS BEGIN SELECT cname FROM customer WHERE cid = @id END",
            database="shop",
        )
        # Not copied: the call must forward to the backend transparently.
        assert cache.database.catalog.maybe_procedure("getC") is None
        assert cache.execute("EXEC getC @id = 3").scalar == "cust3"
        # After copying, it runs locally.
        cache.copy_procedure("getC")
        assert cache.database.catalog.maybe_procedure("getC") is not None
        assert cache.execute("EXEC getC @id = 3").scalar == "cust3"
