"""Stored procedure interpreter tests."""

import pytest

from repro import Server
from repro.errors import ExecutionError


@pytest.fixture
def server():
    s = Server("s")
    s.create_database("db")
    s.execute("CREATE TABLE t (id INT PRIMARY KEY, val FLOAT)")
    for i in range(1, 11):
        s.execute(f"INSERT INTO t VALUES ({i}, {i * 1.0})")
    return s


class TestBasics:
    def test_result_set(self, server):
        server.execute(
            "CREATE PROCEDURE getRow @id INT AS BEGIN SELECT id, val FROM t WHERE id = @id END"
        )
        result = server.execute("EXEC getRow @id = 4")
        assert result.rows == [(4, 4.0)]

    def test_positional_arguments(self, server):
        server.execute(
            "CREATE PROCEDURE getRow2 @id INT AS BEGIN SELECT val FROM t WHERE id = @id END"
        )
        assert server.execute("EXEC getRow2 6").scalar == 6.0

    def test_default_arguments(self, server):
        server.execute(
            "CREATE PROCEDURE withDefault @id INT = 2 AS BEGIN SELECT val FROM t WHERE id = @id END"
        )
        assert server.execute("EXEC withDefault").scalar == 2.0
        assert server.execute("EXEC withDefault 5").scalar == 5.0

    def test_missing_required_argument(self, server):
        server.execute(
            "CREATE PROCEDURE needsArg @id INT AS BEGIN SELECT 1 END"
        )
        with pytest.raises(ExecutionError, match="missing argument"):
            server.execute("EXEC needsArg")

    def test_unknown_argument(self, server):
        server.execute("CREATE PROCEDURE noArgs AS BEGIN SELECT 1 END")
        with pytest.raises(ExecutionError, match="unknown argument"):
            server.execute("EXEC noArgs @bogus = 1")

    def test_return_value(self, server):
        server.execute(
            "CREATE PROCEDURE retFive AS BEGIN RETURN 5 END"
        )
        assert server.execute("EXEC retFive").return_value == 5

    def test_return_stops_execution(self, server):
        server.execute(
            """
            CREATE PROCEDURE earlyOut AS
            BEGIN
                RETURN 1
                SELECT 'never'
            END
            """
        )
        result = server.execute("EXEC earlyOut")
        assert result.rows == []
        assert result.return_value == 1


class TestControlFlow:
    def test_if_else(self, server):
        server.execute(
            """
            CREATE PROCEDURE branchy @x INT AS
            BEGIN
                IF @x > 5
                    SELECT 'big' AS r
                ELSE
                    SELECT 'small' AS r
            END
            """
        )
        assert server.execute("EXEC branchy 9").scalar == "big"
        assert server.execute("EXEC branchy 2").scalar == "small"

    def test_while_loop(self, server):
        server.execute(
            """
            CREATE PROCEDURE looper @n INT AS
            BEGIN
                DECLARE @total INT = 0
                DECLARE @i INT = 1
                WHILE @i <= @n
                BEGIN
                    SET @total = @total + @i
                    SET @i = @i + 1
                END
                SELECT @total AS total
            END
            """
        )
        assert server.execute("EXEC looper 10").scalar == 55

    def test_select_assignment_from_table(self, server):
        server.execute(
            """
            CREATE PROCEDURE assign AS
            BEGIN
                DECLARE @m FLOAT
                SELECT @m = MAX(val) FROM t
                SELECT @m * 2 AS doubled
            END
            """
        )
        assert server.execute("EXEC assign").scalar == 20.0

    def test_select_assignment_no_rows_keeps_value(self, server):
        server.execute(
            """
            CREATE PROCEDURE keepOld AS
            BEGIN
                DECLARE @v FLOAT = -1.0
                SELECT @v = val FROM t WHERE id = 999
                SELECT @v AS v
            END
            """
        )
        assert server.execute("EXEC keepOld").scalar == -1.0

    def test_null_condition_is_false(self, server):
        server.execute(
            """
            CREATE PROCEDURE nullCond AS
            BEGIN
                DECLARE @x INT
                IF @x > 1
                    SELECT 'yes' AS r
                ELSE
                    SELECT 'no' AS r
            END
            """
        )
        assert server.execute("EXEC nullCond").scalar == "no"

    def test_print_inside_procedure(self, server):
        server.execute(
            "CREATE PROCEDURE chatty AS BEGIN PRINT 'working' SELECT 1 AS one END"
        )
        result = server.execute("EXEC chatty")
        assert "working" in result.messages


class TestSideEffectsAndNesting:
    def test_dml_inside_procedure(self, server):
        server.execute(
            """
            CREATE PROCEDURE addRow @id INT, @val FLOAT AS
            BEGIN
                INSERT INTO t VALUES (@id, @val)
            END
            """
        )
        server.execute("EXEC addRow @id = 99, @val = 9.9")
        assert server.execute("SELECT val FROM t WHERE id = 99").scalar == 9.9

    def test_nested_exec(self, server):
        server.execute("CREATE PROCEDURE inner1 AS BEGIN SELECT 42 AS a END")
        server.execute("CREATE PROCEDURE outer1 AS BEGIN EXEC inner1 END")
        assert server.execute("EXEC outer1").scalar == 42

    def test_multiple_result_sets_last_wins(self, server):
        server.execute(
            "CREATE PROCEDURE multi AS BEGIN SELECT 1 AS a SELECT 2 AS b END"
        )
        result = server.execute("EXEC multi")
        assert result.scalar == 2
        assert len(result.resultsets) == 2

    def test_plan_cache_reuse_across_calls(self, server):
        server.execute(
            "CREATE PROCEDURE lookup @id INT AS BEGIN SELECT val FROM t WHERE id = @id END"
        )
        server.execute("EXEC lookup 1")
        cached_before = len(server._plan_cache)
        server.execute("EXEC lookup 2")
        # Same body statement, same plan cache entry: no growth.
        assert len(server._plan_cache) == cached_before

    def test_max_id_pattern(self, server):
        """The TPC-W id-allocation idiom."""
        server.execute(
            """
            CREATE PROCEDURE nextId AS
            BEGIN
                DECLARE @next INT
                SELECT @next = MAX(id) FROM t
                IF @next IS NULL
                    SET @next = 0
                SET @next = @next + 1
                INSERT INTO t VALUES (@next, 0.0)
                SELECT @next AS id
            END
            """
        )
        first = server.execute("EXEC nextId").scalar
        second = server.execute("EXEC nextId").scalar
        assert (first, second) == (11, 12)
