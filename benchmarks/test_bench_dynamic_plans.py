"""F2/F4 — dynamic plans (Figures 2-4) and the static-vs-dynamic ablation.

Verifies the plan shapes from the paper (ChoosePlan as UnionAll with
startup predicates; pull-up above joins) and measures the benefit dynamic
plans provide for parameterized queries: one cached plan serves all
parameter values, exploiting local data when the guard holds, instead of
always going remote (static plan) or re-optimizing per value.
"""

import pytest

from repro import MTCacheDeployment
from repro.exec.operators import FilterOp, RemoteQueryOp, UnionAllOp

from tests.conftest import make_shop_backend
from benchmarks.conftest import emit

QUERY = "SELECT cid, cname, caddress FROM customer WHERE cid <= @cid"


@pytest.fixture(scope="module")
def env():
    backend = make_shop_backend(customers=1000, orders=2000)
    deployment = MTCacheDeployment(backend, "shop")
    cache = deployment.add_cache_server("cache_dyn")
    cache.create_cached_view(
        "CREATE CACHED VIEW Cust500 AS "
        "SELECT cid, cname, caddress FROM customer WHERE cid <= 500"
    )
    static_cache = deployment.add_cache_server(
        "cache_static", optimizer_options={"enable_dynamic_plans": False}
    )
    static_cache.create_cached_view(
        "CREATE CACHED VIEW Cust500s AS "
        "SELECT cid, cname, caddress FROM customer WHERE cid <= 500"
    )
    return backend, cache, static_cache


def test_bench_figure2_plan_shape(env, benchmark, capsys):
    backend, cache, _ = env
    planned = cache.plan(QUERY)
    choose = [
        node
        for node in planned.root.walk()
        if isinstance(node, UnionAllOp) and node.choose_plan
    ]
    guards = [
        node
        for node in planned.root.walk()
        if isinstance(node, FilterOp) and node.startup_predicate is not None
    ]
    emit(
        capsys,
        "F2: dynamic plan for the paper's Cust1000 example",
        planned.explain().splitlines(),
    )
    assert len(choose) == 1 and len(guards) == 2
    assert planned.is_dynamic

    benchmark(lambda: cache.server.optimizer_for(cache.database).plan_select(
        __import__("repro.sql", fromlist=["parse"]).parse(QUERY)
    ))


def test_bench_dynamic_vs_static_work(env, benchmark, capsys):
    """Ablation: backend work per 100 parameterized queries, 70 % of which
    fall inside the cached range."""
    backend, cache, static_cache = env
    values = [((i * 37) % 700) + 1 for i in range(100)]  # ~71 % <= 500

    def run(server_cache):
        backend.reset_work()
        for value in values:
            server_cache.execute(QUERY, params={"cid": value})
        return backend.total_work.rows_processed

    dynamic_work = run(cache)
    static_work = run(static_cache)
    emit(
        capsys,
        "F2 ablation: backend work per 100 parameterized queries",
        [
            f"dynamic plans: {dynamic_work:10d} backend row touches",
            f"static plans : {static_work:10d} backend row touches",
            f"offload factor: {static_work / max(1, dynamic_work):.1f}x",
        ],
    )
    # Dynamic plans must offload the guard-true fraction to the cache.
    assert dynamic_work < static_work

    benchmark(lambda: cache.execute(QUERY, params={"cid": 250}))


def test_bench_figure4_pullup(env, benchmark, capsys):
    """ChoosePlan pulled above a join: both branches independently
    optimized, the guard-false branch shipping the larger remote query."""
    backend, cache, _ = env
    cache.create_cached_view(
        "CREATE CACHED VIEW OrdersAll AS SELECT oid, o_cid, total FROM orders"
    )
    join_query = (
        "SELECT c.cname, o.total FROM customer c JOIN orders o ON o.o_cid = c.cid "
        "WHERE c.cid <= @cid"
    )
    planned = cache.plan(join_query)
    emit(capsys, "F4: ChoosePlan pulled above the join", planned.explain().splitlines())
    assert isinstance(planned.root, UnionAllOp) and planned.root.choose_plan
    # Pull-up optimizes the branches independently: the guard-true branch
    # is fully local while the guard-false branch involves the backend
    # (either a bigger pushdown or a guarded-table transfer — cost decides).
    local_branch, remote_branch = planned.root.children
    assert not any(isinstance(n, RemoteQueryOp) for n in local_branch.walk())
    assert any(isinstance(n, RemoteQueryOp) for n in remote_branch.walk())

    local = cache.execute(join_query, params={"cid": 100})
    remote = cache.execute(join_query, params={"cid": 600})
    assert len(local.rows) == 200 and len(remote.rows) == 1200

    benchmark(lambda: cache.execute(join_query, params={"cid": 100}))
