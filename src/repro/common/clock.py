"""A simulated clock shared by servers, replication agents and the DES.

All time in the reproduction is virtual. Replication agents poll on this
clock, the discrete-event simulator advances it, and latency measurements
(e.g. the paper's update-propagation experiment) read it. Keeping time
virtual makes the experiments deterministic and fast regardless of the host.
"""

from __future__ import annotations


class SimulatedClock:
    """A monotonically advancing virtual clock measured in seconds."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        """Return the current virtual time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative delta {seconds}")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Advance the clock to an absolute time, never moving backwards."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def __repr__(self) -> str:
        return f"SimulatedClock(t={self._now:.6f})"
