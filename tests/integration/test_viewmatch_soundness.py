"""End-to-end soundness of view matching + dynamic plans.

Hypothesis generates a random cached-view range, a random query predicate
and random parameter values; the cache's answers must always equal the
backend's. This exercises the whole pipeline — containment checking, guard
derivation, ChoosePlan construction, startup-predicate evaluation — as one
black box under adversarial ranges and boundary values.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import MTCacheDeployment, Server


def build_env(view_bound):
    backend = Server("backend")
    backend.create_database("shop")
    backend.execute(
        "CREATE TABLE t (k INT PRIMARY KEY, v VARCHAR(20) NOT NULL)"
    )
    database = backend.database("shop")
    database.bulk_load("t", [(i, f"v{i}") for i in range(1, 101)])
    database.analyze_all()
    deployment = MTCacheDeployment(backend, "shop")
    cache = deployment.add_cache_server("cache")
    cache.create_cached_view(
        f"CREATE CACHED VIEW part AS SELECT k, v FROM t WHERE k <= {view_bound}"
    )
    return backend, cache


# A handful of environments with different view bounds, reused across
# examples (building servers is the expensive part).
_ENVS = {}


def env_for(view_bound):
    if view_bound not in _ENVS:
        _ENVS[view_bound] = build_env(view_bound)
    return _ENVS[view_bound]


@settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    view_bound=st.sampled_from([1, 37, 50, 99, 100]),
    op=st.sampled_from(["<", "<=", "=", ">", ">="]),
    value=st.one_of(st.none(), st.integers(-5, 120)),
)
def test_property_parameterized_queries_always_agree(view_bound, op, value):
    backend, cache = env_for(view_bound)
    sql = f"SELECT k, v FROM t WHERE k {op} @p ORDER BY k"
    expected = backend.execute(sql, params={"p": value}, database="shop").rows
    actual = cache.execute(sql, params={"p": value}).rows
    assert actual == expected


@settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    view_bound=st.sampled_from([37, 50, 100]),
    low=st.integers(-5, 120),
    width=st.integers(0, 60),
)
def test_property_constant_ranges_always_agree(view_bound, low, width):
    backend, cache = env_for(view_bound)
    sql = f"SELECT k FROM t WHERE k BETWEEN {low} AND {low + width} ORDER BY k"
    expected = backend.execute(sql, database="shop").rows
    actual = cache.execute(sql).rows
    assert actual == expected


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    view_bound=st.sampled_from([37, 100]),
    a=st.one_of(st.none(), st.integers(-5, 120)),
    b=st.one_of(st.none(), st.integers(-5, 120)),
)
def test_property_two_parameter_conjunction(view_bound, a, b):
    backend, cache = env_for(view_bound)
    sql = "SELECT k FROM t WHERE k >= @a AND k <= @b ORDER BY k"
    params = {"a": a, "b": b}
    expected = backend.execute(sql, params=params, database="shop").rows
    actual = cache.execute(sql, params=params).rows
    assert actual == expected
