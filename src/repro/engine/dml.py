"""DML execution: INSERT, UPDATE, DELETE against local storage.

Remote forwarding (the MTCache "all updates go to the backend" rule) is
handled by the server before these functions are reached; everything here
operates on locally stored tables inside a transaction.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.common.schema import Schema
from repro.engine.results import Result
from repro.engine.transactions import Transaction, TransactionManager
from repro.errors import ExecutionError
from repro.exec.context import ExecutionContext
from repro.exec.expressions import ExpressionCompiler
from repro.optimizer.predicates import normalize_comparison, split_conjuncts
from repro.sql import ast


#: CPU work charged per written row, per touched index. Writes cost more
#: than reads (index maintenance, logging, page dirtying); this factor
#: keeps the calibrated TPC-W Order-class demands realistic relative to
#: the read path.
WRITE_WORK_PER_INDEX = 6.0


def _charge_write(ctx: ExecutionContext, storage, rows_affected: int) -> None:
    """Account CPU work for DML: row write + index maintenance + logging."""
    per_row = WRITE_WORK_PER_INDEX * (1 + len(storage.indexes))
    ctx.work.rows_processed += int(per_row * rows_affected)


def _candidate_rids(storage, schema, where: Optional[ast.Expression], ctx) -> Optional[List[int]]:
    """Narrow a DML statement's candidates through an index when possible.

    Finds an index whose leading columns are covered by equality conjuncts
    (literals or parameters) and seeks it; the full predicate is still
    re-checked per candidate. Returns None when no index applies (caller
    falls back to a table scan).
    """
    if where is None:
        return None
    blank = ExpressionCompiler(Schema(()))
    equalities = {}
    for conjunct in split_conjuncts(where):
        comparison = normalize_comparison(conjunct)
        if comparison is not None and comparison.op == "=":
            equalities.setdefault(
                comparison.column.name.lower(), blank.compile(comparison.operand)
            )
    if not equalities:
        return None
    for index in storage.indexes.values():
        prefix = []
        for column_name in index.column_names:
            maker = equalities.get(column_name.lower())
            if maker is None:
                break
            prefix.append(maker((), ctx))
        if prefix:
            ctx.work.index_seeks += 1
            return list(storage.indexes[index.name].seek_prefix(prefix))
    return None


def execute_insert(
    database,
    statement: ast.Insert,
    ctx: ExecutionContext,
    transaction: Transaction,
    select_runner=None,
) -> Result:
    """Insert literal rows or the output of a SELECT."""
    table_def = database.catalog.get_table(statement.table.object_name)
    storage = database.storage_table(table_def.name)
    schema = table_def.schema

    if statement.columns:
        positions = [schema.resolve(name) for name in statement.columns]
    else:
        positions = list(range(len(schema)))

    def expand(values: Tuple) -> List[Any]:
        if len(values) != len(positions):
            raise ExecutionError(
                f"INSERT supplies {len(values)} values for {len(positions)} columns"
            )
        full: List[Any] = [None] * len(schema)
        for position, value in zip(positions, values):
            full[position] = value
        for index, column in enumerate(schema):
            if full[index] is None and index not in positions:
                full[index] = None
        return full

    inserted = 0
    manager: TransactionManager = database.transactions
    if statement.select is not None:
        if select_runner is None:
            raise ExecutionError("INSERT ... SELECT requires a select runner")
        rows, _ = select_runner(statement.select)
        for row in rows:
            manager.logged_insert(transaction, storage, expand(tuple(row)))
            inserted += 1
    else:
        blank = ExpressionCompiler(Schema(()))
        for row_exprs in statement.rows:
            values = tuple(blank.compile(expr)((), ctx) for expr in row_exprs)
            manager.logged_insert(transaction, storage, expand(values))
            inserted += 1
    _charge_write(ctx, storage, inserted)
    return Result(rowcount=inserted)


def execute_update(
    database,
    statement: ast.Update,
    ctx: ExecutionContext,
    transaction: Transaction,
) -> Result:
    """Update rows matching the WHERE predicate."""
    table_def = database.catalog.get_table(statement.table.object_name)
    storage = database.storage_table(table_def.name)
    schema = table_def.schema.with_qualifier(table_def.name)

    compiler = ExpressionCompiler(schema)
    predicate = compiler.compile(statement.where) if statement.where is not None else None
    assignments: List[Tuple[int, Any]] = []
    for column_name, expression in statement.assignments:
        position = schema.resolve(column_name)
        assignments.append((position, compiler.compile(expression)))

    candidates = _candidate_rids(storage, schema, statement.where, ctx)
    matched: List[Tuple[int, Tuple]] = []
    if candidates is not None:
        for rid in candidates:
            row = storage.rows.get(rid)
            ctx.work.rows_processed += 1
            if row is not None and (predicate is None or predicate(row, ctx) is True):
                matched.append((rid, row))
    else:
        for rid, row in list(storage.rows.items()):
            ctx.work.rows_processed += 1
            if predicate is None or predicate(row, ctx) is True:
                matched.append((rid, row))

    manager: TransactionManager = database.transactions
    for rid, row in matched:
        new_row = list(row)
        for position, maker in assignments:
            new_row[position] = maker(row, ctx)
        manager.logged_update(transaction, storage, rid, new_row)
    _charge_write(ctx, storage, len(matched))
    return Result(rowcount=len(matched))


def execute_delete(
    database,
    statement: ast.Delete,
    ctx: ExecutionContext,
    transaction: Transaction,
) -> Result:
    """Delete rows matching the WHERE predicate."""
    table_def = database.catalog.get_table(statement.table.object_name)
    storage = database.storage_table(table_def.name)
    schema = table_def.schema.with_qualifier(table_def.name)
    compiler = ExpressionCompiler(schema)
    predicate = compiler.compile(statement.where) if statement.where is not None else None

    candidates = _candidate_rids(storage, schema, statement.where, ctx)
    if candidates is not None:
        matched = []
        for rid in candidates:
            row = storage.rows.get(rid)
            ctx.work.rows_processed += 1
            if row is not None and (predicate is None or predicate(row, ctx) is True):
                matched.append(rid)
    else:
        matched = []
        for rid, row in list(storage.rows.items()):
            ctx.work.rows_processed += 1
            if predicate is None or predicate(row, ctx) is True:
                matched.append(rid)
    manager: TransactionManager = database.transactions
    for rid in matched:
        manager.logged_delete(transaction, storage, rid)
    _charge_write(ctx, storage, len(matched))
    return Result(rowcount=len(matched))
