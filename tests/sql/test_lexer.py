"""Lexer tests."""

import pytest

from repro.errors import LexError
from repro.sql.lexer import TokenType, tokenize


def types_of(sql):
    return [token.type for token in tokenize(sql)][:-1]  # drop EOF


def values_of(sql):
    return [token.value for token in tokenize(sql)][:-1]


class TestBasics:
    def test_keywords_uppercased(self):
        tokens = tokenize("select From WHERE")
        assert [t.value for t in tokens[:3]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.type is TokenType.KEYWORD for t in tokens[:3])

    def test_identifiers_preserve_case(self):
        tokens = tokenize("MyTable")
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].value == "MyTable"

    def test_numbers(self):
        assert values_of("42 3.14 1e3") == ["42", "3.14", "1e3"]

    def test_string_literal(self):
        tokens = tokenize("'hello world'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "hello world"

    def test_string_escaped_quote(self):
        tokens = tokenize("'O''Brien'")
        assert tokens[0].value == "O'Brien"

    def test_unterminated_string(self):
        with pytest.raises(LexError, match="unterminated"):
            tokenize("'abc")

    def test_parameter(self):
        tokens = tokenize("@cid")
        assert tokens[0].type is TokenType.PARAMETER
        assert tokens[0].value == "cid"

    def test_parameter_requires_name(self):
        with pytest.raises(LexError):
            tokenize("@ ")

    def test_bracket_identifier(self):
        tokens = tokenize("[order table]")
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].value == "order table"


class TestOperatorsAndComments:
    def test_two_char_operators(self):
        assert values_of("a <= b >= c <> d != e") == [
            "a", "<=", "b", ">=", "c", "<>", "d", "<>", "e",
        ]

    def test_punctuation(self):
        assert types_of("(a, b.c);") == [
            TokenType.LPAREN,
            TokenType.IDENT,
            TokenType.COMMA,
            TokenType.IDENT,
            TokenType.DOT,
            TokenType.IDENT,
            TokenType.RPAREN,
            TokenType.SEMICOLON,
        ]

    def test_line_comment(self):
        assert values_of("a -- comment here\nb") == ["a", "b"]

    def test_block_comment(self):
        assert values_of("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never ends")

    def test_star_token(self):
        tokens = tokenize("select *")
        assert tokens[1].type is TokenType.STAR

    def test_positions_tracked(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[1].column == 3

    def test_unexpected_character(self):
        with pytest.raises(LexError, match="unexpected"):
            tokenize("a ~ b")
