"""Graceful degradation: overloaded shards degrade to the backend.

An :class:`~repro.resilience.AdmissionController` with ``burst=0`` never
admits (its virtual queue is born past the hard bound), which makes shard
overload deterministic: attach it to a shard's engine server and every
statement that shard would run is shed with ``OverloadError`` before any
effect — exactly the situation the router must absorb.
"""

from __future__ import annotations

import pytest

from repro.client.connection import connect
from repro.resilience import AdmissionController

pytestmark = [pytest.mark.shard, pytest.mark.overload]


def _always_shed_gate(clock, name="shard"):
    # burst=0: the bucket can never hold a token, so the projected delay
    # is always past the hard bound and every request sheds.
    return AdmissionController(clock, rate=0.001, burst=0.0, name=name)


@pytest.fixture
def overloaded_shard(sharded):
    """Overload the shard owning item 7; restore on teardown."""
    owner = sharded.partitioner.owner(7)
    cache = sharded.shard(owner)
    cache.server.admission = _always_shed_gate(sharded.clock, owner)
    yield owner, cache
    cache.server.admission = None


def test_key_route_degrades_to_backend_when_shard_sheds(
    sharded, router, overloaded_shard
):
    owner, cache = overloaded_shard
    backend = connect(sharded.backend, database=sharded.database_name)
    expected = backend.execute("EXEC getStock @i_id = @i_id", {"i_id": 7}).rows
    degraded_before = sharded.metrics.counter(
        "overload.degraded_scatter", labels={"shard": owner}
    ).value
    actual = router.execute("EXEC getStock @i_id = @i_id", {"i_id": 7}).rows
    assert actual == expected
    assert (
        sharded.metrics.counter(
            "overload.degraded_scatter", labels={"shard": owner}
        ).value
        == degraded_before + 1
    )


def test_scatter_degrades_only_the_overloaded_slice(
    sharded, router, overloaded_shard
):
    owner, cache = overloaded_shard
    backend = connect(sharded.backend, database=sharded.database_name)
    expected = backend.execute(
        "EXEC doSubjectSearch @subject = @subject", {"subject": "HISTORY"}
    ).rows
    actual = router.execute(
        "EXEC doSubjectSearch @subject = @subject", {"subject": "HISTORY"}
    ).rows
    assert actual == expected
    # Exactly the overloaded shard's slice was degraded; the other
    # shards served theirs locally.
    assert (
        sharded.metrics.counter(
            "overload.degraded_scatter", labels={"shard": owner}
        ).value
        >= 1
    )


def test_writes_are_never_dropped_under_shard_overload(
    sharded, router, overloaded_shard
):
    """A write routed at an overloaded shard still lands exactly once
    (on the backend): OverloadError fires before effects, so the
    degraded re-run cannot double-apply."""
    owner, cache = overloaded_shard
    # addr_id is partitioned? Use a backend-routed write through the
    # router on the overloaded deployment: it must succeed exactly once.
    router.execute(
        "UPDATE item SET i_stock = 77 WHERE i_id = @i_id", {"i_id": 7}
    )
    backend = connect(sharded.backend, database=sharded.database_name)
    rows = backend.execute(
        "SELECT i_stock FROM item WHERE i_id = @i_id", {"i_id": 7}
    ).rows
    assert rows == [(77,)]
