"""Two-phase commit coordinator tests."""

import pytest

from repro import Server
from repro.distributed.dtc import DistributedTransactionCoordinator
from repro.errors import DistributedError


def make_server(name):
    server = Server(name)
    server.create_database("db")
    server.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    return server


def test_commit_applies_on_all_participants():
    a, b = make_server("a"), make_server("b")
    dtc = DistributedTransactionCoordinator()
    txn_a = dtc.begin_on(a.database("db"))
    txn_b = dtc.begin_on(b.database("db"))
    a.database("db").transactions.logged_insert(txn_a, a.database("db").storage_table("t"), (1, 10))
    b.database("db").transactions.logged_insert(txn_b, b.database("db").storage_table("t"), (2, 20))
    dtc.commit()
    assert a.execute("SELECT COUNT(*) FROM t").scalar == 1
    assert b.execute("SELECT COUNT(*) FROM t").scalar == 1


def test_rollback_undoes_on_all_participants():
    a, b = make_server("a"), make_server("b")
    dtc = DistributedTransactionCoordinator()
    txn_a = dtc.begin_on(a.database("db"))
    txn_b = dtc.begin_on(b.database("db"))
    a.database("db").transactions.logged_insert(txn_a, a.database("db").storage_table("t"), (1, 10))
    b.database("db").transactions.logged_insert(txn_b, b.database("db").storage_table("t"), (2, 20))
    dtc.rollback()
    assert a.execute("SELECT COUNT(*) FROM t").scalar == 0
    assert b.execute("SELECT COUNT(*) FROM t").scalar == 0


def test_prepare_failure_rolls_back_everyone():
    a, b = make_server("a"), make_server("b")
    dtc = DistributedTransactionCoordinator()
    txn_a = dtc.begin_on(a.database("db"))
    dtc.begin_on(b.database("db"))  # enlists b as a participant
    a.database("db").transactions.logged_insert(txn_a, a.database("db").storage_table("t"), (1, 10))
    # One participant aborts out-of-band: prepare must fail and roll back b.
    a.database("db").transactions.rollback(txn_a)
    with pytest.raises(DistributedError):
        dtc.commit()
    assert b.execute("SELECT COUNT(*) FROM t").scalar == 0


def test_double_commit_rejected():
    a = make_server("a")
    dtc = DistributedTransactionCoordinator()
    dtc.begin_on(a.database("db"))
    dtc.commit()
    with pytest.raises(DistributedError):
        dtc.commit()


def test_rollback_after_commit_is_noop():
    a = make_server("a")
    dtc = DistributedTransactionCoordinator()
    txn = dtc.begin_on(a.database("db"))
    a.database("db").transactions.logged_insert(txn, a.database("db").storage_table("t"), (1, 1))
    dtc.commit()
    dtc.rollback()
    assert a.execute("SELECT COUNT(*) FROM t").scalar == 1


def test_participant_count():
    a, b = make_server("a"), make_server("b")
    dtc = DistributedTransactionCoordinator()
    dtc.begin_on(a.database("db"))
    dtc.begin_on(b.database("db"))
    assert dtc.participant_count == 2
    dtc.rollback()
